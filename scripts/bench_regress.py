#!/usr/bin/env python
"""Frame-rate regression gate over committed bench artifacts.

Compares a freshly generated bench JSON (``BENCH_stream_latency.json``,
``BENCH_multitenant.json``, ``BENCH_elastic.json`` or
``BENCH_ops.json``, written by the benchmarks via ``BENCH_OUT_DIR``)
against the baseline committed at the repo root.  Each variant's throughput metric — ``sustained_fps`` for
the stream bench, ``aggregate_fps`` for the multitenant and elastic
benches — must stay within ``--tolerance`` percent of the baseline;
variants without a throughput metric (e.g. the ``8s-2gold-overload``
scenario, which reports QoS counters instead) are checked for contract
keys only and never gate on speed.  When the artifact carries a
top-level ``phases`` breakdown (the elasticity bench's
pre/during/post-migration fps), the steady-state phases are gated the
same way.

The tolerance is deliberately a knob: on the quiet host that committed
the baselines a few percent is meaningful, while shared CI runners need
a wide band where only order-of-magnitude collapses (a serialized hot
path, a lost worker pool) are actionable.

Usage::

    python scripts/bench_regress.py \
        --baseline BENCH_stream_latency.json \
        --candidate bench-out/BENCH_stream_latency.json \
        --tolerance 60

Exit status 0 when every comparable variant is within tolerance,
1 on any regression, 2 on malformed/unreadable artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Throughput keys, in preference order, per variant.
FPS_KEYS = ("sustained_fps", "aggregate_fps")

#: Non-throughput contract keys checked for presence when a variant has
#: no fps metric (the overload scenarios report QoS outcomes instead).
CONTRACT_KEYS = ("gold_shed", "gold_completed")


def _load(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"bench-regress: cannot read {path}: {exc}")
    if "variants" not in doc or not isinstance(doc["variants"], dict):
        sys.exit(f"bench-regress: {path} has no variants table")
    return doc


def _fps(variant: dict) -> tuple[str, float] | None:
    for key in FPS_KEYS:
        if key in variant:
            return key, float(variant[key])
    return None


def compare(baseline: dict, candidate: dict,
            tolerance_pct: float) -> list[str]:
    """Returns a list of regression messages (empty = pass); prints a
    per-variant report as it goes."""
    failures: list[str] = []
    base_v = baseline["variants"]
    cand_v = candidate["variants"]
    floor = 1.0 - tolerance_pct / 100.0
    for label in sorted(base_v):
        base = base_v[label]
        cand = cand_v.get(label)
        if cand is None:
            failures.append(f"{label}: variant missing from candidate")
            continue
        base_fps = _fps(base)
        if base_fps is None:
            # QoS-contract variant: no throughput to gate on, but the
            # contract counters must still be reported.
            missing = [k for k in CONTRACT_KEYS
                       if k in base and k not in cand]
            status = "MISSING " + ",".join(missing) if missing else "ok"
            print(f"  {label:<24} (no fps metric)  {status}")
            if missing:
                failures.append(
                    f"{label}: contract keys missing: {missing}"
                )
            continue
        key, base_val = base_fps
        cand_val = cand.get(key)
        if cand_val is None:
            failures.append(f"{label}: candidate lost its {key}")
            continue
        ratio = float(cand_val) / base_val if base_val else float("inf")
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(f"  {label:<24} {key} {base_val:9.2f} -> "
              f"{float(cand_val):9.2f}  ({ratio:5.2f}x)  {verdict}")
        if ratio < floor:
            failures.append(
                f"{label}: {key} {cand_val} is below "
                f"{floor:.2f}x of baseline {base_val}"
            )
    extra = sorted(set(cand_v) - set(base_v))
    if extra:
        print(f"  (new variants, not gated: {', '.join(extra)})")
    failures += compare_phases(baseline, candidate, tolerance_pct)
    return failures


def compare_phases(baseline: dict, candidate: dict,
                   tolerance_pct: float) -> list[str]:
    """Gate the optional top-level ``phases`` breakdown (the elasticity
    bench's pre/during/post-migration fps): every baseline phase with
    an ``fps`` entry must be present in the candidate and stay within
    tolerance.  The ``during`` window is transient and tiny — it is
    reported but never gated."""
    base_p = baseline.get("phases")
    if not isinstance(base_p, dict):
        return []
    failures: list[str] = []
    cand_p = candidate.get("phases") or {}
    floor = 1.0 - tolerance_pct / 100.0
    for name in sorted(base_p):
        base_fps = base_p[name].get("fps")
        if base_fps is None:
            continue
        cand_fps = (cand_p.get(name) or {}).get("fps")
        if name == "during":
            print(f"  phase:{name:<18} fps {base_fps:9.2f} -> "
                  f"{cand_fps if cand_fps is not None else '-':>9}  "
                  f"(transient, not gated)")
            continue
        if cand_fps is None:
            failures.append(f"phase {name}: fps missing from candidate")
            continue
        ratio = float(cand_fps) / base_fps if base_fps else float("inf")
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(f"  phase:{name:<18} fps {base_fps:9.2f} -> "
              f"{float(cand_fps):9.2f}  ({ratio:5.2f}x)  {verdict}")
        if ratio < floor:
            failures.append(
                f"phase {name}: fps {cand_fps} is below "
                f"{floor:.2f}x of baseline {base_fps}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, type=Path,
                    help="committed bench JSON (the reference)")
    ap.add_argument("--candidate", required=True, type=Path,
                    help="freshly generated bench JSON to check")
    ap.add_argument("--tolerance", type=float, default=50.0,
                    metavar="PCT",
                    help="allowed fps drop in percent (default 50: "
                         "wide enough for shared CI runners)")
    args = ap.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)
    if baseline.get("figure") != candidate.get("figure"):
        print(f"bench-regress: figure mismatch "
              f"({baseline.get('figure')} vs {candidate.get('figure')})",
              file=sys.stderr)
        return 2
    print(f"bench-regress: {baseline.get('figure')} "
          f"(tolerance {args.tolerance:g}%)")
    failures = compare(baseline, candidate, args.tolerance)
    if failures:
        print("bench-regress: FAIL", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("bench-regress: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
