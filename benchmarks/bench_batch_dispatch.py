"""Batched dispatch — per-instance framework overhead vs batch size.

DESIGN.md §12: the hot path amortizes ready-queue pops, context
creation, accounting, and (on the process backend) the entire IPC
round trip over *runs* of same-kernel instances.  This bench encodes a
small MJPEG clip at batch sizes 1/8/32 on both backends, asserts
byte-identity against the standalone encoder every time, and records
the instrumentation's mean per-instance dispatch overhead.

The sweep runs with ONE worker by default: dispatch overhead is a
per-instance cost, and a contention-free run isolates it — with
multiple workers, time a proxy thread spends *waiting* on the shared
field/analyzer locks lands in the dispatch column and drowns the
signal (wall time still improves; the multi-worker throughput story
is ``bench_stream_latency.py``'s job).

The headline numbers:

* ``processes``: one pickle round trip per batch instead of per
  instance — dispatch overhead should drop by well over 2x at
  batch 32.
* ``threads``: pooled contexts + one pop per run — a smaller but
  still measurable reduction; the vectorized DCT also collapses the
  per-instance Python body into one stacked matmul.

Artifact: ``BENCH_batch_dispatch.json`` via
:func:`conftest.write_variants_json`.  Run as a script for the CI
perf-smoke gate (exits non-zero if batched dispatch is not cheaper
than per-instance dispatch)::

    PYTHONPATH=src python benchmarks/bench_batch_dispatch.py \
        --frames 4 --out-dir .
"""

import argparse
import sys
import time

import pytest

from repro.core import run_program
from repro.workloads import MJPEGConfig, build_mjpeg, mjpeg_baseline

BATCHES = (1, 8, 32)
BACKENDS = ("threads", "processes")


def encode_once(cfg, reference, backend, batch, workers=2,
                vectorize=True, timeout=600.0):
    """One encode; returns (wall_time_s, totals-over-all-kernels)."""
    program, sink = build_mjpeg(config=cfg, vectorize=vectorize)
    t0 = time.perf_counter()
    result = run_program(
        program, workers=workers, backend=backend, batch=batch,
        timeout=timeout,
    )
    wall = time.perf_counter() - t0
    assert result.reason == "idle"
    assert sink.stream() == reference  # identity at any batch size
    stats = result.instrumentation.stats()
    instances = sum(s.instances for s in stats.values())
    dispatch = sum(s.dispatch_time for s in stats.values())
    kernel = sum(s.kernel_time for s in stats.values())
    ipc = sum(s.ipc_time for s in stats.values())
    # "hot" = kernels with enough same-kernel instances to actually
    # form runs (the DCT kernels; excludes the per-frame read/vlc
    # singletons whose 12-odd instances add pure run-to-run noise).
    hot = [s for s in stats.values() if s.instances >= 100]
    hot_n = sum(s.instances for s in hot)
    hot_d = sum(s.dispatch_time for s in hot)
    return wall, {
        "wall_time_s": round(wall, 4),
        "instances": instances,
        "mean_dispatch_us": round(1e6 * dispatch / instances, 2),
        "mean_dispatch_us_hot": round(1e6 * hot_d / max(hot_n, 1), 2),
        "mean_kernel_us": round(1e6 * kernel / instances, 2),
        "mean_ipc_us": round(1e6 * ipc / instances, 2),
    }


def sweep(cfg, workers=1, batches=BATCHES, backends=BACKENDS,
          timeout=600.0):
    reference = mjpeg_baseline(config=cfg)
    variants = {}
    for backend in backends:
        for batch in batches:
            _, numbers = encode_once(
                cfg, reference, backend, batch,
                workers=workers, timeout=timeout,
            )
            variants[f"{backend}-b{batch}"] = numbers
        # scalar-body ablation: batching without the vectorizer
        _, numbers = encode_once(
            cfg, reference, backend, max(batches),
            workers=workers, vectorize=False, timeout=timeout,
        )
        variants[f"{backend}-b{max(batches)}-novec"] = numbers
    return variants


def dispatch_reduction(variants, backend, batches=BATCHES,
                       key="mean_dispatch_us_hot"):
    """Per-instance dispatch cost, batch=1 vs the largest batch.

    Defaults to the hot (batchable) kernels — the population batched
    dispatch actually acts on; pass ``key="mean_dispatch_us"`` for the
    all-kernels number (also recorded, noisier: dominated by the 13
    unbatchable per-frame ``read`` instances at small clip sizes)."""
    base = variants[f"{backend}-b{min(batches)}"][key]
    best = variants[f"{backend}-b{max(batches)}"][key]
    return base / best if best else float("inf")


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_dispatch(benchmark, backend):
    from conftest import emit, write_variants_json

    cfg = MJPEGConfig(width=96, height=64, frames=6)
    t0 = time.perf_counter()
    variants = benchmark.pedantic(
        lambda: sweep(cfg, backends=(backend,)), rounds=1, iterations=1
    )
    wall = time.perf_counter() - t0
    lines = [
        f"{name}: dispatch {v['mean_dispatch_us']:8.2f}us/inst, "
        f"kernel {v['mean_kernel_us']:8.2f}us/inst, "
        f"wall {v['wall_time_s']:6.3f}s"
        for name, v in variants.items()
    ]
    red = dispatch_reduction(variants, backend)
    lines.append(f"dispatch-overhead reduction b1 -> b32: {red:.1f}x")
    emit(f"batch dispatch [{backend}]", "\n".join(lines))
    for name, v in variants.items():
        benchmark.extra_info[f"{name}_dispatch_us"] = v["mean_dispatch_us"]
    benchmark.extra_info["dispatch_reduction"] = round(red, 2)
    # Batching must never make dispatch *more* expensive.
    assert red >= 1.0
    write_variants_json(
        f"batch_dispatch_{backend}", variants, wall,
        baseline=f"{backend}-b1", workload="mjpeg",
        width=cfg.width, height=cfg.height, frames=cfg.frames,
        dispatch_reduction=round(red, 2),
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="batched-dispatch overhead sweep (batch x backend)"
    )
    ap.add_argument("--frames", type=int, default=6)
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--batches", type=int, nargs="+",
                    default=list(BATCHES))
    ap.add_argument("--backends", nargs="+", default=list(BACKENDS),
                    choices=("threads", "processes"))
    ap.add_argument("--timeout", type=float, default=600.0)
    ap.add_argument("--min-process-reduction", type=float, default=2.0,
                    help="required b1->bMAX dispatch reduction on the "
                         "process backend (0 disables)")
    ap.add_argument("--out-dir",
                    help="write BENCH_batch_dispatch.json to this dir")
    args = ap.parse_args(argv)

    cfg = MJPEGConfig(width=96, height=64, frames=args.frames)
    t0 = time.perf_counter()
    variants = sweep(
        cfg, workers=args.workers, batches=tuple(args.batches),
        backends=tuple(args.backends), timeout=args.timeout,
    )
    wall = time.perf_counter() - t0

    ok = True
    reductions = {}
    for backend in args.backends:
        red = dispatch_reduction(variants, backend,
                                 batches=tuple(args.batches))
        reductions[backend] = round(red, 2)
        print(f"-- backend={backend}")
        for name, v in variants.items():
            if name.startswith(backend):
                print(f"   {name}: dispatch {v['mean_dispatch_us']:8.2f}"
                      f"us/inst, wall {v['wall_time_s']:6.3f}s")
        print(f"   dispatch-overhead reduction: {red:.1f}x")
        if red < 1.0:
            print(f"FAIL: batched dispatch slower than per-instance "
                  f"on {backend} ({red:.2f}x)", file=sys.stderr)
            ok = False
    need = args.min_process_reduction
    if need and "processes" in reductions and reductions["processes"] < need:
        print(f"FAIL: process-backend dispatch reduction "
              f"{reductions['processes']:.2f}x < required {need:.1f}x",
              file=sys.stderr)
        ok = False

    if args.out_dir:
        import os

        os.environ["BENCH_OUT_DIR"] = args.out_dir
        from conftest import write_variants_json

        write_variants_json(
            "batch_dispatch", variants, wall, baseline="threads-b1",
            workload="mjpeg", width=cfg.width, height=cfg.height,
            frames=cfg.frames, workers=args.workers,
            dispatch_reduction=reductions,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
