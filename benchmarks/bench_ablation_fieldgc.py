"""Ablation — field-age garbage collection (section IX).

"Write-once semantics on fields incurs a large penalty if implemented
naively ... the compiler and runtime are free to optimize field usage.
This includes re-using buffers ... and garbage collecting old ages."
Measured: live field bytes after a streaming MJPEG encode with and
without age GC.
"""

import pytest
from conftest import emit

from repro.core import run_program
from repro.media import synthetic_sequence
from repro.workloads import MJPEGConfig, build_mjpeg, mjpeg_baseline

CFG = MJPEGConfig(width=96, height=64, frames=8)
CLIP = synthetic_sequence(CFG.frames, CFG.width, CFG.height, CFG.seed)
REFERENCE = mjpeg_baseline(CLIP, CFG)


@pytest.mark.parametrize("gc", [False, True], ids=["no-gc", "gc"])
def test_field_gc(benchmark, gc):
    def run():
        program, sink = build_mjpeg(CLIP, CFG)
        result = run_program(
            program, workers=4, timeout=600, gc_fields=gc, keep_ages=1
        )
        return result, sink

    result, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sink.stream() == REFERENCE  # GC never changes output
    live = result.fields.live_bytes()
    benchmark.extra_info["live_bytes"] = live
    benchmark.extra_info["gc_bytes"] = result.gc_bytes
    emit(
        f"field GC ablation [{'gc' if gc else 'no-gc'}]",
        f"live field bytes at end: {live}, reclaimed: {result.gc_bytes}",
    )
    if gc:
        assert result.gc_bytes > 0
