"""HLS + simulator integration: evaluate candidate partitions offline
(section V-A) and pick the predicted winner.

The MJPEG workload at the paper's full scale (50 CIF frames, table-II
costs) is partitioned over two 4-worker Opteron nodes by the master's
three partitioners; the cluster simulator predicts each candidate's
makespan and network load — choosing the initial configuration without
ever running the real system, exactly the use the paper sketches for
the weighted graphs.
"""

from conftest import emit

from repro.bench.experiments import PAPER_TABLE2
from repro.core.graph import final_graph
from repro.dist import partition_graph
from repro.sim import (
    OPTERON_8218,
    SimClusterNode,
    best_assignment,
    paper_mjpeg_model,
)
from repro.workloads import MJPEGConfig, build_mjpeg

NODES = [
    SimClusterNode("node0", OPTERON_8218, 4),
    SimClusterNode("node1", OPTERON_8218, 4),
]
CAPS = {"node0": 4.0, "node1": 4.0}


def _paper_weighted_graph():
    """The final static graph weighted with table II (no execution)."""
    program, _ = build_mjpeg(config=MJPEGConfig(frames=50))
    graph = final_graph(program)
    for name in graph.nodes():
        n, _dispatch, kernel_us = PAPER_TABLE2[name]
        graph.node(name)["weight"] = n * kernel_us * 1e-6  # total seconds
    for u, v, attrs in graph.edges():
        attrs["weight"] = float(PAPER_TABLE2[u][0])  # producer instances
    return graph


def test_partition_what_if(benchmark):
    graph = _paper_weighted_graph()
    model = paper_mjpeg_model(50)

    def choose():
        candidates = []
        labels = []
        for method in ("greedy", "kl", "tabu"):
            kwargs = {"iterations": 60} if method == "tabu" else {}
            p = partition_graph(graph, CAPS, method, **kwargs)
            candidates.append(dict(p.assign))
            labels.append(method)
        candidates.append({k: "node0" for k in graph.nodes()})
        labels.append("all-on-node0")
        for c in candidates:
            # the stage model has an explicit init stage (table II row)
            # that the program graph folds into the read source
            c.setdefault("init", c["read"])
        winner, result, results = best_assignment(model, NODES, candidates)
        return winner, result, list(zip(labels, results))

    winner, result, ranked = benchmark.pedantic(
        choose, rounds=1, iterations=1
    )
    lines = []
    for label, r in ranked:
        lines.append(
            f"{label:>13}: makespan {r.makespan:7.2f}s, "
            f"{r.cross_node_transfers} cross-node transfers, "
            f"network {r.network_busy * 1e3:.1f}ms"
        )
    spread = {k: v for k, v in sorted(winner.items())}
    lines.append(f"chosen plan: {spread}")
    emit("partition what-if (MJPEG @50 frames, 2x4-worker Opterons)",
         "\n".join(lines))
    makespans = {label: r.makespan for label, r in ranked}
    assert result.makespan == min(makespans.values())
    # at this scale a second node must beat the single-node control
    assert result.makespan < makespans["all-on-node0"] * 0.95
    assert len(set(winner.values())) == 2  # the winner actually distributes
    benchmark.extra_info["winner_makespan"] = round(result.makespan, 2)
    benchmark.extra_info["single_node_makespan"] = round(
        makespans["all-on-node0"], 2
    )
