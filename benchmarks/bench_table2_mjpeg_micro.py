"""Table II — micro-benchmark of MJPEG encoding in P2G.

Measured on the real Python runtime at CIF geometry (per-frame instance
counts exactly match the paper: 1584 yDCT + 396 uDCT + 396 vDCT) with a
reduced frame count; the paper's published values are printed alongside.
"""

from conftest import emit

from repro.bench.experiments import PAPER_TABLE2, table2_mjpeg_micro

FRAMES = 2


def test_table2_mjpeg_micro(benchmark):
    result = benchmark.pedantic(
        table2_mjpeg_micro,
        kwargs={"frames": FRAMES, "workers": 4},
        rounds=1,
        iterations=1,
    )
    emit("Table II: micro-benchmark of MJPEG encoding", result.render())
    rows = {name: (n, d, k) for name, n, d, k in result.rows}
    # per-frame geometry must match the paper exactly
    assert rows["ydct"][0] == 1584 * FRAMES
    assert rows["udct"][0] == 396 * FRAMES
    assert rows["vdct"][0] == 396 * FRAMES
    assert rows["read"][0] == FRAMES + 1
    assert rows["vlc"][0] == FRAMES
    for name, (n, d, k) in rows.items():
        benchmark.extra_info[f"{name}_instances"] = n
        benchmark.extra_info[f"{name}_kernel_us"] = round(k, 2)
        paper = PAPER_TABLE2.get(name)
        if paper:
            benchmark.extra_info[f"{name}_paper_kernel_us"] = paper[2]
