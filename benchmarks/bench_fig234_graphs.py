"""Figures 2-4 — the implicit static dependency graphs and the DC-DAG
for the mul2/plus5 program, plus figures 7/8 structure for the two
evaluation workloads."""

from conftest import emit

from repro.bench import (
    fig2_intermediate_graph,
    fig3_final_graph,
    fig4_dcdag,
)
from repro.core.graph import dc_dag, final_graph, intermediate_graph
from repro.workloads import MJPEGConfig, build_kmeans, build_mjpeg, build_mulsum


def test_fig2_intermediate_graph(benchmark):
    text = benchmark(fig2_intermediate_graph)
    emit("Figure 2", text)
    assert "[m_data]" in text


def test_fig3_final_graph(benchmark):
    text = benchmark(fig3_final_graph)
    emit("Figure 3", text)
    assert "(mul2)" in text


def test_fig4_dcdag(benchmark):
    text = benchmark.pedantic(
        fig4_dcdag, kwargs={"max_age": 3}, rounds=1, iterations=1
    )
    emit("Figure 4 (DC-DAG)", text)
    assert "acyclic" in text


def test_fig7_kmeans_graph_structure(benchmark):
    def build():
        program, _ = build_kmeans(n=10, k=2, iterations=2)
        return final_graph(program)

    g = benchmark(build)
    assert g.has_edge("assign", "refine")
    assert g.has_edge("refine", "assign")


def test_fig8_mjpeg_graph_structure(benchmark):
    def build():
        program, _ = build_mjpeg(
            config=MJPEGConfig(width=32, height=32, frames=1)
        )
        return final_graph(program)

    g = benchmark(build)
    for dct in ("ydct", "udct", "vdct"):
        assert g.has_edge("read", dct) and g.has_edge(dct, "vlc")


def test_dcdag_unroll_scales(benchmark):
    """Unrolling cost for a deep DC-DAG (LLS working set)."""
    program, _ = build_mulsum()

    def unroll():
        return dc_dag(program, max_age=100)

    g = benchmark(unroll)
    assert len(g) == 3 * 101 + 1
