"""Substrate micro-benchmarks: the framework's own hot paths.

Not a paper table — these quantify the per-operation costs (field
store/fetch, analyzer event handling, entropy coding) that the paper's
"dispatch time" columns aggregate, so regressions in the substrate are
visible independently of the workloads.
"""

import numpy as np

from repro.core import (
    DependencyAnalyzer,
    Dim,
    FetchSpec,
    FieldDef,
    FieldStore,
    KernelDef,
    Program,
    StoreSpec,
)
from repro.core.events import StoreEvent
from repro.core.fields import Field, normalize_index
from repro.media import encode_jpeg, synthetic_sequence
from repro.media.bitstream import BitWriter
from repro.media.huffman import STD_AC_LUMA, STD_DC_LUMA, encode_block


def test_field_store_element(benchmark):
    counter = iter(range(100_000_000))

    def store():
        f = Field(FieldDef("f", "int64", 1, shape=(1024,)))
        for i in range(256):
            f.store(0, i, i)
        return f

    f = benchmark(store)
    assert f.written_count(0) == 256


def test_field_store_block(benchmark):
    data = np.arange(4096, dtype=np.int64)

    def store():
        f = Field(FieldDef("f", "int64", 1, shape=(4096,)))
        f.store(0, slice(0, 4096), data)
        return f

    f = benchmark(store)
    assert f.is_complete(0)


def test_field_fetch(benchmark):
    f = Field(FieldDef("f", "float64", 2, shape=(64, 64)))
    f.store(0, (slice(0, 64), slice(0, 64)), np.zeros((64, 64)))
    region = normalize_index((slice(8, 16), slice(8, 16)), 2)
    out = benchmark(f.fetch, 0, region)
    assert out.shape == (8, 8)


def test_analyzer_event_throughput(benchmark):
    """Store events against a per-element consumer — the K-means hot
    path that saturates the dedicated analyzer thread."""

    def handle_events():
        consumer = KernelDef(
            "per", lambda ctx: None, has_age=True, index_vars=("x",),
            fetches=(FetchSpec("v", "a", dims=(Dim.of("x"),),
                               scalar=True),),
        )
        prog = Program.build([FieldDef("a", shape=(512,))], [consumer])
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        total = 0
        for i in range(512):
            idx = normalize_index(i, 1)
            fields["a"].store(0, idx, i)
            total += len(an.on_store(StoreEvent("a", 0, idx)))
        return total

    total = benchmark(handle_events)
    assert total == 512


def test_huffman_block_encode(benchmark):
    rng = np.random.default_rng(0)
    zz = np.zeros(64, dtype=np.int64)
    zz[:16] = rng.integers(-100, 100, 16)

    def encode():
        w = BitWriter()
        encode_block(w, zz, 0, STD_DC_LUMA, STD_AC_LUMA)
        w.flush()
        return w.getvalue()

    out = benchmark(encode)
    assert len(out) > 0


def test_jpeg_encode_cif_frame(benchmark):
    frame = synthetic_sequence(1)[0]  # CIF
    data = benchmark(encode_jpeg, frame, 75, "aan")
    assert data[:2] == b"\xff\xd8"
