"""Streaming latency — end-to-end per-frame latency vs worker count.

The real-time claim of the streaming runtime (DESIGN.md §11): an
unpaced live MJPEG encode under a fixed lag window reports per-frame
end-to-end latency (store → encoded frame delivered) as p50/p99, and
the sustained frame rate is ``completed / duration``.  More workers
drain the window faster, so sustained fps rises and tail latency falls
until the pipeline saturates.

The two 8-worker variants compare the scalar per-instance hot path
against batched dispatch + the vectorized DCT (DESIGN.md §12): same
frames, same lag window, byte-identical output — the batched variant
should sustain a higher frame rate because each worker pop amortizes
dispatch overhead over a run of block instances.

Artifact: ``BENCH_stream_latency.json`` (one variant per
worker-count/dispatch-mode combination) via
:func:`conftest.write_variants_json`.
"""

import pytest
from conftest import emit, write_variants_json

from repro.core import run_program
from repro.stream import StreamConfig
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline

CFG = MJPEGConfig(width=96, height=64, frames=120)
STREAM = StreamConfig(fps=0, max_frames=CFG.frames, lag_window=8)
REFERENCE = mjpeg_baseline(config=CFG)
#: label -> (workers, batch, vectorize)
VARIANTS = {
    "1": (1, 1, False),
    "2": (2, 1, False),
    "4": (4, 1, False),
    "8-scalar": (8, 1, False),
    "8-batched": (8, 32, True),
}
_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("label", list(VARIANTS))
def test_stream_latency(benchmark, label):
    workers, batch, vectorize = VARIANTS[label]

    def run():
        program, sink, binding = build_mjpeg_stream(
            CFG, STREAM, vectorize=vectorize
        )
        result = run_program(
            program, workers=workers, timeout=600, stream=binding,
            batch=batch,
        )
        return result.stream, sink

    rep, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rep.completed == CFG.frames
    assert sink.stream() == REFERENCE  # nothing shed: batch-identical
    sustained_fps = rep.completed / rep.duration_s
    benchmark.extra_info["latency_p50_ms"] = rep.latency_ms["p50"]
    benchmark.extra_info["latency_p99_ms"] = rep.latency_ms["p99"]
    benchmark.extra_info["sustained_fps"] = sustained_fps
    _RESULTS[label] = {
        "workers": workers,
        "batch": batch,
        "vectorize": vectorize,
        "wall_time_s": round(rep.duration_s, 4),
        "sustained_fps": round(sustained_fps, 2),
        "latency_p50_ms": round(rep.latency_ms["p50"], 3),
        "latency_p99_ms": round(rep.latency_ms["p99"], 3),
        "latency_max_ms": round(rep.latency_ms["max"], 3),
        "peak_live_bytes": rep.peak_live_bytes,
        "freed_bytes": rep.freed_bytes,
    }
    emit(
        f"stream latency [{label}w]",
        f"{CFG.frames} frames in {rep.duration_s:.2f}s "
        f"({sustained_fps:.1f} fps sustained), latency "
        f"p50 {rep.latency_ms['p50']:.1f}ms "
        f"p99 {rep.latency_ms['p99']:.1f}ms, "
        f"peak live {rep.peak_live_bytes} B",
    )
    if len(_RESULTS) == len(VARIANTS):
        scalar = _RESULTS.get("8-scalar")
        batched = _RESULTS.get("8-batched")
        if scalar and batched:
            emit(
                "stream latency [8w dispatch modes]",
                f"scalar {scalar['sustained_fps']:.1f} fps vs batched "
                f"{batched['sustained_fps']:.1f} fps "
                f"({batched['sustained_fps'] / scalar['sustained_fps']:.2f}x)",
            )
        write_variants_json(
            "stream_latency", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="1", workload="mjpeg-live",
            width=CFG.width, height=CFG.height, frames=CFG.frames,
            lag_window=STREAM.lag_window,
        )
