"""Streaming latency — end-to-end per-frame latency vs worker count.

The real-time claim of the streaming runtime (DESIGN.md §11): an
unpaced live MJPEG encode under a fixed lag window reports per-frame
end-to-end latency (store → encoded frame delivered) as p50/p99, and
the sustained frame rate is ``completed / duration``.  More workers
drain the window faster, so sustained fps rises and tail latency falls
until the pipeline saturates.

The two 8-worker dispatch variants compare the scalar per-instance hot
path against batched dispatch + the vectorized DCT (DESIGN.md §12):
same frames, same lag window, byte-identical output — the batched
variant should sustain a higher frame rate because each worker pop
amortizes dispatch overhead over a run of block instances.

The ``8-batched-telemetry`` variant re-runs the fastest configuration
with the frame-path telemetry layer armed (DESIGN.md §14): per-frame
stage timelines, SLO tracking and the periodic exporter.  Its cost
relative to ``8-batched`` is recorded as ``telemetry_overhead_pct`` —
the attribution layer is supposed to be cheap enough to leave on.

Artifact: ``BENCH_stream_latency.json`` (one variant per
worker-count/dispatch-mode combination) via
:func:`conftest.write_variants_json`.
"""

import pytest
from conftest import emit, write_variants_json

from repro.core import run_program
from repro.obs import Telemetry, TelemetryConfig
from repro.stream import StreamConfig
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline

CFG = MJPEGConfig(width=96, height=64, frames=120)
STREAM = StreamConfig(fps=0, max_frames=CFG.frames, lag_window=8)
REFERENCE = mjpeg_baseline(config=CFG)
#: label -> (workers, batch, vectorize, telemetry)
VARIANTS = {
    "1": (1, 1, False, False),
    "2": (2, 1, False, False),
    "4": (4, 1, False, False),
    "8-scalar": (8, 1, False, False),
    "8-batched": (8, 32, True, False),
    "8-batched-telemetry": (8, 32, True, True),
}
_RESULTS: dict[str, dict] = {}


def _run_once(workers, batch, vectorize, telemetry):
    program, sink, binding = build_mjpeg_stream(
        CFG, STREAM, vectorize=vectorize
    )
    tel = (
        Telemetry(TelemetryConfig(interval_s=0.5))
        if telemetry else None
    )
    result = run_program(
        program, workers=workers, timeout=600, stream=binding,
        batch=batch, telemetry=tel,
    )
    return result.stream, sink


@pytest.mark.parametrize("label", list(VARIANTS))
def test_stream_latency(benchmark, label):
    workers, batch, vectorize, telemetry = VARIANTS[label]
    reps = []
    off_durations = []

    def run():
        if telemetry:
            # Interleave a telemetry-off run so the overhead
            # comparison sees the same machine conditions — the
            # effect size (a few %) is well under cross-test drift.
            off_rep, _ = _run_once(workers, batch, vectorize, False)
            off_durations.append(off_rep.duration_s)
        rep, sink = _run_once(workers, batch, vectorize, telemetry)
        reps.append((rep, sink))
        return rep, sink

    rounds = 3 if telemetry else 1
    benchmark.pedantic(run, rounds=rounds, iterations=1)
    rep, sink = min(reps, key=lambda pair: pair[0].duration_s)
    assert rep.completed == CFG.frames
    assert sink.stream() == REFERENCE  # nothing shed: batch-identical
    if telemetry:
        # The armed variant must actually have attributed every frame.
        assert rep.stages and rep.stages["compute"]["count"] == CFG.frames
    sustained_fps = rep.completed / rep.duration_s
    benchmark.extra_info["latency_p50_ms"] = rep.latency_ms["p50"]
    benchmark.extra_info["latency_p99_ms"] = rep.latency_ms["p99"]
    benchmark.extra_info["sustained_fps"] = sustained_fps
    _RESULTS[label] = {
        "workers": workers,
        "batch": batch,
        "vectorize": vectorize,
        "telemetry": telemetry,
        "wall_time_s": round(rep.duration_s, 4),
        "sustained_fps": round(sustained_fps, 2),
        "latency_p50_ms": round(rep.latency_ms["p50"], 3),
        "latency_p99_ms": round(rep.latency_ms["p99"], 3),
        "latency_max_ms": round(rep.latency_ms["max"], 3),
        "peak_live_bytes": rep.peak_live_bytes,
        "freed_bytes": rep.freed_bytes,
    }
    if telemetry and off_durations:
        overhead = (
            min(r.duration_s for r, _ in reps) / min(off_durations)
            - 1.0
        ) * 100.0
        _RESULTS[label]["telemetry_overhead_pct"] = round(overhead, 2)
        benchmark.extra_info["telemetry_overhead_pct"] = round(overhead, 2)
    emit(
        f"stream latency [{label}w]",
        f"{CFG.frames} frames in {rep.duration_s:.2f}s "
        f"({sustained_fps:.1f} fps sustained), latency "
        f"p50 {rep.latency_ms['p50']:.1f}ms "
        f"p99 {rep.latency_ms['p99']:.1f}ms, "
        f"peak live {rep.peak_live_bytes} B",
    )
    if len(_RESULTS) == len(VARIANTS):
        scalar = _RESULTS.get("8-scalar")
        batched = _RESULTS.get("8-batched")
        if scalar and batched:
            emit(
                "stream latency [8w dispatch modes]",
                f"scalar {scalar['sustained_fps']:.1f} fps vs batched "
                f"{batched['sustained_fps']:.1f} fps "
                f"({batched['sustained_fps'] / scalar['sustained_fps']:.2f}x)",
            )
        telem = _RESULTS.get("8-batched-telemetry")
        if telem and "telemetry_overhead_pct" in telem:
            emit(
                "stream latency [8w telemetry overhead]",
                f"interleaved best-of-3: telemetry on costs "
                f"{telem['telemetry_overhead_pct']:+.1f}% vs off "
                f"({telem['sustained_fps']:.1f} fps sustained with "
                f"attribution armed)",
            )
        write_variants_json(
            "stream_latency", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="1", workload="mjpeg-live",
            width=CFG.width, height=CFG.height, frames=CFG.frames,
            lag_window=STREAM.lag_window,
        )
