"""Wavefront intra prediction — the section-III motivation measured.

Compares the P2G wavefront execution against the sequential raster
baseline and records the discovered concurrency (ready-queue high water
vs. the frame's diagonal width).  Also runs the MJPEG decoder pipeline
(serial VLD + parallel IDCT) as the complementary consumer-side case.
"""

import numpy as np
import pytest
from conftest import emit

from repro.core import run_program
from repro.media import split_frames, synthetic_sequence
from repro.workloads import (
    IntraConfig,
    MJPEGConfig,
    build_intra,
    build_mjpeg_decoder,
    intra_baseline,
    mjpeg_baseline,
)

INTRA_CFG = IntraConfig(width=192, height=128, frames=2)


@pytest.mark.parametrize("mode", ["p2g-4w", "p2g-1w", "sequential"])
def test_intra(benchmark, mode):
    if mode == "sequential":
        recon = benchmark.pedantic(
            intra_baseline, kwargs={"config": INTRA_CFG},
            rounds=1, iterations=1,
        )
        assert len(recon) == INTRA_CFG.frames
        return

    workers = 4 if mode == "p2g-4w" else 1

    def run():
        program, sink = build_intra(config=INTRA_CFG)
        result = run_program(program, workers=workers, timeout=600)
        return result, sink

    result, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = intra_baseline(config=INTRA_CFG)
    for age in range(INTRA_CFG.frames):
        assert np.array_equal(sink.recon[age], baseline[age])
    bh, bw = INTRA_CFG.blocks
    benchmark.extra_info["ready_high_water"] = result.ready_high_water
    benchmark.extra_info["diagonal_width"] = min(bh, bw)
    emit(
        f"wavefront intra [{mode}]",
        f"blocks {bh}x{bw}, discovered concurrency (ready high water): "
        f"{result.ready_high_water}, diagonal width: {min(bh, bw)}",
    )


def test_mjpeg_decode_pipeline(benchmark):
    cfg = MJPEGConfig(width=176, height=144, frames=3)
    clip = synthetic_sequence(cfg.frames, cfg.width, cfg.height, cfg.seed)
    jpegs = split_frames(mjpeg_baseline(clip, cfg))

    def run():
        program, sink = build_mjpeg_decoder(jpegs, cfg)
        result = run_program(program, workers=4, timeout=600)
        return result, sink

    result, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(sink.frames) == cfg.frames
    stats = result.stats
    benchmark.extra_info["vld_instances"] = stats["vld"].instances
    benchmark.extra_info["yidct_instances"] = stats["yidct"].instances
    emit(
        "MJPEG decode pipeline",
        result.instrumentation.table(
            order=["vld", "yidct", "uidct", "vidct", "write"]),
    )
