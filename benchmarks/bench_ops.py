"""Operator-algebra scenarios — mosaic fps vs cameras × workers, plus
motion and transcode single-number throughputs.

The algebra claim (DESIGN.md §16): pipelines declared as composable
operators lower onto the same fields+kernels runtime as the hand-written
workloads, so they inherit batched dispatch and vectorization — and pay
no throughput penalty for the abstraction.  Every variant asserts
byte-identity against its pure-NumPy baseline before reporting fps.

Variants:

* ``4cam-2w`` / ``4cam-4w`` / ``9cam-4w`` — the multi-camera mosaic
  (N sources → box-downscale → lockstep merge composite) at different
  camera counts and worker pools; ``sustained_fps`` counts *composited*
  output frames.
* ``motion-4w`` — windowed SAD/SSD region stats + keyed zone partition.
* ``transcode-4w`` — MJPEG decode → /2 downscale → re-encode.

Artifact: ``BENCH_ops.json`` via :func:`conftest.write_variants_json`,
gated in CI by ``scripts/bench_regress.py``.
"""

import pytest
from conftest import emit, write_variants_json

from repro.core import run_program
from repro.workloads import (
    MosaicConfig,
    MotionConfig,
    TranscodeConfig,
    build_mosaic,
    build_motion,
    build_transcode,
    mosaic_baseline,
    motion_baseline,
    transcode_baseline,
)

FRAMES = 24
#: label -> (cams, size, workers); size must divide 16 * grid.
MOSAIC_VARIANTS = {
    "4cam-2w": (4, 64, 2),
    "4cam-4w": (4, 64, 4),
    "9cam-4w": (9, 48, 4),
}
_RESULTS: dict[str, dict] = {}
_ALL = list(MOSAIC_VARIANTS) + ["motion-4w", "transcode-4w"]


def _maybe_write() -> None:
    if len(_RESULTS) == len(_ALL):
        write_variants_json(
            "ops", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="4cam-2w", workload="operator-algebra",
        )


@pytest.mark.parametrize("label", list(MOSAIC_VARIANTS))
def test_ops_mosaic(benchmark, label):
    cams, size, workers = MOSAIC_VARIANTS[label]
    cfg = MosaicConfig(cams=cams, width=size, height=size, frames=FRAMES)

    def run():
        pipe = build_mosaic(cfg)
        result = run_program(pipe.program, workers=workers, timeout=600)
        return pipe, result

    pipe, result = benchmark.pedantic(run, rounds=1, iterations=1)
    got = [f.tobytes() for f in pipe.collector().values()]
    assert got == [f.tobytes() for f in mosaic_baseline(cfg)]
    fps = FRAMES / result.wall_time
    benchmark.extra_info["sustained_fps"] = fps
    _RESULTS[label] = {
        "cams": cams,
        "workers": workers,
        "frames": FRAMES,
        "width": size,
        "height": size,
        "wall_time_s": round(result.wall_time, 4),
        "sustained_fps": round(fps, 2),
        "byte_identical": True,
    }
    emit(
        f"ops mosaic [{label}]",
        f"{cams} cams x {FRAMES} frames ({size}x{size}) on {workers} "
        f"workers: {result.wall_time:.2f}s ({fps:.1f} fps composited, "
        f"byte-identical)",
    )
    _maybe_write()


def test_ops_motion(benchmark):
    cfg = MotionConfig(width=64, height=64, frames=FRAMES, region=16)

    def run():
        pipe = build_motion(cfg)
        result = run_program(pipe.program, workers=4, timeout=600)
        return pipe, result

    pipe, result = benchmark.pedantic(run, rounds=1, iterations=1)
    got = pipe.collector().values()
    base = motion_baseline(cfg)
    assert len(got) == len(base)
    for g, b in zip(got, base):
        assert g["m"].tobytes() == b["m"].tobytes()
        assert g["z"].tobytes() == b["z"].tobytes()
    fps = len(got) / result.wall_time
    benchmark.extra_info["sustained_fps"] = fps
    _RESULTS["motion-4w"] = {
        "workers": 4,
        "frames": FRAMES,
        "wall_time_s": round(result.wall_time, 4),
        "sustained_fps": round(fps, 2),
        "byte_identical": True,
    }
    emit(
        "ops motion [motion-4w]",
        f"{len(got)} windowed samples on 4 workers: "
        f"{result.wall_time:.2f}s ({fps:.1f} fps, byte-identical)",
    )
    _maybe_write()


def test_ops_transcode(benchmark):
    cfg = TranscodeConfig(width=64, height=64, frames=12)

    def run():
        pipe = build_transcode(cfg)
        result = run_program(pipe.program, workers=4, timeout=600)
        return pipe, result

    pipe, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pipe.collector().values() == transcode_baseline(cfg)
    fps = cfg.frames / result.wall_time
    benchmark.extra_info["sustained_fps"] = fps
    _RESULTS["transcode-4w"] = {
        "workers": 4,
        "frames": cfg.frames,
        "wall_time_s": round(result.wall_time, 4),
        "sustained_fps": round(fps, 2),
        "byte_identical": True,
    }
    emit(
        "ops transcode [transcode-4w]",
        f"{cfg.frames} frames decode->/2->re-encode on 4 workers: "
        f"{result.wall_time:.2f}s ({fps:.1f} fps, byte-identical)",
    )
    _maybe_write()
