"""Table I — overview of test machines (profile constants + capacity
model evaluation speed)."""

from conftest import emit

from repro.bench import table1_machines
from repro.sim import CORE_I7_860, OPTERON_8218


def test_table1_machines(benchmark):
    text = benchmark(table1_machines)
    emit("Table I: overview of test machines", text)
    benchmark.extra_info["i7_cap_1"] = CORE_I7_860.capacity(1)
    benchmark.extra_info["i7_cap_8"] = CORE_I7_860.capacity(8)
    benchmark.extra_info["opteron_cap_8"] = OPTERON_8218.capacity(8)
    assert "Core i7" in text
