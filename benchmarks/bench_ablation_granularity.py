"""Ablation — LLS data-granularity (figure 4, Age 1 → Age 2).

The paper's remedy for the K-means analyzer bottleneck: "decreasing the
granularity of data-parallelism, in effect leading to each kernel
instance of assign working on larger slices of data ... would increase
the ratio of time spent in kernel code compared to dispatch time and
reduce the workload of the dependency analyzer."

Measured on the real Python runtime: fine (pair) vs LLS-coarsened vs
coarse-by-construction (point) decompositions of the same K-means run.
"""

import numpy as np
import pytest
from conftest import emit, write_variants_json

from repro.core import coarsen, run_program
from repro.workloads import build_kmeans, kmeans_baseline

N, K, ITERS = 150, 10, 4
BASE = kmeans_baseline(n=N, k=K, iterations=ITERS)
VARIANTS = ["fine", "coarsened", "point"]
_RESULTS: dict[str, dict] = {}


def _check(sink):
    for age in BASE.history:
        assert np.allclose(sink.history[age], BASE.history[age])


@pytest.mark.parametrize("variant", VARIANTS)
def test_granularity(benchmark, variant):
    def run():
        program, sink = build_kmeans(
            n=N, k=K, iterations=ITERS,
            granularity="point" if variant == "point" else "pair",
        )
        if variant == "coarsened":
            program = coarsen(program, "assign", "x", 32)
        result = run_program(program, workers=4, timeout=600)
        return result, sink

    result, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    _check(sink)
    assign = result.stats["assign"]
    benchmark.extra_info["assign_instances"] = assign.instances
    benchmark.extra_info["dispatch_ratio"] = round(assign.dispatch_ratio, 3)
    benchmark.extra_info["analyzer_s"] = round(
        result.instrumentation.analyzer_time, 3
    )
    emit(
        f"granularity ablation [{variant}]",
        f"assign instances: {assign.instances}, dispatch ratio: "
        f"{assign.dispatch_ratio:.2f}, analyzer time: "
        f"{result.instrumentation.analyzer_time:.3f}s, wall: "
        f"{result.wall_time:.3f}s",
    )
    _RESULTS[variant] = {
        "wall_time_s": round(result.wall_time, 4),
        "assign_instances": assign.instances,
        "dispatch_ratio": round(assign.dispatch_ratio, 3),
        "analyzer_s": round(result.instrumentation.analyzer_time, 4),
    }
    if len(_RESULTS) == len(VARIANTS):
        write_variants_json(
            "ablation_granularity", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="fine", workload="kmeans", n=N, k=K,
            iterations=ITERS,
        )
