"""Table III — micro-benchmark of K-means in P2G.

Pair granularity reproduces the paper's instance arithmetic
(n·K·iterations assigns, K·iterations refines, iterations+1 prints);
scale reduced from n=2000, K=100 for Python-runtime wall-clock.
"""

from conftest import emit

from repro.bench.experiments import PAPER_TABLE3, table3_kmeans_micro

N, K, ITERS = 200, 20, 10


def test_table3_kmeans_micro(benchmark):
    result = benchmark.pedantic(
        table3_kmeans_micro,
        kwargs={"n": N, "k": K, "iterations": ITERS, "workers": 4},
        rounds=1,
        iterations=1,
    )
    emit("Table III: micro-benchmark of K-means", result.render())
    rows = {name: (n, d, k) for name, n, d, k in result.rows}
    assert rows["init"][0] == 1
    assert rows["assign"][0] == N * K * ITERS
    assert rows["refine"][0] == K * ITERS
    assert rows["print"][0] == ITERS + 1
    # the paper's defining signal: assign dispatch ~ kernel time
    _n, dispatch, kernel = rows["assign"]
    benchmark.extra_info["assign_dispatch_ratio"] = round(
        dispatch / (dispatch + kernel), 3
    )
    for name, (n, d, k) in rows.items():
        benchmark.extra_info[f"{name}_instances"] = n
    benchmark.extra_info["paper_assign_instances"] = PAPER_TABLE3["assign"][0]
