"""Ablation — HLS partitioners (graph-partitioning vs search-based,
section IV's refs [17] and [14]) on instrumentation-weighted graphs."""

import pytest
from conftest import emit

from repro.core import run_program
from repro.core.graph import weighted_final_graph
from repro.dist import partition_graph
from repro.workloads import MJPEGConfig, build_kmeans, build_mjpeg

CAPS = {"n0": 4.0, "n1": 2.0, "n2": 2.0}


def _weighted_graph():
    program, _ = build_kmeans(n=100, k=8, iterations=3,
                              granularity="point")
    result = run_program(program, workers=2, timeout=300)
    return program, weighted_final_graph(program, result.instrumentation)


PROGRAM, GRAPH = _weighted_graph()


@pytest.mark.parametrize("method", ["greedy", "kl", "tabu"])
def test_partitioner(benchmark, method):
    kwargs = {"iterations": 100} if method == "tabu" else {}
    partition = benchmark(partition_graph, GRAPH, CAPS, method, **kwargs)
    partition.validate(GRAPH)
    cut = partition.edge_cut(GRAPH)
    imb = partition.imbalance(GRAPH)
    benchmark.extra_info["edge_cut"] = round(cut, 2)
    benchmark.extra_info["imbalance"] = round(imb, 3)
    emit(
        f"partitioner ablation [{method}]",
        f"edge cut: {cut:.2f}, imbalance: {imb:.3f}, "
        f"parts: { {p: len(partition.members(p)) for p in partition.parts()} }",
    )
