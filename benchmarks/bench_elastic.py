"""Elastic scale-out — fps and p99 before/during/after a live migration.

The elasticity claim (DESIGN.md §15): a running cluster can absorb a
mid-run node join — fence, incremental repartition, event-log replay,
epoch flip — without dropping or corrupting a single frame, and the
added capacity shows up as throughput once the migration commits.

Two variants over the same two unpaced sessions:

* ``2node-static``  — the reference run on a fixed 2-node cluster.
* ``2to4-elastic``  — the same run started on 2 nodes with
  ``elastic=True``; once a third of the frames have completed, two
  nodes join mid-run (2→4).  Output must stay byte-identical to the
  deterministic per-session reference, no RecoveryManager involvement,
  and post-migration throughput must reach ≥ 1.5x the static baseline.

The per-frame work is *latency-bound* (a ``sleep`` that releases the
GIL) rather than CPU-bound, so the capacity ratio between 2 and 4
nodes is a property of the worker pool, not of the host's core count —
the bench behaves the same on a 1-core CI runner and a workstation.

Frame timestamps are captured at the two ends of the pipeline: an
admission stamp inside each session's ``store_frame`` glue and a
completion stamp inside the merged program's output handler, giving an
end-to-end latency per (session, age) that the migration window splits
into pre/during/post phases.

Artifact: ``BENCH_elastic.json`` via
:func:`conftest.write_variants_json` — variant table plus the
``phases`` breakdown (fps, p99, frame counts per phase).
"""

import hashlib
import math
import threading
import time

import numpy as np
from conftest import emit, write_variants_json

from repro.core import FetchSpec, FieldDef, KernelDef, Program
from repro.core.events import StoreEvent
from repro.dist import Cluster
from repro.stream import (
    SessionSpec,
    StreamBinding,
    StreamConfig,
    merge_sessions,
)
from repro.stream.sources import FrameSource

SESSIONS = 4          # one work kernel each: 4 kernels spread 2+2 on
                      # two nodes, 1+1+1+1 once two more join
FRAMES = 40           # per session
TOTAL = SESSIONS * FRAMES
WORK_MS = 20.0        # per-frame latency-bound work (GIL-free sleep)
PAYLOAD = 64          # bytes per synthetic frame
LAG_WINDOW = 8
NODE_WORKERS = 2
SCALE_AFTER = TOTAL // 3   # completions before the join fires
POST_SPEEDUP_FLOOR = 1.5   # post-migration fps vs the static baseline

_RESULTS: dict[str, dict] = {}
_PHASES: dict[str, dict] = {}
_ALL = ["2node-static", "2to4-elastic"]


class _PayloadSource(FrameSource):
    """Deterministic infinite byte-array camera (seeded PRNG)."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def frames(self):
        rng = np.random.default_rng(self.seed)
        while True:
            yield rng.integers(0, 256, size=PAYLOAD, dtype=np.uint8)


def _digest(arr) -> str:
    return hashlib.sha1(arr.tobytes()).hexdigest()


def _expected(seed: int, frames: int) -> dict[int, str]:
    rng = np.random.default_rng(seed)
    return {
        age: _digest(rng.integers(0, 256, size=PAYLOAD, dtype=np.uint8))
        for age in range(frames)
    }


def _build_session(name: str, seed: int, admit: dict):
    """One latency-bound session: a single aged ``work`` kernel that
    sleeps ``WORK_MS`` per frame and outputs the frame's digest."""
    sink: dict[int, str] = {}

    def work_body(ctx) -> None:
        data = ctx["x"]
        time.sleep(WORK_MS / 1000.0)
        ctx.output("done", _digest(data))

    work = KernelDef(
        name="work",
        body=work_body,
        has_age=True,
        fetches=(FetchSpec("x", "x_input"),),
    )
    program = Program.build(
        fields=[FieldDef("x_input", "uint8", 1, shape=(PAYLOAD,))],
        kernels=[work],
        name="sleepcam",
    )

    def on_output(kernel, age, index, key, value) -> None:
        if key == "done":
            sink.setdefault(age, value)

    program.set_output_handler(on_output)

    def store_frame(fields, age, frame):
        admit.setdefault((name, age), time.perf_counter())
        region = (slice(0, PAYLOAD),)
        fields["x_input"].store(age, region, frame)
        return [StoreEvent("x_input", age, region)]

    binding = StreamBinding(
        source=_PayloadSource(seed),
        store_frame=store_frame,
        completion_key="done",
        config=StreamConfig(
            fps=0, max_frames=FRAMES, lag_window=LAG_WINDOW
        ),
    )
    return SessionSpec(name, program, binding), sink


def _p99_ms(latencies: list[float]) -> float:
    lat = sorted(latencies)
    idx = max(0, math.ceil(0.99 * len(lat)) - 1)
    return round(lat[idx] * 1000.0, 3)


def _run(elastic: bool) -> dict:
    admit: dict[tuple, float] = {}
    complete: dict[tuple, float] = {}
    specs, sinks = [], {}
    for i in range(SESSIONS):
        spec, sink = _build_session(f"e{i}", 7000 + i, admit)
        specs.append(spec)
        sinks[spec.name] = sink
    merged = merge_sessions(specs)

    orig = merged.output_handler

    def capture(kernel, age, index, key, value) -> None:
        if key == "done":
            session = kernel.partition(".")[0]
            complete.setdefault((session, age), time.perf_counter())
        orig(kernel, age, index, key, value)

    merged.set_output_handler(capture)
    cluster = Cluster(merged, {f"n{i}": NODE_WORKERS for i in range(2)})

    window: dict[str, float] = {}
    failures: list[BaseException] = []

    def trigger() -> None:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if len(complete) >= SCALE_AFTER:
                break
            time.sleep(0.002)
        try:
            window["start"] = time.perf_counter()
            cluster.add_node("n2", workers=NODE_WORKERS)
            cluster.add_node("n3", workers=NODE_WORKERS)
            window["end"] = time.perf_counter()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    thread = None
    if elastic:
        thread = threading.Thread(target=trigger, daemon=True)
        thread.start()
    t0 = time.perf_counter()
    result = cluster.run(
        sessions=specs, timeout=600, stall_timeout=240,
        elastic=elastic,
    )
    wall = time.perf_counter() - t0
    if thread is not None:
        thread.join(timeout=120)
    if failures:
        raise failures[0]

    assert result.reason == "idle"
    assert result.recoveries == []
    for spec in specs:
        exp = _expected(7000 + int(spec.name[1:]), FRAMES)
        assert sinks[spec.name] == exp, (
            f"session {spec.name} output diverged across migration"
        )
        r = result.stream.sessions[spec.name]
        assert r.offered == r.completed == FRAMES and r.shed == 0

    lats = {
        k: complete[k] - admit[k] for k in complete if k in admit
    }
    t_first = min(admit.values())
    t_last = max(complete.values())
    data = {
        "sessions": SESSIONS,
        "frames_total": TOTAL,
        "work_ms": WORK_MS,
        "node_workers": NODE_WORKERS,
        "nodes_start": 2,
        "nodes_end": 4 if elastic else 2,
        "aggregate_fps": round(TOTAL / (t_last - t_first), 2),
        "p99_ms": _p99_ms(list(lats.values())),
        "byte_identical": True,
        "wall_time_s": round(wall, 4),
    }
    if not elastic:
        return data

    assert len(result.migrations) == 2
    assert [m.reason for m in result.migrations] == [
        "join:n2", "join:n3"
    ]
    assert result.membership["nodes"] == {
        f"n{i}": "active" for i in range(4)
    }
    data.update(
        migrations=len(result.migrations),
        moved_kernels=sum(m.moved_kernels for m in result.migrations),
        replayed=sum(m.replayed for m in result.migrations),
        migration_s=round(
            sum(m.migration_s for m in result.migrations), 4
        ),
        membership_epoch=result.membership["epoch"],
    )

    # Split frame completions into pre/during/post-migration phases by
    # the wall-clock window the two joins occupied.
    edges = (window["start"], window["end"])
    phases = {"pre": [], "during": [], "post": []}
    for key, t_c in complete.items():
        if key not in admit:
            continue
        name = (
            "pre" if t_c < edges[0]
            else "during" if t_c <= edges[1]
            else "post"
        )
        phases[name].append((t_c, lats[key]))
    spans = {
        "pre": edges[0] - t_first,
        "during": edges[1] - edges[0],
        "post": t_last - edges[1],
    }
    out = {}
    for name, samples in phases.items():
        span = spans[name]
        entry = {"frames": len(samples)}
        if span > 0:
            entry["fps"] = round(len(samples) / span, 2)
        if samples:
            entry["p99_ms"] = _p99_ms([l for _, l in samples])
        out[name] = entry
    _PHASES.update(out)
    data["post_migration_fps"] = out["post"].get("fps", 0.0)
    return data


def _maybe_write() -> None:
    if len(_RESULTS) == len(_ALL):
        write_variants_json(
            "elastic", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="2node-static", phases=_PHASES,
            workload="sleepcam-live", scale_after_frames=SCALE_AFTER,
        )


def test_static_two_node_baseline(benchmark):
    data = benchmark.pedantic(
        lambda: _run(elastic=False), rounds=1, iterations=1
    )
    benchmark.extra_info.update(data)
    _RESULTS["2node-static"] = data
    emit(
        "elastic baseline",
        f"2 nodes x {NODE_WORKERS}w: {data['aggregate_fps']} fps, "
        f"p99 {data['p99_ms']} ms",
    )
    _maybe_write()


def test_elastic_scale_out_2_to_4(benchmark):
    data = benchmark.pedantic(
        lambda: _run(elastic=True), rounds=1, iterations=1
    )
    benchmark.extra_info.update(data)
    # The capacity claim: once the joins commit, throughput must clear
    # 1.5x the static 2-node baseline (ideal is ~2x).
    base = _RESULTS.get("2node-static") or _run(elastic=False)
    _RESULTS.setdefault("2node-static", base)
    post = data["post_migration_fps"]
    assert post >= POST_SPEEDUP_FLOOR * base["aggregate_fps"], (
        f"post-migration fps {post} below "
        f"{POST_SPEEDUP_FLOOR}x baseline {base['aggregate_fps']}"
    )
    _RESULTS["2to4-elastic"] = data
    lines = [
        f"2->4 elastic: {data['aggregate_fps']} fps overall, "
        f"{data['migrations']} migrations "
        f"({data['moved_kernels']} kernels moved, "
        f"{data['migration_s'] * 1000:.1f} ms)",
    ]
    for name in ("pre", "during", "post"):
        ph = _PHASES.get(name, {})
        lines.append(
            f"  {name:<7} {ph.get('frames', 0):>3} frames  "
            f"{ph.get('fps', '-'):>8} fps  "
            f"p99 {ph.get('p99_ms', '-')} ms"
        )
    lines.append(
        f"  floor: post >= {POST_SPEEDUP_FLOOR}x baseline "
        f"({base['aggregate_fps']} fps) -> "
        f"{post / base['aggregate_fps']:.2f}x"
    )
    emit("elastic scale-out", "\n".join(lines))
    _maybe_write()
