"""Ablation — LLS task fusion (figure 4, Age 2 → Age 3/4).

Fusing mul2+plus5 halves the instance count; fusing *and* coarsening
turns each age into "a classical for-loop" (one instance).  The
intermediate-store elision is measured by dropping the print consumer.
"""

import numpy as np
import pytest
from conftest import emit, write_variants_json

from repro.core import coarsen, fuse, run_program
from repro.workloads import build_mulsum, expected_series

AGES = 60
EXPECTED = expected_series(AGES + 1, modulo=2**40)
VARIANTS = ["baseline", "fused", "fused+coarse", "fused+elided"]
_RESULTS: dict[str, dict] = {}


def _variant(name):
    program, sink = build_mulsum(modulo=2**40)
    if name == "fused":
        program = fuse(program, "mul2", "plus5")
    elif name == "fused+coarse":
        program = coarsen(
            fuse(program, "mul2", "plus5"), "mul2+plus5", "x", 5
        )
    elif name == "fused+elided":
        program = fuse(program.without_kernels("print"), "mul2", "plus5")
    return program, sink


@pytest.mark.parametrize("variant", VARIANTS)
def test_fusion(benchmark, variant):
    def run():
        program, sink = _variant(variant)
        result = run_program(program, workers=4, max_age=AGES, timeout=600)
        return result, sink

    result, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    if variant != "fused+elided":
        for age in (0, AGES // 2, AGES):
            assert np.array_equal(sink[age][0], EXPECTED[age][0])
    else:
        m = result.fields["m_data"].fetch(AGES)
        assert np.array_equal(m, EXPECTED[AGES][0])
    total = result.instrumentation.total_instances()
    benchmark.extra_info["total_instances"] = total
    benchmark.extra_info["analyzer_s"] = round(
        result.instrumentation.analyzer_time, 4
    )
    emit(
        f"fusion ablation [{variant}]",
        f"total instances: {total}, wall: {result.wall_time:.3f}s, "
        f"analyzer: {result.instrumentation.analyzer_time:.4f}s",
    )
    _RESULTS[variant] = {
        "wall_time_s": round(result.wall_time, 4),
        "total_instances": total,
        "analyzer_s": round(result.instrumentation.analyzer_time, 4),
    }
    if len(_RESULTS) == len(VARIANTS):
        write_variants_json(
            "ablation_fusion", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="baseline", workload="mulsum", ages=AGES,
        )
