"""Multi-tenant serving — sessions × workers sweep + tiered overload.

The serving claim (DESIGN.md §13): one runtime multiplexes N
independent stream sessions over a shared worker pool with per-session
backpressure and fair cross-tenant dispatch, and under overload the QoS
tiers order the pain — gold sessions keep every frame while best-effort
sessions shed.

Two families of variants:

* ``Ns-Ww`` — N unpaced sessions on W workers, every session's output
  asserted byte-identical to its solo batch run; reports aggregate
  sustained fps and the worst per-session p99.
* ``8s-2gold-overload`` — eight paced sessions (2 gold + 6 best-effort)
  offered beyond capacity under a per-frame deadline: gold must
  complete everything with zero sheds and p99 inside the deadline,
  best-effort must shed.

Artifact: ``BENCH_multitenant.json`` via
:func:`conftest.write_variants_json`.
"""

import pytest
from conftest import emit, write_variants_json

from repro.stream import SessionManager, SessionSpec, StreamConfig
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline

FRAMES = 24
SIZE = 32
#: label -> (sessions, workers)
SCALE_VARIANTS = {
    "2s-2w": (2, 2),
    "4s-4w": (4, 4),
    "8s-4w": (8, 4),
    "8s-8w": (8, 8),
}
OVERLOAD_LABEL = "8s-2gold-overload"
#: 8 x 50 fps offered = ~400 fps aggregate against ~270 fps of 4-worker
#: capacity (see the 8s-4w scale variant): overloaded, but the gold
#: slice alone (2 x 50 fps) fits comfortably once best-effort sheds.
#: Deadlines are tiered: best-effort runs an aggressive deadline so it
#: sheds (and frees workers) quickly, gold a lenient one it must meet.
OVERLOAD = dict(
    sessions=8, gold=2, workers=4, fps=50.0, deadline_ms=250.0,
    be_deadline_ms=40.0, frames=40, lag_window=4, gold_weight=4,
)
_RESULTS: dict[str, dict] = {}
_ALL = list(SCALE_VARIANTS) + [OVERLOAD_LABEL]


def _specs(n, *, frames, fps, lag_window=8, deadline_ms=None, gold=0,
           be_deadline_ms=None, size=SIZE):
    specs, sinks, cfgs = [], {}, {}
    for i in range(n):
        name = f"s{i}"
        cfg = MJPEGConfig(width=size, height=size, frames=frames,
                          seed=4000 + i)
        is_gold = i < gold
        scfg = StreamConfig(
            fps=fps, max_frames=frames, lag_window=lag_window,
            deadline_ms=(deadline_ms if is_gold or be_deadline_ms is None
                         else be_deadline_ms),
            qos_class="gold" if is_gold else "best-effort",
        )
        program, sink, binding = build_mjpeg_stream(cfg, scfg)
        specs.append(SessionSpec(name, program, binding))
        sinks[name] = sink
        cfgs[name] = cfg
    return specs, sinks, cfgs


def _maybe_write() -> None:
    if len(_RESULTS) == len(_ALL):
        write_variants_json(
            "multitenant", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
            baseline="2s-2w", workload="mjpeg-live-multitenant",
            width=SIZE, height=SIZE,
        )


@pytest.mark.parametrize("label", list(SCALE_VARIANTS))
def test_multitenant_scale(benchmark, label):
    n, workers = SCALE_VARIANTS[label]

    def run():
        specs, sinks, cfgs = _specs(n, frames=FRAMES, fps=0)
        mgr = SessionManager(specs, workers=workers, batch=16)
        result = mgr.run(timeout=600)
        return result, sinks, cfgs

    result, sinks, cfgs = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = result.stream
    assert len(rep.sessions) == n
    worst_p99 = 0.0
    for name, r in rep.sessions.items():
        assert r.completed == r.offered == FRAMES
        assert r.shed == 0 and r.degraded == 0
        # Nothing shed: every tenant byte-identical to its solo run.
        assert sinks[name].stream() == mjpeg_baseline(config=cfgs[name])
        worst_p99 = max(worst_p99, r.latency_ms["p99"])
    total = n * FRAMES
    agg_fps = total / rep.duration_s
    benchmark.extra_info["aggregate_fps"] = agg_fps
    benchmark.extra_info["worst_p99_ms"] = worst_p99
    _RESULTS[label] = {
        "sessions": n,
        "workers": workers,
        "wall_time_s": round(rep.duration_s, 4),
        "frames_total": total,
        "aggregate_fps": round(agg_fps, 2),
        "worst_p99_ms": round(worst_p99, 3),
        "byte_identical": True,
    }
    emit(
        f"multitenant [{label}]",
        f"{n} sessions x {FRAMES} frames on {workers} workers: "
        f"{rep.duration_s:.2f}s ({agg_fps:.1f} fps aggregate), "
        f"worst per-session p99 {worst_p99:.1f}ms, all byte-identical",
    )
    _maybe_write()


def test_multitenant_tiered_overload(benchmark):
    o = OVERLOAD

    def run():
        specs, sinks, cfgs = _specs(
            o["sessions"], frames=o["frames"], fps=o["fps"],
            lag_window=o["lag_window"], deadline_ms=o["deadline_ms"],
            be_deadline_ms=o["be_deadline_ms"], gold=o["gold"],
        )
        weights = {
            s.name: o["gold_weight"] if s.qos_class == "gold" else 1
            for s in specs
        }
        mgr = SessionManager(specs, workers=o["workers"], batch=16,
                             session_weights=weights)
        result = mgr.run(timeout=600)
        return result.stream

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    by_class = rep.by_class()
    gold, be = by_class["gold"], by_class["best-effort"]
    # The serving guarantee: overload lands on best-effort only.
    assert gold["shed"] == 0
    assert gold["completed"] == gold["offered"]
    assert gold["p99_ms"] <= o["deadline_ms"]
    assert be["shed"] > 0
    benchmark.extra_info["gold_p99_ms"] = gold["p99_ms"]
    benchmark.extra_info["be_shed"] = be["shed"]
    _RESULTS[OVERLOAD_LABEL] = {
        "sessions": o["sessions"],
        "workers": o["workers"],
        "gold_sessions": o["gold"],
        "offered_fps_per_session": o["fps"],
        "deadline_ms": o["deadline_ms"],
        "wall_time_s": round(rep.duration_s, 4),
        "gold_p99_ms": round(gold["p99_ms"], 3),
        "gold_shed": gold["shed"],
        "gold_completed": gold["completed"],
        "be_shed": be["shed"],
        "be_completed": be["completed"],
    }
    emit(
        "multitenant [tiered overload]",
        f"{o['sessions']} sessions ({o['gold']} gold) at {o['fps']:.0f} "
        f"fps offered on {o['workers']} workers: gold "
        f"{gold['completed']}/{gold['offered']} complete, 0 shed, "
        f"p99 {gold['p99_ms']:.1f}ms (deadline {o['deadline_ms']:.0f}ms); "
        f"best-effort shed {be['shed']} of {be['offered']}",
    )
    _maybe_write()
