"""Configuration-advisor benchmarks (section V-A: the weighted graphs
"could be used as input to a simulator to best determine how to
initially configure a workload, given various global topology
configurations")."""

import time

import pytest
from conftest import emit, write_variants_json

from repro.sim import (
    CORE_I7_860,
    OPTERON_8218,
    granularity_what_if,
    paper_kmeans_model,
    paper_mjpeg_model,
    recommend_workers,
)

_CASES = 4  # the recommend_workers parameter grid below
_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize(
    "workload,machine",
    [
        ("mjpeg", CORE_I7_860),
        ("mjpeg", OPTERON_8218),
        ("kmeans", CORE_I7_860),
        ("kmeans", OPTERON_8218),
    ],
    ids=lambda v: getattr(v, "name", v).replace(" ", "_")[:12],
)
def test_recommend_workers(benchmark, workload, machine):
    model = (paper_mjpeg_model(20) if workload == "mjpeg"
             else paper_kmeans_model())
    t0 = time.perf_counter()
    rec = benchmark.pedantic(
        recommend_workers, args=(model, machine),
        kwargs={"max_workers": 8}, rounds=1, iterations=1,
    )
    wall = time.perf_counter() - t0
    emit(
        f"advisor [{workload} on {machine.name}]",
        f"provision {rec.knee} workers (best {rec.best_workers} at "
        f"{rec.best_makespan:.2f}s, speedup {rec.speedup():.1f}x, "
        f"analyzer-bound: {rec.analyzer_bound})",
    )
    benchmark.extra_info["knee"] = rec.knee
    benchmark.extra_info["best_makespan"] = round(rec.best_makespan, 2)
    _RESULTS[f"{workload}/{machine.name}"] = {
        "wall_time_s": round(wall, 4),
        "knee": rec.knee,
        "best_workers": rec.best_workers,
        "best_makespan_s": round(rec.best_makespan, 2),
        "model_speedup": round(rec.speedup(), 3),
        "analyzer_bound": rec.analyzer_bound,
    }
    if len(_RESULTS) == _CASES:
        write_variants_json(
            "advisor", _RESULTS,
            sum(v["wall_time_s"] for v in _RESULTS.values()),
        )
    if workload == "kmeans":
        assert rec.analyzer_bound
        assert rec.knee <= 5
    else:
        assert not rec.analyzer_bound


def test_granularity_what_if(benchmark):
    t0 = time.perf_counter()
    results = benchmark.pedantic(
        granularity_what_if,
        args=(paper_kmeans_model(), OPTERON_8218, "assign"),
        kwargs={"factors": (1, 8, 64, 512), "max_workers": 8},
        rounds=1, iterations=1,
    )
    wall = time.perf_counter() - t0
    lines = []
    variants = {}
    for r in results:
        rec = r.recommendation
        lines.append(
            f"coarsen x{r.factor:>3}: best {rec.best_makespan:6.2f}s at "
            f"{rec.best_workers} workers, knee {rec.knee}, "
            f"analyzer-bound {rec.analyzer_bound}"
        )
        benchmark.extra_info[f"x{r.factor}_makespan"] = round(
            rec.best_makespan, 2
        )
        variants[f"x{r.factor}"] = {
            "best_makespan_s": round(rec.best_makespan, 2),
            "best_workers": rec.best_workers,
            "knee": rec.knee,
            "analyzer_bound": rec.analyzer_bound,
        }
    write_variants_json(
        "advisor_whatif", variants, wall,
        workload="kmeans", machine=OPTERON_8218.name, kernel="assign",
    )
    emit("granularity what-if (K-means assign, Opteron)", "\n".join(lines))
    # coarsening must remove the analyzer bottleneck and improve makespan
    assert (results[-1].recommendation.best_makespan
            < results[0].recommendation.best_makespan)
