"""Ablation — age-priority vs FIFO ready-queue scheduling.

Section VI-B: instances are "scheduled in an order that prefers the
execution of kernel instances with a lower age value (older kernel
instances).  This ensures that no runnable kernel instance is starved by
others that have no fetch statements" — i.e. by self-advancing source
kernels.

The probe workload is exactly that hazard: a cheap source kernel that
could read the whole stream instantly, feeding an expensive per-age
consumer.  Under age priority a free worker always prefers the oldest
pending consumer instance over the next source read, throttling the
source to a bounded number of in-flight ages; under FIFO the source
races ahead and every age's input stays live at once.  Measured: the
peak live field footprint (with age GC enabled, so the footprint *is*
the scheduling skew) and the peak source lead.
"""

import time

import numpy as np
import pytest
from conftest import emit

from repro.core import (
    Dim,
    ExecutionNode,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
)

AGES = 20
FRAME = 64  # elements per age (per-element consumer => deep ready queue)


def build_stream_program(tracker):
    data = np.arange(FRAME, dtype=np.int64)
    consumed = []

    def source_body(ctx: KernelContext) -> None:
        if ctx.age > AGES:
            return
        tracker["max_source_age"] = max(
            tracker.get("max_source_age", 0), ctx.age
        )
        ctx.emit("stream", data + ctx.age)

    def consumer_body(ctx: KernelContext) -> None:
        time.sleep(0.0005)  # per-element work keeps a backlog queued
        lead = tracker.get("max_source_age", 0) - ctx.age
        tracker["max_lead"] = max(tracker.get("max_lead", 0), lead)
        node = ctx.node
        tracker["peak_live_bytes"] = max(
            tracker.get("peak_live_bytes", 0), node.fields.live_bytes()
        )
        consumed.append(int(ctx["chunk"]))

    source = KernelDef(
        "source", source_body, has_age=True,
        stores=(StoreSpec("stream", key="stream"),),
    )
    consumer = KernelDef(
        "consumer", consumer_body, has_age=True, index_vars=("x",),
        fetches=(
            FetchSpec("chunk", "stream", dims=(Dim.of("x"),), scalar=True),
        ),
    )
    program = Program.build(
        [FieldDef("stream", "int64", 1, shape=(FRAME,))],
        [source, consumer],
        name="stream",
    )
    return program, consumed


@pytest.mark.parametrize("policy", ["age", "fifo", "lifo"])
def test_scheduling_policy(benchmark, policy):
    def run():
        tracker = {}
        program, consumed = build_stream_program(tracker)
        node = ExecutionNode(
            program, workers=2, gc_fields=True, keep_ages=1,
            scheduling=policy,
        )
        result = node.run(timeout=600)
        return result, tracker, consumed

    result, tracker, consumed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert len(consumed) == (AGES + 1) * FRAME  # all elements, every age
    benchmark.extra_info["peak_live_bytes"] = tracker["peak_live_bytes"]
    benchmark.extra_info["max_source_lead"] = tracker["max_lead"]
    benchmark.extra_info["ready_high_water"] = result.ready_high_water
    emit(
        f"scheduling ablation [{policy}]",
        f"peak live field bytes: {tracker['peak_live_bytes']}, "
        f"max source lead (ages): {tracker['max_lead']}, "
        f"ready high water: {result.ready_high_water}",
    )
