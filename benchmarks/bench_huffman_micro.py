"""Huffman entropy-coder micro-benchmark: scalar vs batched encoder.

``encode_block`` is the hot loop of the VLC kernel (every 8x8 block of
every frame funnels through it).  The optimized version pulls the
zig-zag coefficients into one Python list, looks codes up in flat
precomputed tables, and accumulates the whole block's bitstream into a
single arbitrary-precision integer so the byte-stuffing writer runs
once per block instead of once per symbol.
``encode_block_scalar`` keeps the original coefficient-at-a-time loop
as the parity oracle and baseline.

This bench times both over a deterministic mix of block densities
(sparse quantized blocks dominate real traffic) and asserts the
bitstreams stay identical.  The recorded ``speedup_nnz*`` numbers are
the before/after evidence for the optimization.
"""

import numpy as np

from conftest import emit

from repro.media.bitstream import BitWriter
from repro.media.huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    encode_block,
    encode_block_scalar,
)

DENSITIES = (4, 8, 32, 63)  # non-zero AC coefficients per block
BLOCKS_PER_DENSITY = 64


def _blocks(nnz: int, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        zz = np.zeros(64, dtype=np.int64)
        zz[0] = rng.integers(0, 1024)  # DC within baseline range
        pos = rng.choice(63, size=nnz, replace=False) + 1
        vals = rng.integers(1, 512, size=nnz)
        signs = rng.choice((-1, 1), size=nnz)
        zz[pos] = vals * signs
        out.append(zz)
    return out


def _encode_all(encoder, suites) -> bytes:
    dc_t, ac_t = STD_DC_LUMA, STD_AC_LUMA
    writer = BitWriter()
    prev = 0
    for blocks in suites.values():
        for zz in blocks:
            prev = encoder(writer, zz, prev, dc_t, ac_t)
    writer.flush()
    return writer.getvalue()


def test_huffman_encode_block(benchmark):
    suites = {
        nnz: _blocks(nnz, BLOCKS_PER_DENSITY, seed=100 + nnz)
        for nnz in DENSITIES
    }
    # parity first: the optimized encoder must be bit-identical,
    # per-density and with chrominance tables too
    assert _encode_all(encode_block, suites) == _encode_all(
        encode_block_scalar, suites
    )
    dc_c, ac_c = STD_DC_CHROMA, STD_AC_CHROMA
    for blocks in suites.values():
        for zz in blocks:
            w1, w2 = BitWriter(), BitWriter()
            assert encode_block(w1, zz, 0, dc_c, ac_c) == (
                encode_block_scalar(w2, zz, 0, dc_c, ac_c)
            )
            w1.flush(), w2.flush()
            assert w1.getvalue() == w2.getvalue()

    timed = benchmark.pedantic(
        lambda: _encode_all(encode_block, suites), rounds=5, iterations=3
    )
    assert timed  # produced a bitstream

    # per-density before/after comparison (single-shot timing)
    import time

    lines = []
    for nnz, blocks in suites.items():
        per = {}
        for name, encoder in (("scalar", encode_block_scalar),
                              ("batched", encode_block)):
            t0 = time.perf_counter()
            for _ in range(3):
                dc_t, ac_t = STD_DC_LUMA, STD_AC_LUMA
                writer = BitWriter()
                prev = 0
                for zz in blocks:
                    prev = encoder(writer, zz, prev, dc_t, ac_t)
                writer.flush()
            per[name] = (time.perf_counter() - t0) / (3 * len(blocks))
        speedup = per["scalar"] / per["batched"]
        benchmark.extra_info[f"speedup_nnz{nnz}"] = round(speedup, 2)
        lines.append(
            f"nnz={nnz:2d}: scalar {per['scalar'] * 1e6:6.1f}us  "
            f"batched {per['batched'] * 1e6:6.1f}us  "
            f"speedup {speedup:4.2f}x"
        )
    emit("Huffman encode_block micro-benchmark "
         f"({BLOCKS_PER_DENSITY} blocks per density)", "\n".join(lines))
