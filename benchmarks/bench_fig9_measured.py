"""Figure 9, measured tier: the real Python runtime's worker sweep.

The headline figure-9 reproduction is simulated (see
`bench_fig9_mjpeg_scaling.py` and DESIGN.md §2); this bench runs the
*actual* threaded runtime on this host at a reduced scale and records
whatever scaling CPython allows.  NumPy releases the GIL inside the DCT
matmuls, so some real speedup is expected — but per-instance Python
overhead (fetch/store bookkeeping) holds the GIL, which is precisely
why the scaling curves are reproduced on the simulator.  No shape
assertions beyond sanity; the value of this bench is the recorded
numbers in EXPERIMENTS-style honesty.
"""

import time

from conftest import emit

from repro.core import run_program
from repro.media import synthetic_sequence
from repro.workloads import MJPEGConfig, build_mjpeg, mjpeg_baseline

CFG = MJPEGConfig(width=352, height=288, frames=3)  # CIF geometry
CLIP = synthetic_sequence(CFG.frames, CFG.width, CFG.height, CFG.seed)
REFERENCE = mjpeg_baseline(CLIP, CFG)


def test_fig9_measured(benchmark):
    def sweep():
        times = {}
        for workers in (1, 2, 4, 8):
            program, sink = build_mjpeg(CLIP, CFG)
            t0 = time.perf_counter()
            result = run_program(program, workers=workers, timeout=1800)
            times[workers] = time.perf_counter() - t0
            assert result.reason == "idle"
            assert sink.stream() == REFERENCE  # correctness at any W
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t0 = time.perf_counter()
    mjpeg_baseline(CLIP, CFG)
    standalone = time.perf_counter() - t0
    lines = [
        f"{w} workers: {t:6.2f}s (speedup {times[1] / t:4.2f}x)"
        for w, t in sorted(times.items())
    ]
    lines.append(f"standalone single-threaded encoder: {standalone:6.2f}s")
    lines.append(
        "note: GIL-bound per-instance overhead caps threaded scaling; "
        "the figure-9 curve shapes are reproduced on the calibrated "
        "simulator (bench_fig9_mjpeg_scaling.py)"
    )
    emit("Figure 9 (measured tier, real Python runtime, "
         f"{CFG.frames} CIF frames)", "\n".join(lines))
    for w, t in times.items():
        benchmark.extra_info[f"workers_{w}_s"] = round(t, 3)
    benchmark.extra_info["standalone_s"] = round(standalone, 3)
    # sanity only: multithreading must not catastrophically regress
    assert times[4] < times[1] * 1.5
