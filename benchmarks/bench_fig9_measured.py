"""Figure 9, measured tier: the real Python runtime's worker sweep.

The headline figure-9 reproduction is simulated (see
`bench_fig9_mjpeg_scaling.py` and DESIGN.md §2); this bench runs the
*actual* runtime on this host at a reduced scale and records whatever
scaling the host allows, on either execution backend:

* ``threads`` — NumPy releases the GIL inside the DCT matmuls, so some
  real speedup is expected, but per-instance Python overhead
  (fetch/store bookkeeping) holds the GIL, which is precisely why the
  scaling curves are reproduced on the simulator.
* ``processes`` — kernel bodies run in worker processes against
  shared-memory fields, so the GIL ceiling disappears and the sweep
  can scale with physical cores.

The pytest path benchmarks the deterministic ``threads`` backend and
asserts byte-identical output against the standalone encoder.  Run the
module as a script for the multi-backend sweep used by CI::

    PYTHONPATH=src python benchmarks/bench_fig9_measured.py \
        --backend both --frames 4 --out fig9.json

The script asserts processes-backend monotonicity 1→4 workers only when
the host actually has ≥4 usable CPUs; otherwise it records the honest
numbers and says so.
"""

import argparse
import json
import os
import sys
import time

from repro.core import run_program
from repro.media import synthetic_sequence
from repro.workloads import MJPEGConfig, build_mjpeg, mjpeg_baseline


def make_clip(frames: int = 3) -> tuple[MJPEGConfig, list]:
    """CIF-geometry config + synthetic clip of the given length."""
    cfg = MJPEGConfig(width=352, height=288, frames=frames)
    clip = synthetic_sequence(cfg.frames, cfg.width, cfg.height, cfg.seed)
    return cfg, clip


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sweep_backend(
    backend: str,
    cfg: MJPEGConfig,
    clip: list,
    reference: bytes,
    workers: tuple = (1, 2, 4, 8),
    timeout: float = 1800.0,
) -> dict:
    """Encode the clip at each worker count; verify output each time."""
    times = {}
    for w in workers:
        program, sink = build_mjpeg(clip, cfg)
        t0 = time.perf_counter()
        result = run_program(
            program, workers=w, timeout=timeout, backend=backend
        )
        times[w] = time.perf_counter() - t0
        assert result.reason == "idle"
        assert sink.stream() == reference  # correctness at any W
    return times


def test_fig9_measured(benchmark):
    from conftest import emit

    cfg, clip = make_clip(frames=3)
    reference = mjpeg_baseline(clip, cfg)

    times = benchmark.pedantic(
        lambda: sweep_backend("threads", cfg, clip, reference),
        rounds=1, iterations=1,
    )
    t0 = time.perf_counter()
    mjpeg_baseline(clip, cfg)
    standalone = time.perf_counter() - t0
    lines = [
        f"{w} workers: {t:6.2f}s (speedup {times[1] / t:4.2f}x)"
        for w, t in sorted(times.items())
    ]
    lines.append(f"standalone single-threaded encoder: {standalone:6.2f}s")
    lines.append(
        "note: GIL-bound per-instance overhead caps threaded scaling; "
        "the figure-9 curve shapes are reproduced on the calibrated "
        "simulator (bench_fig9_mjpeg_scaling.py); run this module as a "
        "script for the processes-backend sweep"
    )
    emit("Figure 9 (measured tier, real Python runtime, "
         f"{cfg.frames} CIF frames)", "\n".join(lines))
    for w, t in times.items():
        benchmark.extra_info[f"workers_{w}_s"] = round(t, 3)
    benchmark.extra_info["standalone_s"] = round(standalone, 3)
    # sanity only: multithreading must not catastrophically regress
    assert times[4] < times[1] * 1.5


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="measured figure-9 MJPEG worker sweep"
    )
    ap.add_argument("--backend", choices=("threads", "processes", "both"),
                    default="both")
    ap.add_argument("--frames", type=int, default=3)
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    ap.add_argument("--timeout", type=float, default=1800.0)
    ap.add_argument("--out", help="write the results JSON to this path")
    args = ap.parse_args(argv)

    cfg, clip = make_clip(args.frames)
    t0 = time.perf_counter()
    reference = mjpeg_baseline(clip, cfg)
    standalone = time.perf_counter() - t0
    cpus = usable_cpus()
    backends = (("threads", "processes") if args.backend == "both"
                else (args.backend,))
    report = {
        "workload": "mjpeg",
        "frames": cfg.frames,
        "geometry": f"{cfg.width}x{cfg.height}",
        "usable_cpus": cpus,
        "standalone_s": round(standalone, 3),
        "backends": {},
    }
    for backend in backends:
        times = sweep_backend(
            backend, cfg, clip, reference,
            workers=tuple(args.workers), timeout=args.timeout,
        )
        report["backends"][backend] = {
            str(w): round(t, 3) for w, t in times.items()
        }
        print(f"-- backend={backend} ({cfg.frames} CIF frames, "
              f"{cpus} usable CPUs)")
        for w, t in sorted(times.items()):
            print(f"   {w} workers: {t:6.2f}s "
                  f"(speedup {times[min(times)] / t:4.2f}x)")
    print(f"-- standalone single-threaded encoder: {standalone:6.2f}s")

    ok = True
    proc = report["backends"].get("processes")
    if proc is not None and cpus >= 4 and {"1", "4"} <= proc.keys():
        speedup = proc["1"] / proc["4"]
        ladder = [proc[str(w)] for w in sorted(args.workers) if w <= 4]
        monotonic = all(a >= b for a, b in zip(ladder, ladder[1:]))
        report["processes_speedup_4w"] = round(speedup, 2)
        report["processes_monotonic_to_4w"] = monotonic
        print(f"-- processes 1->4 workers: {speedup:.2f}x "
              f"({'monotonic' if monotonic else 'NOT monotonic'})")
        if not monotonic or speedup < 2.0:
            print("FAIL: expected monotonic scaling with >=2.0x at "
                  "4 workers on a >=4-CPU host", file=sys.stderr)
            ok = False
    elif proc is not None:
        print(f"-- host has {cpus} usable CPU(s): scaling assertions "
              "skipped, numbers recorded as-is")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"-- wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
