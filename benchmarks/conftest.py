"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation DESIGN.md calls out) and prints the artifact once, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section on the terminal.  Numbers also land in each benchmark's
``extra_info`` for machine consumption.
"""

import json
import os
import pathlib
import subprocess
import sys
import time


def emit(title: str, text: str) -> None:
    """Print an artifact block (works under captured output via -s or
    --capture=no; still visible in benchmark logs otherwise)."""
    print(f"\n===== {title} =====", file=sys.stderr)
    print(text, file=sys.stderr)


def commit_hash() -> str:
    """The repo's HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        ).stdout.strip()
        return out or "unknown"
    except Exception:
        return "unknown"


def _write_payload(figure: str, payload: dict) -> pathlib.Path:
    out_dir = pathlib.Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{figure}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    emit(f"BENCH_{figure}.json", f"written to {path}")
    return path


def write_bench_json(figure: str, sweep, wall_time_s: float,
                     **extra) -> pathlib.Path:
    """Write ``BENCH_<figure>.json`` — per-worker times and speedups for
    every machine, the sweep's wall time, and the commit hash — to
    ``$BENCH_OUT_DIR`` (default: cwd) for trend tracking across commits.
    """
    series = {}
    speedup = {}
    for machine, pts in sweep.series.items():
        series[machine] = {str(w): round(t, 4) for w, t in pts}
        speedup[machine] = {
            str(w): round(s, 3)
            for (w, _), s in zip(pts, sweep.speedup(machine))
        }
    payload = {
        "figure": figure,
        "commit": commit_hash(),
        "unix_time": round(time.time(), 3),
        "wall_time_s": round(wall_time_s, 3),
        "series": series,
        "speedup": speedup,
        **extra,
    }
    return _write_payload(figure, payload)


def write_variants_json(figure: str, variants: dict, wall_time_s: float,
                        baseline: str | None = None,
                        phases: dict | None = None,
                        **extra) -> pathlib.Path:
    """The :func:`write_bench_json` counterpart for *variant* sweeps
    (ablations/advisor runs compare named configurations rather than
    worker counts).  ``variants`` maps name -> numbers dict; when
    ``baseline`` names a variant with a ``wall_time_s`` entry, each
    variant gains a ``speedup`` relative to it.  ``phases`` attaches a
    phase breakdown (e.g. pre/during/post-migration fps and latency for
    the elasticity bench) as a top-level field.  Same envelope as the
    fig9/fig10 artifacts: figure id, commit hash, sweep wall time.
    """
    variants = {name: dict(data) for name, data in variants.items()}
    if phases is not None:
        extra = dict(extra, phases={k: dict(v) for k, v in phases.items()})
    ref = (variants.get(baseline) or {}).get("wall_time_s")
    if ref:
        for data in variants.values():
            w = data.get("wall_time_s")
            if w:
                data.setdefault("speedup", round(ref / w, 3))
    payload = {
        "figure": figure,
        "commit": commit_hash(),
        "unix_time": round(time.time(), 3),
        "wall_time_s": round(wall_time_s, 3),
        "variants": variants,
        **extra,
    }
    return _write_payload(figure, payload)
