"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation DESIGN.md calls out) and prints the artifact once, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section on the terminal.  Numbers also land in each benchmark's
``extra_info`` for machine consumption.
"""

import sys


def emit(title: str, text: str) -> None:
    """Print an artifact block (works under captured output via -s or
    --capture=no; still visible in benchmark logs otherwise)."""
    print(f"\n===== {title} =====", file=sys.stderr)
    print(text, file=sys.stderr)
