"""Figure 9 — MJPEG workload execution time vs worker threads.

Simulated at the paper's full parameters (50 CIF frames) on the table-I
machine profiles with table-II-calibrated costs; the standalone
single-threaded encoder reference lines (paper: 19 s / 30 s) are derived
from the same model.  Shape assertions: near-linear scaling on both
machines and the 8-worker kink where the analyzer thread shares a core.
"""

import time

from conftest import emit, write_bench_json

from repro.bench import fig9_mjpeg_scaling


def test_fig9_mjpeg_scaling(benchmark):
    t0 = time.perf_counter()
    sweep = benchmark.pedantic(
        fig9_mjpeg_scaling, kwargs={"frames": 50}, rounds=1, iterations=1
    )
    wall = time.perf_counter() - t0
    emit("Figure 9: MJPEG execution time", sweep.render())
    write_bench_json("fig9", sweep, wall, workload="mjpeg", frames=50)
    for machine, pts in sweep.series.items():
        times = dict(pts)
        for w, t in sorted(times.items()):
            benchmark.extra_info[f"{machine[:10]}_{w}w"] = round(t, 2)
        # near-linear scaling
        assert times[8] < times[1] / 3.5
    # standalone reference ratio matches the paper's 30/19
    i7 = sweep.baselines["4-way Intel Core i7"]
    opteron = sweep.baselines["8-way AMD Opteron"]
    assert 1.45 < opteron / i7 < 1.75
    benchmark.extra_info["standalone_i7_s"] = round(i7, 2)
    benchmark.extra_info["standalone_opteron_s"] = round(opteron, 2)
