"""Ablation — naive vs separable-matrix vs AAN FastDCT.

Section VIII-A: "both the standalone and P2G versions of the MJPEG
encoder use a naive DCT calculation, there are versions of DCT that can
significantly improve performance, such as FastDCT [2]".  This bench
quantifies that remark on one CIF frame's worth of luma blocks.
"""

import numpy as np
import pytest

from repro.media.dct import dct2_blocks, idct2_blocks

RNG = np.random.default_rng(42)
#: one CIF frame of luma macro-blocks (1584 blocks)
BLOCKS = RNG.uniform(-128, 127, size=(1584, 8, 8))
REFERENCE = dct2_blocks(BLOCKS[:32], "matrix")


@pytest.mark.parametrize("method", ["naive", "matrix", "aan"])
def test_dct_method(benchmark, method):
    data = BLOCKS[:32] if method == "naive" else BLOCKS

    out = benchmark(dct2_blocks, data, method)
    # all methods agree numerically
    tol = 1e-4 if method == "aan" else 1e-9
    assert np.allclose(out[:32], REFERENCE, atol=tol)
    benchmark.extra_info["blocks"] = len(data)


def test_idct(benchmark):
    coeffs = dct2_blocks(BLOCKS, "aan")
    out = benchmark(idct2_blocks, coeffs)
    assert np.allclose(out, BLOCKS, atol=1e-4)
