"""Figure 10 — K-means workload execution time vs worker threads.

The pytest path is simulated at the paper's full parameters (n=2000,
K=100, 10 iterations → 2,000,000 assign instances) with
table-III-calibrated costs.  Shape assertions: scaling up to 4 workers,
then the serial dependency analyzer saturates and running time
*increases*, with the Opteron suffering more than the turbo-boosted
Core i7 — exactly the paper's findings.

Run the module as a script for a *measured* sweep of the real runtime
at reduced scale, on either execution backend::

    PYTHONPATH=src python benchmarks/bench_fig10_kmeans_scaling.py \
        --backend both --out fig10.json

Centroids are checked against the sequential baseline at every worker
count, so the sweep doubles as a parity test.
"""

import argparse
import json
import os
import sys
import time


def test_fig10_kmeans_scaling(benchmark):
    from conftest import emit, write_bench_json

    from repro.bench import fig10_kmeans_scaling

    t0 = time.perf_counter()
    sweep = benchmark.pedantic(fig10_kmeans_scaling, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    emit("Figure 10: K-means execution time", sweep.render())
    write_bench_json("fig10", sweep, wall, workload="kmeans")
    degradations = {}
    for machine, pts in sweep.series.items():
        times = dict(pts)
        for w, t in sorted(times.items()):
            benchmark.extra_info[f"{machine[:10]}_{w}w"] = round(t, 2)
        assert times[4] < times[1] / 2  # scales to 4 workers
        assert times[8] > min(times.values())  # degrades past the knee
        degradations[machine] = times[8] / min(times.values())
    assert degradations["8-way AMD Opteron"] > degradations[
        "4-way Intel Core i7"
    ]
    benchmark.extra_info["degradation_opteron"] = round(
        degradations["8-way AMD Opteron"], 3
    )
    benchmark.extra_info["degradation_i7"] = round(
        degradations["4-way Intel Core i7"], 3
    )


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def main(argv=None) -> int:
    import numpy as np

    from repro.core import run_program
    from repro.workloads import build_kmeans, kmeans_baseline

    ap = argparse.ArgumentParser(
        description="measured figure-10 K-means worker sweep"
    )
    ap.add_argument("--backend", choices=("threads", "processes", "both"),
                    default="both")
    ap.add_argument("-n", type=int, default=400)
    ap.add_argument("-k", type=int, default=20)
    ap.add_argument("--iterations", type=int, default=6)
    ap.add_argument("--granularity", choices=("pair", "point"),
                    default="point")
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    ap.add_argument("--timeout", type=float, default=1800.0)
    ap.add_argument("--out", help="write the results JSON to this path")
    args = ap.parse_args(argv)

    expected = kmeans_baseline(
        n=args.n, k=args.k, iterations=args.iterations
    ).final_centroids()
    cpus = usable_cpus()
    backends = (("threads", "processes") if args.backend == "both"
                else (args.backend,))
    report = {
        "workload": "kmeans",
        "n": args.n, "k": args.k, "iterations": args.iterations,
        "granularity": args.granularity,
        "usable_cpus": cpus,
        "backends": {},
    }
    for backend in backends:
        times = {}
        for w in args.workers:
            program, sink = build_kmeans(
                n=args.n, k=args.k, iterations=args.iterations,
                granularity=args.granularity,
            )
            t0 = time.perf_counter()
            result = run_program(
                program, workers=w, timeout=args.timeout, backend=backend
            )
            times[w] = time.perf_counter() - t0
            assert result.reason == "idle"
            assert np.array_equal(sink.final_centroids(), expected), (
                f"centroid mismatch: backend={backend} workers={w}"
            )
        report["backends"][backend] = {
            str(w): round(t, 3) for w, t in times.items()
        }
        print(f"-- backend={backend} (n={args.n} K={args.k} "
              f"x{args.iterations} {args.granularity}, "
              f"{cpus} usable CPUs)")
        for w, t in sorted(times.items()):
            print(f"   {w} workers: {t:6.2f}s "
                  f"(speedup {times[min(times)] / t:4.2f}x)")
    if cpus < 4:
        print(f"-- host has {cpus} usable CPU(s): numbers recorded "
              "as-is, no scaling assertion")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"-- wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
