"""Figure 10 — K-means workload execution time vs worker threads.

Simulated at the paper's full parameters (n=2000, K=100, 10 iterations
→ 2,000,000 assign instances) with table-III-calibrated costs.  Shape
assertions: scaling up to 4 workers, then the serial dependency analyzer
saturates and running time *increases*, with the Opteron suffering more
than the turbo-boosted Core i7 — exactly the paper's findings.
"""

from conftest import emit

from repro.bench import fig10_kmeans_scaling


def test_fig10_kmeans_scaling(benchmark):
    sweep = benchmark.pedantic(fig10_kmeans_scaling, rounds=1, iterations=1)
    emit("Figure 10: K-means execution time", sweep.render())
    degradations = {}
    for machine, pts in sweep.series.items():
        times = dict(pts)
        for w, t in sorted(times.items()):
            benchmark.extra_info[f"{machine[:10]}_{w}w"] = round(t, 2)
        assert times[4] < times[1] / 2  # scales to 4 workers
        assert times[8] > min(times.values())  # degrades past the knee
        degradations[machine] = times[8] / min(times.values())
    assert degradations["8-way AMD Opteron"] > degradations[
        "4-way Intel Core i7"
    ]
    benchmark.extra_info["degradation_opteron"] = round(
        degradations["8-way AMD Opteron"], 3
    )
    benchmark.extra_info["degradation_i7"] = round(
        degradations["4-way Intel Core i7"], 3
    )
