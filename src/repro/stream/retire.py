"""Age retirement: bounded field memory on unbounded runs.

A batch run keeps every age alive until teardown; a live encoder would
grow without bound.  The :class:`Retirer` frees drained ages through
the existing GC paths (:meth:`Field.collect_age` → ``_AgeSlot.free()``,
which for shared-memory slots closes *and unlinks* the segment) and
tells each node's execution backend to drop its workers' cached views
(:meth:`ExecutionBackend.on_retire`).

Invariant (DESIGN.md §11): **an age may be freed iff no undispatched
instance can fetch it.**  Two independent bounds enforce it:

* the *completion frontier* — ages at or below the highest contiguous
  completed age have delivered their output, and under the credit gate
  no new source age enters below the frontier, so only instances at
  ages above it can still be dispatched; backwards fetches reach at
  most ``max_back`` ages below their instance, giving the floor
  ``frontier + 1 − max_back − keep_ages``;
* the nodes' *live minima* — the lowest age among pending analyzer
  work, queued ready instances, and running instances, observed
  directly.  Redundant with the frontier argument, but it keeps the
  invariant true even for exotic bindings that complete ages out of
  band.
"""

from __future__ import annotations

import threading

__all__ = ["Retirer"]


class Retirer:
    """Watches per-age completion and frees everything below the safe
    floor.

    Thread-safe: completions arrive from worker/pump threads while the
    driver thread sweeps.  The per-node probes read structures owned by
    other threads (analyzer pending map, ready-queue age counts, running
    ages); each is internally locked or read defensively — a probe that
    races a mutation just skips this sweep, never over-frees.
    """

    def __init__(
        self,
        fields,
        nodes,
        *,
        max_back: int = 0,
        keep_ages: int = 1,
        field_names=None,
        kernel_names=None,
        session: str | None = None,
    ) -> None:
        self._fields = fields
        self._nodes = list(nodes)
        self._max_back = max_back
        self._keep_ages = max(0, keep_ages)
        #: Multi-tenant scoping: with several sessions sharing one field
        #: store and numeric age space, a retirer frees only its own
        #: session's fields and probes only its own session's live ages
        #: (an unscoped probe would let a lagging co-tenant pin this
        #: session's memory; an unscoped free would unmap a co-tenant's
        #: live ages).  ``None`` everywhere = the single-tenant PR 5
        #: behaviour.
        self._field_names = (
            None if field_names is None else frozenset(field_names)
        )
        self._kernel_names = (
            None if kernel_names is None else frozenset(kernel_names)
        )
        self._session = session
        self._lock = threading.Lock()
        #: Serializes sweeps against migration windows: an elastic
        #: repartition pauses sweeping while the node set is in flux
        #: (probing a half-fenced node would under-report live ages).
        self._sweep_gate = threading.Lock()
        self._done: set[int] = set()
        self._frontier = -1
        #: Ages strictly below this have been freed.
        self.retired_through = 0
        #: Total field bytes reclaimed by sweeps.
        self.freed_bytes = 0

    def set_nodes(self, nodes, *, max_back: int | None = None) -> None:
        """Swap the probed node set after an elastic migration.

        The next sweep probes the new membership's nodes; ``max_back``
        may be re-derived from them (a replacement subprogram can have
        a different fetch horizon).
        """
        with self._lock:
            self._nodes = list(nodes)
            if max_back is not None:
                self._max_back = max_back

    def note_complete(self, age: int) -> None:
        """Record that ``age`` drained (output delivered, or shed)."""
        with self._lock:
            self._done.add(age)
            while self._frontier + 1 in self._done:
                self._done.discard(self._frontier + 1)
                self._frontier += 1

    def completed_through(self) -> int:
        """Highest contiguous completed age (−1 if none)."""
        with self._lock:
            return self._frontier

    def _live_floor(self) -> int | None:
        """Lowest age any node could still dispatch work for, or
        ``None`` when a probe raced a concurrent mutation (skip the
        sweep — the next completion retries)."""
        with self._lock:
            floor = self._frontier + 1
        for node in self._nodes:
            try:
                pending = node.analyzer.min_pending_age(self._kernel_names)
                queued = node.ready.min_age(self._session)
                if self._session is None:
                    running = list(node._running_ages.values())
                else:
                    # A worker publishes age before session; an entry
                    # whose session is not visible yet counts as ours
                    # (conservative — never over-frees).
                    sessions = dict(node._running_sessions)
                    running = [
                        age
                        for wid, age in list(node._running_ages.items())
                        if sessions.get(wid, self._session)
                        == self._session
                    ]
            except RuntimeError:  # dict mutated during iteration
                return None
            for v in (pending, queued):
                if v is not None and v < floor:
                    floor = v
            if running:
                floor = min(floor, min(running))
        return floor

    def pause(self) -> None:
        """Hold off sweeping for a migration window.

        Blocks until any in-flight sweep finishes, so after ``pause()``
        returns no probe of the outgoing node set is still running;
        completions arriving meanwhile are recorded but not swept (the
        first sweep after :meth:`resume` catches up).
        """
        self._sweep_gate.acquire()

    def resume(self) -> None:
        """Lift :meth:`pause`; the next completion sweeps normally."""
        self._sweep_gate.release()

    def sweep(self) -> int:
        """Free every age below the safe floor; returns bytes freed.

        Cheap when there is nothing to do (one lock, a few probes), so
        the driver calls it on every completion.  Returns 0 without
        sweeping while paused or while another sweep is in flight —
        the next completion retries.
        """
        if not self._sweep_gate.acquire(blocking=False):
            return 0
        try:
            return self._sweep_locked()
        finally:
            self._sweep_gate.release()

    def _sweep_locked(self) -> int:
        floor = self._live_floor()
        if floor is None:
            return 0
        floor -= self._max_back + self._keep_ages
        with self._lock:
            if floor <= self.retired_through:
                return 0
            # Claim the range under the lock so concurrent sweeps
            # (completions race) never double-free or interleave.
            self.retired_through = floor
        if self._field_names is None:
            freed = self._fields.collect_below(floor)
        else:
            freed = self._fields.collect_below(floor, self._field_names)
        for node in self._nodes:
            node.backend.on_retire(floor, self._field_names)
        if freed:
            with self._lock:
                self.freed_bytes += freed
        return freed
