"""Live frame sources for the streaming runtime.

A :class:`FrameSource` yields frames one at a time; the
:class:`~repro.stream.driver.StreamDriver` paces those frames against a
wall clock (``fps``) and injects each one as a new age into the running
node.  Sources are *unbounded by design* — the driver's ``duration`` /
``max_frames`` knobs decide when a live run ends, not the source.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator, Sequence

from ..media.yuv import (
    YUVFrame,
    read_yuv_file,
    synthetic_frame,
    synthetic_noise,
)

__all__ = [
    "FrameSource",
    "SyntheticSource",
    "FileLoopSource",
    "SequenceSource",
    "CycleSource",
    "MultiSource",
]


class FrameSource:
    """A producer of frames for a live run.

    Subclasses implement :meth:`frames`; an exhausted (finite) iterator
    ends the stream naturally, an infinite one runs until the driver's
    duration or frame bound cuts it off.
    """

    def frames(self) -> Iterator[Any]:
        """Yield frames in presentation order (age 0, 1, 2, ...)."""
        raise NotImplementedError


class SyntheticSource(FrameSource):
    """An infinite synthetic camera.

    Generates the deterministic foreman-like clip one frame at a time —
    frame ``t`` is byte-identical to ``synthetic_sequence(n)[t]``, so a
    live run that sheds nothing encodes exactly the batch clip.
    """

    def __init__(
        self, width: int, height: int, seed: int = 1234
    ) -> None:
        self.width = width
        self.height = height
        self.seed = seed
        # The noise plane is shared by every frame; precompute it so the
        # per-frame cost is pure arithmetic.
        self._noise = synthetic_noise(width, height, seed)

    def frames(self) -> Iterator[YUVFrame]:
        t = 0
        while True:
            yield synthetic_frame(
                t, self.width, self.height, self.seed, self._noise
            )
            t += 1


class FileLoopSource(FrameSource):
    """Loops a planar I420 ``.yuv`` file forever (a capture card stuck
    on a test clip)."""

    def __init__(self, path: str | Path, width: int, height: int) -> None:
        self.path = Path(path)
        self.width = width
        self.height = height
        fsize = YUVFrame.frame_size(width, height)
        n = self.path.stat().st_size // fsize
        if n < 1:
            raise ValueError(
                f"{self.path}: no complete {width}x{height} I420 frame"
            )
        self.clip_frames = n

    def frames(self) -> Iterator[YUVFrame]:
        while True:
            yield from read_yuv_file(self.path, self.width, self.height)


class SequenceSource(FrameSource):
    """A finite, in-memory clip (tests and batch-equivalence checks)."""

    def __init__(self, frames: Sequence[Any]) -> None:
        self._frames = list(frames)

    def frames(self) -> Iterator[Any]:
        return iter(self._frames)


class CycleSource(FrameSource):
    """Loops a finite in-memory sequence forever (the in-memory analogue
    of :class:`FileLoopSource`; e.g. a pre-encoded JPEG clip feeding a
    live transcode)."""

    def __init__(self, frames: Sequence[Any]) -> None:
        items = list(frames)
        if not items:
            raise ValueError("CycleSource needs at least one frame")
        self._frames = items

    def frames(self) -> Iterator[Any]:
        while True:
            yield from self._frames


class MultiSource(FrameSource):
    """Zips N component sources in lockstep; each yielded item is the
    tuple of the components' frames for that age.

    The zip ends when the *shortest* component ends — the operator
    layer's merge alignment story: a stalled or exhausted camera stops
    the composite stream cleanly instead of blocking forever on a
    partial frame set.
    """

    def __init__(self, sources: Sequence[FrameSource]) -> None:
        if not sources:
            raise ValueError("MultiSource needs at least one component")
        self.sources = list(sources)

    def frames(self) -> Iterator[tuple]:
        iterators = [s.frames() for s in self.sources]
        while True:
            bundle = []
            for it in iterators:
                try:
                    bundle.append(next(it))
                except StopIteration:
                    return
            yield tuple(bundle)
