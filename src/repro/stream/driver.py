"""The stream driver: pacing, admission, injection, completion, QoS.

One background thread per live run.  It draws frames from the binding's
source, paces them against the stream timer (``fps``), asks the QoS
policy whether a frame is worth running, waits for backpressure credit,
stores the frame's payload into the node's fields and injects the
resulting store events into the running node — exactly the path a
transport delivery takes in a cluster, so the analyzer needs no new
machinery.  Completions come back through the program's output handler
(the binding names the output key that marks an age done); each one
records end-to-end latency, grants the next credit, and lets the
retirer free everything the pipeline can no longer reach.

Quiescence: a live program has no self-advancing source kernel, so the
node would look idle the moment it starts.  The driver holds one
outstanding-work token from construction (before ``node.start()``)
until it has offered its last frame; in-flight ages carry their own
event/instance tokens, so the run drains naturally after the stream
ends.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from ..core.deadlines import Timer
from ..core.events import WorkToken
from .gate import CreditGate
from .qos import QOS_CLASSES, QosPolicy
from .retire import Retirer
from .sources import FrameSource

__all__ = [
    "StreamBinding",
    "StreamConfig",
    "StreamDriver",
    "StreamReport",
]


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of a live run.

    Parameters
    ----------
    fps:
        Source pacing rate; ``0`` means unpaced (offer frames as fast
        as admission allows — useful for memory-boundedness tests).
    duration:
        Stream seconds to offer frames for (``None`` = until the source
        or ``max_frames`` ends the stream).
    max_frames:
        Hard bound on offered frames.
    lag_window:
        Credit window: age ``a`` is admitted only once age
        ``a − lag_window`` has fully drained.
    deadline_ms:
        Per-frame end-to-end budget; ``None`` disables QoS shedding.
    shed_seed:
        Seed of the deterministic shed-vs-degrade split.
    degrade_ratio:
        Fraction of late frames frozen (previous frame repeated)
        instead of dropped.
    keep_ages:
        Extra drained ages to retain behind the retirement floor.
    qos_class:
        Service tier of this stream (see
        :data:`~repro.stream.qos.QOS_CLASSES`): ``"best-effort"``
        (default) sheds late frames, ``"gold"`` never does.  Only
        meaningful with a deadline; a multi-tenant runtime mixes tiers
        so overload lands on the best-effort sessions first.
    """

    fps: float = 25.0
    duration: float | None = None
    max_frames: int | None = None
    lag_window: int = 8
    deadline_ms: float | None = None
    shed_seed: int = 0
    degrade_ratio: float = 0.0
    keep_ages: int = 1
    qos_class: str = "best-effort"

    def __post_init__(self) -> None:
        if self.fps < 0:
            raise ValueError(f"fps must be >= 0, got {self.fps}")
        if self.lag_window < 1:
            raise ValueError(
                f"lag_window must be >= 1, got {self.lag_window}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.qos_class not in QOS_CLASSES:
            raise ValueError(
                f"unknown qos_class {self.qos_class!r}; "
                f"expected one of {QOS_CLASSES}"
            )


@dataclass
class StreamBinding:
    """Workload glue between a live source and a program.

    ``store_frame(fields, age, frame)`` writes one frame's payload into
    the input fields and returns the
    :class:`~repro.core.events.StoreEvent` list to inject;
    ``completion_key`` is the ``ctx.output`` key whose delivery marks an
    age fully encoded; ``on_degrade`` (optional) tells the sink an age
    was frozen rather than encoded.
    """

    source: FrameSource
    store_frame: Callable[[Any, int, Any], list]
    completion_key: str
    config: StreamConfig = dc_field(default_factory=StreamConfig)
    on_degrade: Callable[[int], None] | None = None


@dataclass
class StreamReport:
    """Outcome of a live run (attached to ``RunResult.stream``)."""

    offered: int
    admitted: int
    completed: int
    shed: int
    degraded: int
    deadline_misses: int
    duration_s: float
    blocked_s: float  #: seconds the source spent waiting for credit
    peak_live_bytes: int
    freed_bytes: int
    fps: float
    lag_window: int
    deadline_ms: float | None
    shed_seed: int
    latency_ms: dict  #: histogram snapshot: count/min/max/mean/p50/p99
    shed_ages: list[int] = dc_field(default_factory=list)
    degraded_ages: list[int] = dc_field(default_factory=list)
    #: Multi-tenant identity: the session name and QoS tier this report
    #: belongs to (``None`` for single-tenant runs — the PR 5 shape).
    session: str | None = None
    qos_class: str | None = None
    #: Per-stage latency attribution (telemetry runs): bucket ->
    #: histogram snapshot in ms; the buckets partition each frame's
    #: end-to-end window, so their means sum to ``latency_ms`` mean.
    stages: dict = dc_field(default_factory=dict)
    #: SLO summary for this session (telemetry runs with a deadline).
    slo: dict | None = None

    def as_dict(self) -> dict:
        """JSON-ready view (CI uploads this as the run artifact)."""
        return {
            "session": self.session,
            "qos_class": self.qos_class,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "degraded": self.degraded,
            "deadline_misses": self.deadline_misses,
            "duration_s": self.duration_s,
            "blocked_s": self.blocked_s,
            "peak_live_bytes": self.peak_live_bytes,
            "freed_bytes": self.freed_bytes,
            "fps": self.fps,
            "lag_window": self.lag_window,
            "deadline_ms": self.deadline_ms,
            "shed_seed": self.shed_seed,
            "latency_ms": dict(self.latency_ms),
            "shed_ages": list(self.shed_ages),
            "degraded_ages": list(self.degraded_ages),
            "stages": {b: dict(s) for b, s in self.stages.items()},
            "slo": dict(self.slo) if self.slo is not None else None,
        }


class StreamDriver:
    """Drives one live run against a started node (or cluster).

    Parameters
    ----------
    binding:
        The workload's :class:`StreamBinding` (source + store glue +
        completion key + config).
    node:
        Single-node convenience: fields, counter, metrics, tracer,
        program and injection all default to this node's.
    nodes:
        The execution nodes processing the stream (cluster runs pass
        all of them; retirement probes each node's live ages and
        notifies each backend).
    fields / counter / metrics / tracer / program:
        Shared run state; default to ``nodes[0]``'s.
    inject:
        ``inject(event)`` delivering one store event to the consuming
        node(s).  Defaults to ``nodes[0].inject``; a cluster passes a
        transport broadcast instead.
    on_grant:
        When set, a drained age's credit is routed through
        ``on_grant(age)`` *instead of* being applied to the gate
        directly; the receiving side must feed :meth:`CreditGate.grant`.
        The cluster uses this to carry grants over the ``stream.credit``
        control topic, so backpressure credits traverse the same
        transport as data (and are subject to its partitions).
    clock:
        Injectable stream clock (tests).
    session:
        Multi-tenant session name.  Namespaces the driver's metrics
        (``stream.<session>.frames.*``), scopes retirement to this
        session's fields/kernels/queued work, and stamps the report.
        ``None`` (default) is the single-tenant PR 5 behaviour.
    kernel_filter:
        Predicate over the *kernel name* delivering an output: the
        completion key marks an age done only when the filter accepts
        the emitting kernel.  Needed whenever several sessions share one
        merged program — every tenant's encoder emits the same
        ``completion_key``, and without the filter each delivery would
        credit every session's gate.
    retire_fields / retire_kernels:
        Field-name / kernel-name sets bounding what this driver's
        retirer may free and probe (the session's namespaced subgraph).
    """

    def __init__(
        self,
        binding: StreamBinding,
        *,
        node=None,
        nodes=None,
        fields=None,
        counter=None,
        metrics=None,
        tracer=None,
        program=None,
        inject: Callable[[Any], None] | None = None,
        on_grant: Callable[[int], None] | None = None,
        clock=None,
        session: str | None = None,
        kernel_filter: Callable[[str], bool] | None = None,
        retire_fields=None,
        retire_kernels=None,
        telemetry=None,
    ) -> None:
        if node is not None:
            nodes = [node]
        if not nodes:
            raise ValueError("StreamDriver needs node= or nodes=")
        self.binding = binding
        self.cfg = binding.config
        self.session = session
        self._nodes = list(nodes)
        self._fields = fields if fields is not None else nodes[0].fields
        self._counter = (
            counter if counter is not None else nodes[0]._counter
        )
        self._metrics = (
            metrics if metrics is not None else nodes[0].metrics
        )
        self._tracer = tracer if tracer is not None else nodes[0].tracer
        self._program = (
            program if program is not None else nodes[0].program
        )
        self._inject = (
            inject if inject is not None else nodes[0].inject
        )
        self._on_grant = on_grant
        self._lane = nodes[0].name

        self.timer = Timer(
            "stream" if session is None else f"stream.{session}", clock
        )
        self.gate = CreditGate(self.cfg.lag_window)
        self.retirer = Retirer(
            self._fields,
            self._nodes,
            max_back=max(n._max_back for n in self._nodes),
            keep_ages=self.cfg.keep_ages,
            field_names=retire_fields,
            kernel_names=retire_kernels,
            session=session,
        )
        self.qos: QosPolicy | None = None
        if self.cfg.deadline_ms is not None:
            self.qos = QosPolicy(
                self.cfg.deadline_ms,
                self.cfg.fps,
                seed=self.cfg.shed_seed,
                degrade_ratio=self.cfg.degrade_ratio,
                timer=self.timer,
                qos_class=self.cfg.qos_class,
            )

        # Telemetry (optional): the frame timeline keyed by this
        # session, and the SLO tracker fed from the completion path.
        # Both references are bound once (None when off), so the frame
        # paths pay a single ``is not None`` test each.
        tel = (
            telemetry
            if telemetry is not None and telemetry.enabled else None
        )
        self._tl = tel.timeline if tel is not None else None
        self._slo = tel.slo if tel is not None else None
        self._tl_session = session or ""
        if self._slo is not None and self.cfg.deadline_ms is not None:
            self._slo.configure(
                self._tl_session,
                deadline_ms=self.cfg.deadline_ms,
                tier=self.cfg.qos_class,
            )

        m = self._metrics
        pre = "stream" if session is None else f"stream.{session}"
        self._m_offered = m.counter(f"{pre}.frames.offered")
        self._m_admitted = m.counter(f"{pre}.frames.admitted")
        self._m_completed = m.counter(f"{pre}.frames.completed")
        self._m_shed = m.counter(f"{pre}.frames.shed")
        self._m_degraded = m.counter(f"{pre}.frames.degraded")
        self._m_retired = m.counter(f"{pre}.retired_bytes")
        self._lat = m.histogram(f"{pre}.latency_ms")
        self._g_peak = m.gauge(f"{pre}.live_bytes.peak")

        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._arrivals: dict[int, float] = {}
        self._completed: set[int] = set()
        self._never_run: set[int] = set()  # shed + degraded ages
        self.shed_ages: list[int] = []
        self.degraded_ages: list[int] = []
        self.offered = 0
        self.admitted = 0
        self.peak_live_bytes = 0
        self._ended_ms: float | None = None

        # Quiescence token: held from before node.start() until the last
        # frame has been offered, so an initially instance-less live
        # program cannot be declared idle under the stream.
        self._token = WorkToken(
            self._counter,
            label=f"stream:{session or 'default'}",
        )

        # Pacing state: ``_rate`` starts at the configured fps and may
        # be changed mid-run (:meth:`set_rate`); the next frame's
        # scheduled arrival accumulates per-frame periods so a rate
        # change only affects frames not yet offered.
        self._rate = self.cfg.fps
        self._next_ms = 0.0

        # Completion detection: wrap the program's output handler so the
        # binding's completion key marks ages done on both backends (the
        # runtime always delivers outputs in the parent process).
        orig = self._program.output_handler
        key = binding.completion_key
        accept = kernel_filter

        def wrapped(kernel, age, index, k, value) -> None:
            if orig is not None:
                orig(kernel, age, index, k, value)
            if (
                k == key
                and age is not None
                and (accept is None or accept(kernel))
            ):
                self._on_complete(age)

        self._program.set_output_handler(wrapped)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Reset the stream clock and start the driver thread (call
        after ``node.start()``)."""
        self.timer.reset()
        name = (
            "stream-driver" if self.session is None
            else f"stream-driver-{self.session}"
        )
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=name
        )
        self._thread.start()

    def stop(self) -> None:
        """End the stream: no further frames are offered, blocked
        admissions unblock, and the quiescence token is released.
        Idempotent; safe from teardown hooks and signal paths."""
        self._stop.set()
        self.gate.close()
        if self._thread is None:
            self._token.release()

    def set_rate(self, fps: float) -> None:
        """Change the offered frame rate mid-run.

        Only frames not yet offered are affected: the next scheduled
        arrival accumulates one period per frame, so doubling the rate
        halves the spacing from the next frame on without rewriting
        past arrivals (the elasticity chaos test doubles offered load
        mid-run this way).  ``fps`` must be positive; an unpaced stream
        (``fps == 0``) cannot become paced.
        """
        if fps <= 0:
            raise ValueError(f"fps must be > 0, got {fps}")
        with self._lock:
            self._rate = float(fps)

    def set_nodes(self, nodes) -> None:
        """Re-resolve the node set after a membership change.

        An elastic migration replaces execution nodes mid-run; the
        retirer's live-age probes must follow the membership epoch or
        they would either free ages a newcomer still needs (probing a
        wound-down node reports nothing live) or pin memory forever
        (probing a departed node's frozen queues).  Credits need no
        re-resolution — they travel a control topic keyed by session,
        not by node.
        """
        nodes = list(nodes)
        if not nodes:
            raise ValueError("StreamDriver needs at least one node")
        self._nodes = nodes
        self.retirer.set_nodes(
            nodes, max_back=max(n._max_back for n in nodes)
        )

    # ------------------------------------------------------------------
    # Producer loop (driver thread)
    # ------------------------------------------------------------------
    def _pace(self, target_ms: float) -> bool:
        """Sleep until the stream clock reaches ``target_ms``; ``False``
        when stopped while waiting."""
        while not self._stop.is_set():
            delta_ms = target_ms - self.timer.elapsed_ms()
            if delta_ms <= 0:
                return True
            self._stop.wait(delta_ms / 1000.0)
        return False

    def _run(self) -> None:
        cfg = self.cfg
        try:
            for age, frame in enumerate(self.binding.source.frames()):
                if self._stop.is_set():
                    break
                if cfg.max_frames is not None and age >= cfg.max_frames:
                    break
                with self._lock:
                    rate = self._rate
                    if rate > 0:
                        target_ms = self._next_ms
                        self._next_ms += 1000.0 / rate
                    else:
                        target_ms = None
                if cfg.duration is not None:
                    at_ms = (
                        target_ms if target_ms is not None
                        else self.timer.elapsed_ms()
                    )
                    if at_ms >= cfg.duration * 1000.0:
                        break
                if target_ms is not None and not self._pace(target_ms):
                    break
                self.offered += 1
                self._m_offered.inc()
                arrival_ms = (
                    target_ms if target_ms is not None
                    else self.timer.elapsed_ms()
                )
                if self.qos is not None:
                    decision = self.qos.decide(age, arrival_ms)
                    if decision.action != "run":
                        self._shed(age, decision)
                        continue
                if not self.gate.admit(age):
                    break
                t0 = time.perf_counter()
                if self._tl is not None:
                    # The frame's end-to-end window opens at its
                    # *scheduled* arrival, which is in the stream-timer
                    # domain; back-date the perf-counter start by the
                    # observed lateness so the timeline window matches
                    # the latency the completion path will report.
                    # Everything before admission — pacing slip plus
                    # the credit-gate block — is gate wait.
                    late_s = max(
                        0.0, self.timer.elapsed_ms() - arrival_ms
                    ) / 1000.0
                    self._tl.begin(self._tl_session, age, t0 - late_s)
                    self._tl.span(
                        self._tl_session, age, "gate", t0 - late_s, t0
                    )
                with self._lock:
                    self._arrivals[age] = arrival_ms
                events = self.binding.store_frame(
                    self._fields, age, frame
                )
                for ev in events:
                    self._inject(ev)
                t1 = time.perf_counter()
                if self._tl is not None:
                    # Source capture + input-field commit + injection.
                    self._tl.span(self._tl_session, age, "store", t0, t1)
                self.admitted += 1
                self._m_admitted.inc()
                self._sample_live_bytes()
                tr = self._tracer
                if tr.enabled:
                    tr.complete(
                        "admit", "stream", self._lane, "stream",
                        t0, t1,
                        args={"age": age,
                              "arrival_ms": round(arrival_ms, 3)},
                    )
        finally:
            self._ended_ms = self.timer.elapsed_ms()
            self._token.release()

    def _shed(self, age: int, decision) -> None:
        """Apply a non-run QoS verdict: account it, tell the sink (for
        degrades), and drain the age immediately — a frame that never
        runs frees its credit on the spot."""
        degraded = decision.action == "degrade"
        if degraded and self.binding.on_degrade is not None:
            self.binding.on_degrade(age)
        with self._lock:
            self._never_run.add(age)
        if degraded:
            self.degraded_ages.append(age)
            self._m_degraded.inc()
        else:
            self.shed_ages.append(age)
            self._m_shed.inc()
        tr = self._tracer
        if tr.enabled:
            tr.instant(
                decision.action, "stream", self._lane, "stream",
                args={"age": age,
                      "lateness_ms": round(decision.lateness_ms, 3)},
            )
        if self._slo is not None:
            # A frame the policy dropped still failed this tenant's SLO.
            self._slo.observe_shed(self._tl_session)
        self._finish_age(age)

    # ------------------------------------------------------------------
    # Consumer side (worker / pump threads)
    # ------------------------------------------------------------------
    def _on_complete(self, age: int) -> None:
        """The completion output for ``age`` was delivered: record its
        end-to-end latency, grant the next credit, retire what drained."""
        with self._lock:
            if age in self._completed or age in self._never_run:
                return
            self._completed.add(age)
            arrival = self._arrivals.pop(age, None)
        latency = self.timer.elapsed_ms() - (
            arrival if arrival is not None else 0.0
        )
        self._lat.observe(latency)
        self._m_completed.inc()
        if self._tl is not None:
            # Sink emit closes the frame's window; the recorder sweeps
            # the collected spans into the per-stage attribution.
            self._tl.finish(self._tl_session, age, time.perf_counter())
        if self._slo is not None:
            self._slo.observe(self._tl_session, latency)
        self._finish_age(age)
        self._sample_live_bytes()

    def _finish_age(self, age: int) -> None:
        """Shared drain bookkeeping for completed and shed ages."""
        if self._on_grant is not None:
            self._on_grant(age)  # external path feeds gate.grant back
        else:
            self.gate.grant(age)
        self.retirer.note_complete(age)
        freed = self.retirer.sweep()
        if freed:
            self._m_retired.inc(freed)
            tr = self._tracer
            if tr.enabled:
                tr.instant(
                    "retire", "stream", self._lane, "stream",
                    args={"below_age": self.retirer.retired_through,
                          "freed_bytes": freed},
                )

    def _sample_live_bytes(self) -> None:
        lv = self._fields.live_bytes()
        self._g_peak.set_max(lv)
        with self._lock:
            if lv > self.peak_live_bytes:
                self.peak_live_bytes = lv

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def completed_count(self) -> int:
        """Ages whose completion output has been delivered."""
        with self._lock:
            return len(self._completed)

    def report(self) -> StreamReport:
        """Summarize the run (stable once the node has joined)."""
        snap = self._lat.snapshot()
        snap.pop("type", None)
        ended = (
            self._ended_ms if self._ended_ms is not None
            else self.timer.elapsed_ms()
        )
        return StreamReport(
            offered=self.offered,
            admitted=self.admitted,
            completed=self.completed_count(),
            shed=len(self.shed_ages),
            degraded=len(self.degraded_ages),
            deadline_misses=self.timer.misses,
            duration_s=ended / 1000.0,
            blocked_s=self.gate.blocked_s,
            peak_live_bytes=self.peak_live_bytes,
            freed_bytes=self.retirer.freed_bytes,
            fps=self.cfg.fps,
            lag_window=self.cfg.lag_window,
            deadline_ms=self.cfg.deadline_ms,
            shed_seed=self.cfg.shed_seed,
            latency_ms=snap,
            shed_ages=list(self.shed_ages),
            degraded_ages=list(self.degraded_ages),
            session=self.session,
            qos_class=self.cfg.qos_class,
            stages=(
                self._tl.stages(self._tl_session)
                if self._tl is not None else {}
            ),
            slo=self._slo_summary(),
        )

    def _slo_summary(self) -> dict | None:
        if self._slo is None:
            return None
        out = self._slo.session_dict(self._tl_session)
        if out is not None:
            out["burn_rate"] = round(
                self._slo.burn_rate(self._tl_session), 3
            )
        return out
