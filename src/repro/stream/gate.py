"""Credit-based backpressure for live sources.

The shape follows credit-based flow control (cf. the rxbackpressure
idiom and *Scaling Ordered Stream Processing on Shared-Memory
Multicores*' bounded-lag admission): the consumer side *grants* one
credit per fully drained age, and the source may only run ``window``
ages ahead of the drained frontier.  A fast producer therefore blocks
instead of burying a slow pipeline — scheduler lag and in-flight field
memory are both bounded by the window.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CreditGate"]


class CreditGate:
    """Admission control: age ``a`` may enter only when age
    ``a − window`` has fully drained.

    Grants arrive out of order (frames complete out of order under
    parallel execution; shed frames are granted immediately), so the
    gate tracks a *contiguous* drained frontier: ``completed_through()``
    is the highest age ``f`` such that every age ``≤ f`` was granted.
    Admission of age ``a`` requires ``completed_through() ≥ a − window``
    — equivalently at most ``window`` ages are in flight past the
    frontier.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"lag window must be >= 1, got {window}")
        self.window = window
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._granted: set[int] = set()
        self._frontier = -1
        self._open = True
        #: Total seconds admission blocked (backpressure observability).
        self.blocked_s = 0.0

    def completed_through(self) -> int:
        """Highest age with every age at or below it drained (−1 if
        none)."""
        with self._lock:
            return self._frontier

    def admit(self, age: int, timeout: float | None = None) -> bool:
        """Block until there is credit for ``age``; ``True`` when
        admitted, ``False`` when the gate closed (or ``timeout`` hit)
        while waiting."""
        t0 = time.perf_counter()
        deadline = None if timeout is None else t0 + timeout
        with self._cv:
            while self._open and self._frontier < age - self.window:
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._cv.wait(remaining):
                        break
            admitted = self._open and (
                self._frontier >= age - self.window
            )
            self.blocked_s += time.perf_counter() - t0
            return admitted

    def grant(self, age: int) -> None:
        """Record that ``age`` has fully drained (its output was
        delivered, or it was shed/degraded and will never run)."""
        with self._cv:
            self._granted.add(age)
            while self._frontier + 1 in self._granted:
                self._granted.discard(self._frontier + 1)
                self._frontier += 1
            self._cv.notify_all()

    def close(self) -> None:
        """Unblock every waiter; subsequent admits return ``False``
        (shutdown path)."""
        with self._cv:
            self._open = False
            self._cv.notify_all()
