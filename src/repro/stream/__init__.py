"""Streaming runtime: live sources, backpressure, retirement, QoS.

This package turns the write-once/aging execution model into an
*unbounded real-time* pipeline (the paper's titular use case — its
batch-shaped evaluation encodes 50 frames; a live encoder never stops):

* :mod:`~repro.stream.sources` — rate-paced frame producers
  (:class:`FrameSource`: a synthetic clock, a looping YUV file, or any
  finite sequence) that *inject* new ages into a running node instead of
  pre-storing all input;
* :mod:`~repro.stream.gate` — :class:`CreditGate`, credit-based
  backpressure: source age *a* is admitted only once age *a − window*
  has fully drained, bounding scheduler lag and in-flight field memory;
* :mod:`~repro.stream.retire` — :class:`Retirer`, freeing drained ages
  through the existing field-GC paths (and workers' shared-memory
  views) so ``live_bytes`` stays bounded on unbounded runs;
* :mod:`~repro.stream.qos` — :class:`QosPolicy`, deadline-driven load
  shedding: deterministically (seeded) drop or degrade frames that are
  already late on admission, recording end-to-end latency histograms;
* :mod:`~repro.stream.driver` — :class:`StreamDriver`, the thread tying
  the four together behind ``run_program(stream=...)`` and
  ``Cluster.run(stream=...)``;
* :mod:`~repro.stream.multitenant` — :class:`SessionManager`, N
  concurrent sessions multiplexed over one runtime: namespaced
  programs, per-session gates/retirers/QoS tiers, fair cross-tenant
  dispatch, and admission control.
"""

from .driver import (
    StreamBinding,
    StreamConfig,
    StreamDriver,
    StreamReport,
)
from .gate import CreditGate
from .multitenant import (
    SESSION_SEP,
    AdmissionError,
    MultitenantReport,
    SessionManager,
    SessionSpec,
    merge_sessions,
    namespace_program,
    session_of_name,
)
from .qos import QOS_CLASSES, QosDecision, QosPolicy, shed_fraction
from .retire import Retirer
from .sources import (
    CycleSource,
    FileLoopSource,
    FrameSource,
    MultiSource,
    SequenceSource,
    SyntheticSource,
)

__all__ = [
    "QOS_CLASSES",
    "SESSION_SEP",
    "AdmissionError",
    "CreditGate",
    "CycleSource",
    "FileLoopSource",
    "FrameSource",
    "MultitenantReport",
    "QosDecision",
    "QosPolicy",
    "Retirer",
    "MultiSource",
    "SequenceSource",
    "SessionManager",
    "SessionSpec",
    "StreamBinding",
    "StreamConfig",
    "StreamDriver",
    "StreamReport",
    "SyntheticSource",
    "merge_sessions",
    "namespace_program",
    "session_of_name",
    "shed_fraction",
]
