"""Multi-tenant stream serving: one runtime, N concurrent sessions.

The PR 5 streaming runtime drives *one* live pipeline per program; a
production deployment (ROADMAP north-star, Nephele Streaming's setting)
multiplexes many independent streams over one worker pool so capacity
pools and QoS is enforced per stream.  This module adds that layer
without touching the execution model:

* **Namespacing** — each session's program is rewritten under a
  ``"<session>."`` prefix (:func:`namespace_program`) and every
  sessions' fields/kernels merge into one
  :class:`~repro.core.program.Program`.  Sessions share the *numeric*
  age space but never a field, so write-once isolation between tenants
  falls out of field-name disjointness (and, on the process backend,
  from per-field shared-memory segment names).
* **Fair dispatch** — the merged node runs the ready queue's ``"fair"``
  policy: per-session heaps with age priority inside a session and
  deficit round-robin across sessions (gold tiers get a larger
  quantum), so one hot tenant cannot starve the rest.
* **Per-session streaming state** — every session gets its own
  :class:`~repro.stream.StreamDriver` (hence its own credit gate, QoS
  policy, retirer frontier, metrics prefix and report), scoped to its
  namespaced subgraph.  One session ending — or being torn down — never
  closes another's gate or frees another's ages.
* **Admission control** — sessions past the capacity estimate are
  rejected (:class:`AdmissionError`) or queued until a running session
  drains, per the ``admission`` policy.
* **Tier-aware overload** — a ``"gold"`` session's
  :class:`~repro.stream.QosPolicy` never sheds; best-effort sessions
  shed as soon as frames are late, which is precisely what frees the
  shared capacity gold needs to stay inside its deadline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace as dc_replace

from ..core.naming import NAME_SEP, validate_component
from ..core.program import Program
from ..core.runtime import ExecutionNode, RunResult
from .driver import StreamBinding, StreamDriver

__all__ = [
    "SESSION_SEP",
    "AdmissionError",
    "MultitenantReport",
    "SessionManager",
    "SessionSpec",
    "merge_sessions",
    "namespace_program",
    "session_of_name",
]

#: Separator between a session name and the names it owns.  A dot — not
#: a slash — because namespaced field names end up inside POSIX
#: shared-memory segment names (``p2g<run>_<field>_<age>``), where ``/``
#: is illegal.  Shared with ``core.naming`` so operator-generated names
#: obey the same rules.
SESSION_SEP = NAME_SEP


def session_of_name(name: str) -> str:
    """The session prefix of a namespaced kernel/field name (``""`` for
    un-namespaced names)."""
    i = name.find(SESSION_SEP)
    return name[:i] if i > 0 else ""


def _check_session_name(name: str) -> None:
    validate_component(name, what="session name")


def namespace_program(program: Program, session: str) -> Program:
    """Rewrite ``program`` with every field/kernel/timer name prefixed
    by ``"<session>."``, suitable for merging with other sessions into
    one runtime.

    Fetch/store specs are rewritten to reference the namespaced fields;
    each store's ``key`` is pinned to the original ``emit_key`` so
    kernel *bodies* — which emit un-namespaced keys — run unchanged
    (bodies never see field names, only params and emit keys).
    Vectorized ``batch_body`` attachments survive: they too only touch
    fetch params and emit keys.
    """
    _check_session_name(session)
    p = session + SESSION_SEP
    fields = [
        dc_replace(f, name=p + f.name) for f in program.fields.values()
    ]
    kernels = [
        dc_replace(
            k,
            name=p + k.name,
            fetches=tuple(
                dc_replace(f, field=p + f.field) for f in k.fetches
            ),
            stores=tuple(
                dc_replace(s, field=p + s.field, key=s.emit_key)
                for s in k.stores
            ),
        )
        for k in program.kernels.values()
    ]
    return Program.build(
        fields,
        kernels,
        tuple(p + t for t in program.timers),
        name=p + program.name,
    )


class _NamespacedFields:
    """Field-store view that lets a session's un-namespaced binding
    glue (``store_frame``) address its own fields by their original
    names."""

    __slots__ = ("_store", "_prefix")

    def __init__(self, store, prefix: str) -> None:
        self._store = store
        self._prefix = prefix

    def __getitem__(self, name: str):
        return self._store[self._prefix + name]


def _namespace_binding(
    binding: StreamBinding, session: str
) -> StreamBinding:
    """A copy of ``binding`` whose ``store_frame`` writes through the
    session's namespaced fields and emits namespaced store events."""
    p = session + SESSION_SEP
    inner = binding.store_frame

    def store_frame(fields, age, frame):
        events = inner(_NamespacedFields(fields, p), age, frame)
        return [dc_replace(ev, field=p + ev.field) for ev in events]

    return dc_replace(binding, store_frame=store_frame)


def merge_sessions(specs) -> Program:
    """Merge every spec's namespaced program into one and install the
    session-dispatching output handler.

    The dispatcher routes each output by the emitting kernel's session
    prefix to that session's *solo* handler (with the prefix stripped,
    so the handler sees its own kernel names).  The result is what a
    multi-tenant :class:`~repro.core.runtime.ExecutionNode` — or a
    :class:`~repro.dist.cluster.Cluster` — executes.
    """
    specs = list(specs)
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate session names in {names}")
    subs = {s.name: namespace_program(s.program, s.name) for s in specs}
    merged = Program.build(
        [f for sub in subs.values() for f in sub.fields.values()],
        [k for sub in subs.values() for k in sub.kernels.values()],
        tuple(t for sub in subs.values() for t in sub.timers),
        name="multitenant",
    )
    handlers = {s.name: s.program.output_handler for s in specs}

    def dispatch(kernel, age, index, key, value) -> None:
        session, _, rest = kernel.partition(SESSION_SEP)
        handler = handlers.get(session)
        if handler is None:
            raise RuntimeError(
                f"output {key!r} from kernel {kernel!r} has no session "
                f"handler (session {session!r})"
            )
        handler(rest, age, index, key, value)

    merged.set_output_handler(dispatch)
    return merged


class AdmissionError(RuntimeError):
    """A session was offered past the runtime's capacity estimate under
    the ``"reject"`` admission policy."""


@dataclass
class SessionSpec:
    """One tenant: a solo program (with its own output handler/sink
    attached) plus the stream binding that feeds it.

    The program and binding are exactly what a single-tenant
    ``run_program(stream=binding)`` would take — e.g. the
    ``(program, sink, binding)`` triple from
    :func:`~repro.workloads.build_mjpeg_stream` — which is what makes
    the per-session byte-identity property testable: the same spec runs
    solo or co-resident.
    """

    name: str
    program: Program
    binding: StreamBinding

    @property
    def qos_class(self) -> str:
        """The session's service tier (from its stream config)."""
        return self.binding.config.qos_class

    def __post_init__(self) -> None:
        _check_session_name(self.name)


@dataclass
class MultitenantReport:
    """Aggregate outcome of a multi-session run."""

    sessions: dict  #: session name -> :class:`StreamReport`
    workers: int
    backend: str
    capacity: int
    duration_s: float

    def by_class(self) -> dict:
        """Per-tier aggregates: sessions/offered/completed/shed/degraded
        counts and the worst (max) p99 latency."""
        out: dict = {}
        for rep in self.sessions.values():
            tier = rep.qos_class or "best-effort"
            agg = out.setdefault(
                tier,
                {
                    "sessions": 0,
                    "offered": 0,
                    "completed": 0,
                    "shed": 0,
                    "degraded": 0,
                    "p99_ms": 0.0,
                },
            )
            agg["sessions"] += 1
            agg["offered"] += rep.offered
            agg["completed"] += rep.completed
            agg["shed"] += rep.shed
            agg["degraded"] += rep.degraded
            p99 = rep.latency_ms.get("p99")
            if p99 is not None:
                agg["p99_ms"] = max(agg["p99_ms"], p99)
        return out

    def as_dict(self) -> dict:
        """JSON-ready view (CI uploads this as the run artifact)."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "capacity": self.capacity,
            "duration_s": self.duration_s,
            "by_class": self.by_class(),
            "sessions": {
                name: rep.as_dict()
                for name, rep in self.sessions.items()
            },
        }


class SessionManager:
    """Run N independent stream sessions over one shared worker pool.

    Parameters
    ----------
    specs:
        The tenants (:class:`SessionSpec`).  More can be added with
        :meth:`add_session` until :meth:`start`.
    workers / backend / batch / max_age / metrics / tracer:
        Forwarded to the single merged :class:`ExecutionNode`.
    max_sessions:
        Capacity estimate; defaults to ``4 * workers`` (a paced session
        spends most of its frame interval idle, so several multiplex
        per worker; the bench sweeps where the estimate actually
        saturates).  Sessions past it are rejected or queued.
    admission:
        ``"reject"`` (default) raises :class:`AdmissionError` for
        sessions past capacity; ``"queue"`` admits them into the merged
        program but defers their stream start until a running session
        drains and frees a slot.
    session_weights:
        Ready-queue deficit quanta per session; defaults to 2 for gold
        sessions and 1 for best-effort (gold gets twice the dispatch
        slots under contention).
    """

    def __init__(
        self,
        specs=(),
        *,
        workers: int = 1,
        backend="threads",
        batch: int = 1,
        max_age: int | None = None,
        max_sessions: int | None = None,
        admission: str = "reject",
        session_weights: "dict[str, int] | None" = None,
        metrics=None,
        tracer=None,
        telemetry=None,
    ) -> None:
        if admission not in ("reject", "queue"):
            raise ValueError(
                f"admission must be 'reject' or 'queue', got {admission!r}"
            )
        self.workers = workers
        self.backend = backend
        self.batch = batch
        self.max_age = max_age
        self.capacity = (
            max_sessions if max_sessions is not None
            else max(1, 4 * workers)
        )
        self.admission = admission
        self._weights = session_weights
        self._metrics = metrics
        self._tracer = tracer
        self._telemetry = (
            telemetry
            if telemetry is not None and telemetry.enabled else None
        )
        self._specs: dict[str, SessionSpec] = {}
        self._queued: list[str] = []  # admitted-but-deferred sessions
        self.drivers: dict[str, StreamDriver] = {}
        self.node: ExecutionNode | None = None
        self.result: RunResult | None = None
        self._started = False
        self._active: set[str] = set()
        self._lock = threading.Lock()
        self._watcher: threading.Thread | None = None
        self._watch_stop = threading.Event()
        for spec in specs:
            self.add_session(spec)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def add_session(self, spec: SessionSpec) -> bool:
        """Admit a session (before :meth:`start`).  Returns ``True``
        when the session will stream immediately, ``False`` when it was
        queued behind the capacity estimate; raises
        :class:`AdmissionError` under the ``"reject"`` policy."""
        if self._started:
            raise RuntimeError(
                "sessions must be admitted before start() — the merged "
                "program is fixed once the runtime is up"
            )
        if spec.name in self._specs:
            raise ValueError(f"duplicate session {spec.name!r}")
        immediate = (
            len(self._specs) - len(self._queued) < self.capacity
        )
        if not immediate:
            if self.admission == "reject":
                raise AdmissionError(
                    f"session {spec.name!r} rejected: "
                    f"{self.capacity} sessions already admitted "
                    f"(capacity estimate for {self.workers} workers; "
                    f"raise max_sessions or use admission='queue')"
                )
            self._queued.append(spec.name)
        self._specs[spec.name] = spec
        return immediate

    @property
    def sessions(self) -> list[str]:
        """Admitted session names, admission order."""
        return list(self._specs)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        merged = merge_sessions(self._specs.values())
        subs = {
            name: namespace_program(spec.program, name)
            for name, spec in self._specs.items()
        }
        weights = self._weights
        if weights is None:
            weights = {
                name: 2 if spec.qos_class == "gold" else 1
                for name, spec in self._specs.items()
            }
        tel = self._telemetry
        self.node = ExecutionNode(
            merged,
            self.workers,
            max_age=self.max_age,
            backend=self.backend,
            batch=self.batch,
            scheduling="fair",
            session_weights=weights,
            metrics=self._metrics,
            tracer=self._tracer,
            name="tenant0",
            timeline=tel.timeline if tel is not None else None,
        )
        if tel is not None:
            tel.attach_tracer(self.node.tracer)
            tel.exporter.add_source(
                self.node.name, self.node.metrics.snapshot
            )
        for name, spec in self._specs.items():
            prefix = name + SESSION_SEP
            sub = subs[name]
            self.drivers[name] = StreamDriver(
                _namespace_binding(spec.binding, name),
                node=self.node,
                program=merged,
                session=name,
                kernel_filter=lambda k, _p=prefix: k.startswith(_p),
                retire_fields=frozenset(sub.fields),
                retire_kernels=frozenset(sub.kernels),
                telemetry=tel,
            )
            self.node.add_teardown_hook(self.drivers[name].stop)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Build the merged runtime, start it, and start every
        non-queued session's stream.  Queued sessions start as slots
        free up (a background watcher promotes them)."""
        if self._started:
            raise RuntimeError("SessionManager may only start once")
        self._started = True
        self._build()
        if self._telemetry is not None:
            self._telemetry.start()
        self.node.start()
        for name in self._specs:
            if name not in self._queued:
                self.start_session(name)
        if self._queued:
            self._watcher = threading.Thread(
                target=self._watch_queue, daemon=True,
                name="session-watcher",
            )
            self._watcher.start()

    def start_session(self, name: str) -> None:
        """Start one session's stream (idempotent)."""
        with self._lock:
            if name in self._active:
                return
            self._active.add(name)
        self.drivers[name].start()

    def stop_session(self, name: str) -> None:
        """End one session's stream: its gate closes and its quiescence
        token releases, while every other session keeps running.  The
        session's in-flight frames still drain (and free its fields)."""
        self.drivers[name].stop()

    def _session_done(self, name: str) -> bool:
        drv = self.drivers[name]
        with self._lock:
            started = name in self._active
        if not started:
            return False
        t = drv._thread
        return t is None or not t.is_alive()

    def _watch_queue(self) -> None:
        """Promote queued sessions as running ones finish offering."""
        while not self._watch_stop.is_set():
            with self._lock:
                queued = [
                    n for n in self._queued if n not in self._active
                ]
            if not queued:
                return
            done = sum(
                1 for n in self._specs
                if n not in queued and self._session_done(n)
            )
            with self._lock:
                active = len(self._active)
            slots = self.capacity - (active - done)
            for name in queued[:max(0, slots)]:
                self.start_session(name)
            self._watch_stop.wait(0.01)

    def join(
        self,
        timeout: float | None = None,
        stall_timeout: float | None = None,
    ) -> RunResult:
        """Wait for every session to drain and the runtime to go
        quiescent; returns the node's :class:`RunResult` with
        ``result.stream`` set to the :class:`MultitenantReport`."""
        if not self._started:
            raise RuntimeError("join() before start()")
        # A queued session that never got a slot must not hold its
        # quiescence token forever: once every startable session has
        # finished, the watcher promotes it; join just waits.
        try:
            result = self.node.join(
                timeout=timeout, stall_timeout=stall_timeout
            )
        finally:
            if self._telemetry is not None:
                self._telemetry.stop()
        self._watch_stop.set()
        if self._watcher is not None:
            self._watcher.join(1.0)
        result.stream = self.report(duration_s=result.wall_time)
        result.telemetry = self._telemetry
        self.result = result
        return result

    def run(
        self,
        timeout: float | None = None,
        stall_timeout: float | None = None,
    ) -> RunResult:
        """:meth:`start` + :meth:`join`."""
        self.start()
        return self.join(timeout=timeout, stall_timeout=stall_timeout)

    def stop(self) -> None:
        """End every session's stream (the node then drains)."""
        self._watch_stop.set()
        for name in self.drivers:
            self.stop_session(name)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, duration_s: float | None = None) -> MultitenantReport:
        """Per-session reports under one envelope."""
        reports = {
            name: drv.report() for name, drv in self.drivers.items()
        }
        if duration_s is None:
            duration_s = max(
                (r.duration_s for r in reports.values()), default=0.0
            )
        backend = self.node.backend.name if self.node else str(self.backend)
        return MultitenantReport(
            sessions=reports,
            workers=self.workers,
            backend=backend,
            capacity=self.capacity,
            duration_s=duration_s,
        )
