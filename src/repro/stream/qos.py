"""QoS load shedding: deadline-driven, deterministic frame dropping.

Nephele Streaming's lesson (PAPERS.md) is that QoS-constrained stream
jobs need explicit latency accounting plus an adaptive output policy;
the paper's own kernel language already has the primitive — the global
``timer`` with ``t + 100ms`` expressions (section V-B).  This module
phrases load shedding entirely through one such
:class:`~repro.core.deadlines.Timer`: frame ``a`` of an ``fps``-paced
stream is *late on admission* when the timer (reset at stream start) is
past ``arrival(a) + deadline_ms``, i.e. the frame already spent its
end-to-end budget queueing behind backpressure before the pipeline even
saw it.  Running it would waste capacity on a frame nobody will watch —
the policy sheds (drops) or degrades (freezes) it instead.

The shed-vs-degrade split is a pure seeded hash of ``(seed, age)`` —
no RNG state, no wall clock — so two runs experiencing the same
lateness make *identical* decisions, which is what makes overload
behaviour reproducible (and testable by property).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.deadlines import Timer

__all__ = ["QOS_CLASSES", "QosDecision", "QosPolicy", "shed_fraction"]

#: Service tiers, strongest first.  ``"gold"`` frames are never shed or
#: degraded — a late gold frame still runs (the miss is *counted*, via
#: the timer, but the tenant keeps every frame).  ``"best-effort"``
#: frames absorb overload: they shed/degrade as soon as they are late,
#: which is exactly what frees capacity for the gold tiers to catch up.
QOS_CLASSES = ("gold", "best-effort")


def shed_fraction(seed: int, age: int) -> float:
    """Deterministic uniform value in ``[0, 1)`` for ``(seed, age)``.

    A keyed blake2b hash, not an RNG: stateless, order-independent, and
    identical across processes and runs — the property the shedding
    determinism tests pin down.
    """
    digest = hashlib.blake2b(
        f"{seed}:{age}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class QosDecision:
    """The policy's verdict for one offered frame."""

    age: int
    action: str  #: "run" | "shed" | "degrade"
    lateness_ms: float  #: how far past arrival the frame was admitted

    @property
    def late(self) -> bool:
        """Whether the frame had blown its deadline on admission."""
        return self.action != "run"


class QosPolicy:
    """Decide, per offered frame, whether to run, shed or degrade it.

    Parameters
    ----------
    deadline_ms:
        Per-frame end-to-end latency budget.  A frame still waiting for
        admission ``deadline_ms`` after its arrival time is late.
    fps:
        The stream's pacing rate; frame ``a`` arrives at
        ``a * 1000 / fps`` ms on the stream timer.  With ``fps == 0``
        (unpaced), arrival times are supplied by the driver.
    seed:
        Seed for the deterministic shed-vs-degrade split.
    degrade_ratio:
        Fraction of late frames to *degrade* (freeze: repeat the
        previous frame, preserving timing) instead of *shed* (drop).
    timer:
        The stream clock; defaults to a fresh
        :class:`~repro.core.deadlines.Timer` (injectable for the
        deterministic tests).  Every late verdict polls
        :meth:`~repro.core.deadlines.Timer.expired`, so ``timer.misses``
        counts exactly the deadline misses of the run.
    qos_class:
        Service tier (see :data:`QOS_CLASSES`).  ``"best-effort"`` (the
        default — the PR 5 single-tenant behaviour) sheds/degrades late
        frames; ``"gold"`` runs them anyway, so a gold session never
        loses a frame and overload is absorbed by the best-effort tiers
        sharing the runtime.
    """

    def __init__(
        self,
        deadline_ms: float,
        fps: float,
        *,
        seed: int = 0,
        degrade_ratio: float = 0.0,
        timer: Timer | None = None,
        qos_class: str = "best-effort",
    ) -> None:
        if deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        if not 0.0 <= degrade_ratio <= 1.0:
            raise ValueError(
                f"degrade_ratio must be in [0, 1], got {degrade_ratio}"
            )
        if qos_class not in QOS_CLASSES:
            raise ValueError(
                f"unknown qos_class {qos_class!r}; "
                f"expected one of {QOS_CLASSES}"
            )
        self.deadline_ms = deadline_ms
        self.fps = fps
        self.seed = seed
        self.degrade_ratio = degrade_ratio
        self.timer = timer if timer is not None else Timer("stream.qos")
        self.qos_class = qos_class

    def arrival_ms(self, age: int) -> float:
        """Scheduled arrival of frame ``age`` on the stream timer."""
        return age * 1000.0 / self.fps if self.fps > 0 else 0.0

    def decide(
        self, age: int, arrival_ms: float | None = None
    ) -> QosDecision:
        """Verdict for frame ``age`` offered *now* (timer time).

        ``arrival_ms`` overrides the fps-derived arrival (the driver
        passes the actual offer time for unpaced streams, where frames
        have no schedule and are never late).
        """
        if arrival_ms is None:
            arrival_ms = self.arrival_ms(age)
        late = self.timer.expired(arrival_ms + self.deadline_ms)
        lateness = self.timer.elapsed_ms() - arrival_ms
        if not late or self.qos_class == "gold":
            # Gold still *polls* the timer above, so its deadline misses
            # are counted; it just never gives the frame up.
            return QosDecision(age, "run", lateness)
        if shed_fraction(self.seed, age) < self.degrade_ratio:
            return QosDecision(age, "degrade", lateness)
        return QosDecision(age, "shed", lateness)
