"""repro — a full Python reproduction of *P2G: A Framework for
Distributed Real-Time Processing of Multimedia Data* (ICPP 2011).

Public API layout:

* :mod:`repro.core` — fields, kernels, dependency analysis, the
  execution-node runtime and the low-level scheduler (the paper's
  contribution).
* :mod:`repro.lang` — the P2G kernel language compiler.
* :mod:`repro.dist` — master node, topology, HLS graph partitioning and
  the publish–subscribe transport.
* :mod:`repro.sim` — discrete-event simulator of execution nodes with
  calibrated machine profiles (reproduces figures 9 and 10).
* :mod:`repro.kpn` — a small Kahn-Process-Network runtime (the Nornir
  baseline the paper builds on).
* :mod:`repro.media` — YUV/DCT/JPEG substrate for the MJPEG workload.
* :mod:`repro.workloads` — the paper's workloads (mul2/plus5, K-means,
  Motion JPEG) and their baselines.
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure.
* :mod:`repro.obs` — observability: span tracing (Chrome trace-event
  JSON for Perfetto), the metrics registry, and the failure flight
  recorder.

Quickstart::

    from repro.workloads import build_mulsum
    from repro.core import run_program

    program, sink = build_mulsum()
    result = run_program(program, workers=4, max_age=3)
    print(sink[0])   # (array([10..14]), array([20, 22, 24, 26, 28]))
"""

from .core import (
    AgeExpr,
    Dim,
    ExecutionNode,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    P2GError,
    Program,
    RunResult,
    StoreSpec,
    make_kernel,
    run_program,
)
from .obs import MetricsRegistry, Tracer

__version__ = "1.0.0"

__all__ = [
    "AgeExpr",
    "Dim",
    "ExecutionNode",
    "FetchSpec",
    "FieldDef",
    "KernelContext",
    "KernelDef",
    "MetricsRegistry",
    "P2GError",
    "Program",
    "RunResult",
    "StoreSpec",
    "Tracer",
    "__version__",
    "make_kernel",
    "run_program",
]
