"""Terminal rendering of experiment series (the paper's figures are
line charts; we render the same series as aligned text and ASCII
charts so benches work headlessly)."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart", "format_sweep"]


def format_sweep(
    series: Mapping[str, Sequence[tuple[int, float]]],
    title: str,
    unit: str = "s",
) -> str:
    """Tabular rendering of per-machine (x, y) series."""
    xs = sorted({x for pts in series.values() for x, _y in pts})
    lines = [title, "workers  " + "".join(f"{x:>9}" for x in xs)]
    for name, pts in series.items():
        by_x = dict(pts)
        row = "".join(
            f"{by_x[x]:>9.2f}" if x in by_x else f"{'-':>9}" for x in xs
        )
        lines.append(f"{name[:8]:<8} {row} {unit}")
    return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, Sequence[tuple[int, float]]],
    title: str,
    height: int = 12,
    width: int = 60,
) -> str:
    """Minimal multi-series scatter chart in ASCII."""
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return title + "\n(no data)"
    xmin = min(x for x, _ in pts)
    xmax = max(x for x, _ in pts)
    ymax = max(y for _, y in pts)
    ymin = 0.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@"
    legend = []
    for i, (name, s) in enumerate(series.items()):
        m = markers[i % len(markers)]
        legend.append(f"{m} = {name}")
        for x, y in s:
            cx = 0 if xmax == xmin else round(
                (x - xmin) / (xmax - xmin) * (width - 1)
            )
            cy = 0 if ymax == ymin else round(
                (y - ymin) / (ymax - ymin) * (height - 1)
            )
            grid[height - 1 - cy][cx] = m
    lines = [title]
    lines.append(f"{ymax:8.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{ymin:8.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    lines.append(
        " " * 10 + f"{xmin}" + " " * (width - len(str(xmin)) -
                                      len(str(xmax))) + f"{xmax}"
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
