"""Per-table/per-figure experiment definitions.

Every public function regenerates one artifact of the paper's evaluation
(section VIII) or design discussion (figures 2–4) and returns both the
raw data and a text rendering.  See DESIGN.md's experiment index for the
mapping and EXPERIMENTS.md for recorded paper-vs-measured results.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

import numpy as np

from ..core import run_program
from ..core.graph import ascii_graph, dc_dag, final_graph, intermediate_graph
from ..sim import (
    CORE_I7_860,
    OPTERON_8218,
    SimResult,
    machine_table,
    paper_kmeans_model,
    paper_mjpeg_model,
    sweep_workers,
)
from ..workloads import build_kmeans, build_mjpeg, build_mulsum
from ..workloads.mjpeg import MJPEGConfig
from .plots import ascii_chart, format_sweep

__all__ = [
    "table1_machines",
    "table2_mjpeg_micro",
    "table3_kmeans_micro",
    "fig9_mjpeg_scaling",
    "fig10_kmeans_scaling",
    "fig2_intermediate_graph",
    "fig3_final_graph",
    "fig4_dcdag",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
]

#: Table II as published: kernel -> (instances, dispatch µs, kernel µs).
PAPER_TABLE2: Mapping[str, tuple[int, float, float]] = {
    "init": (1, 69.00, 18.00),
    "read": (51, 35.50, 1641.57),
    "ydct": (80784, 3.07, 170.30),
    "udct": (20196, 3.14, 170.24),
    "vdct": (20196, 3.15, 170.58),
    "vlc": (51, 3.09, 2160.71),
}

#: Table III as published.
PAPER_TABLE3: Mapping[str, tuple[int, float, float]] = {
    "init": (1, 58.00, 9829.00),
    "assign": (2024251, 4.07, 6.95),
    "refine": (1000, 3.21, 92.91),
    "print": (11, 1.09, 379.36),
}


@dataclass
class MicroBenchResult:
    """One micro-benchmark table: measured rows + the paper's rows."""

    title: str
    rows: list[tuple[str, int, float, float]]
    paper: Mapping[str, tuple[int, float, float]]
    config: dict = dc_field(default_factory=dict)

    def render(self) -> str:
        """Text table: measured rows beside the paper's published values."""
        lines = [self.title]
        lines.append(
            f"{'Kernel':<10}{'Instances':>11}{'Dispatch us':>13}"
            f"{'Kernel us':>12}   |{'paper N':>9}{'paper D':>9}"
            f"{'paper K':>10}"
        )
        for name, n, d, k, *_ in self.rows:
            pn, pd, pk = self.paper.get(name, (0, 0.0, 0.0))
            lines.append(
                f"{name:<10}{n:>11}{d:>13.2f}{k:>12.2f}   |"
                f"{pn:>9}{pd:>9.2f}{pk:>10.2f}"
            )
        return "\n".join(lines)


@dataclass
class SweepResult:
    """One scaling figure: per-machine series of (workers, seconds)."""

    title: str
    series: dict[str, list[tuple[int, float]]]
    baselines: dict[str, float] = dc_field(default_factory=dict)
    raw: dict[str, list[SimResult]] = dc_field(default_factory=dict)

    def render(self) -> str:
        """Sweep table + ASCII chart + any standalone reference lines."""
        out = [format_sweep(self.series, self.title)]
        for name, t in self.baselines.items():
            out.append(f"standalone encoder on {name}: {t:.2f} s")
        out.append(ascii_chart(self.series, self.title))
        return "\n".join(out)

    def speedup(self, machine: str) -> list[float]:
        """Speedups relative to the 1-worker point for one machine's series."""
        pts = dict(self.series[machine])
        base = pts[min(pts)]
        return [base / pts[w] for w in sorted(pts)]


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_machines() -> str:
    """Table I: overview of test machines (profile constants)."""
    return machine_table()


# ----------------------------------------------------------------------
# Tables II and III — measured on the real Python runtime
# ----------------------------------------------------------------------
def table2_mjpeg_micro(
    frames: int = 4,
    width: int = 352,
    height: int = 288,
    workers: int = 4,
) -> MicroBenchResult:
    """Table II: MJPEG per-kernel micro-benchmark.

    Runs the real runtime at CIF geometry (instance counts per frame
    exactly match the paper's 1584/396/396) but fewer frames — the
    full 50-frame naive-DCT run belongs to the C prototype; counts
    scale linearly and are reported per the configured frame count.
    """
    cfg = MJPEGConfig(width=width, height=height, frames=frames)
    program, sink = build_mjpeg(config=cfg)
    result = run_program(program, workers=workers, timeout=600)
    rows = result.instrumentation.as_rows(
        order=["read", "ydct", "udct", "vdct", "vlc"]
    )
    assert sink.frame_count() == frames
    return MicroBenchResult(
        title=(
            f"Table II (measured, {frames} frames of "
            f"{width}x{height}; paper: 50 frames CIF)"
        ),
        rows=rows,
        paper=PAPER_TABLE2,
        config={"frames": frames, "width": width, "height": height,
                "workers": workers, "reason": result.reason},
    )


def table3_kmeans_micro(
    n: int = 200,
    k: int = 20,
    iterations: int = 10,
    workers: int = 4,
    granularity: str = "pair",
) -> MicroBenchResult:
    """Table III: K-means per-kernel micro-benchmark.

    Pair granularity matches the paper's instance arithmetic
    (n·k·iterations assigns, k·iterations refines, iterations+1 prints);
    the default scale is reduced from n=2000, K=100 for wall-clock
    practicality under the Python runtime.
    """
    program, _sink = build_kmeans(
        n=n, k=k, iterations=iterations, granularity=granularity
    )
    result = run_program(program, workers=workers, timeout=600)
    rows = result.instrumentation.as_rows(
        order=["init", "assign", "refine", "print"]
    )
    return MicroBenchResult(
        title=(
            f"Table III (measured, n={n}, K={k}, {iterations} iterations, "
            f"{granularity} granularity; paper: n=2000, K=100)"
        ),
        rows=rows,
        paper=PAPER_TABLE3,
        config={"n": n, "k": k, "iterations": iterations,
                "workers": workers, "reason": result.reason},
    )


# ----------------------------------------------------------------------
# Figures 9 and 10 — simulated on the table-I machines
# ----------------------------------------------------------------------
def fig9_mjpeg_scaling(
    frames: int = 50, worker_counts: Sequence[int] = range(1, 9)
) -> SweepResult:
    """Figure 9: MJPEG execution time vs worker threads on both machines,
    plus the standalone single-threaded encoder reference."""
    model = paper_mjpeg_model(frames)
    series: dict[str, list[tuple[int, float]]] = {}
    raw: dict[str, list[SimResult]] = {}
    baselines: dict[str, float] = {}
    for mach in (CORE_I7_860, OPTERON_8218):
        rs = sweep_workers(model, mach, worker_counts)
        series[mach.name] = [(r.workers, r.makespan) for r in rs]
        raw[mach.name] = rs
        # Standalone encoder: all kernel work on one core, no framework.
        baselines[mach.name] = (
            model.total_kernel_seconds() / mach.capacity(1)
        )
    return SweepResult(
        title=f"Figure 9: MJPEG execution time ({frames} frames, simulated)",
        series=series,
        baselines=baselines,
        raw=raw,
    )


def fig10_kmeans_scaling(
    n: int = 2000,
    k: int = 100,
    iterations: int = 10,
    worker_counts: Sequence[int] = range(1, 9),
) -> SweepResult:
    """Figure 10: K-means execution time vs worker threads; the serial
    dependency analyzer saturates past 4 workers and the curve turns
    upward, the Opteron suffering more than the turbo-boosted i7."""
    model = paper_kmeans_model(n, k, iterations)
    series: dict[str, list[tuple[int, float]]] = {}
    raw: dict[str, list[SimResult]] = {}
    for mach in (CORE_I7_860, OPTERON_8218):
        rs = sweep_workers(model, mach, worker_counts)
        series[mach.name] = [(r.workers, r.makespan) for r in rs]
        raw[mach.name] = rs
    return SweepResult(
        title=(
            f"Figure 10: K-means execution time (n={n}, K={k}, "
            f"{iterations} iterations, simulated)"
        ),
        series=series,
        raw=raw,
    )


# ----------------------------------------------------------------------
# Figures 2–4 — dependency graph structure (mul2/plus5 program)
# ----------------------------------------------------------------------
def fig2_intermediate_graph() -> str:
    """Figure 2: intermediate implicit static dependency graph."""
    program, _ = build_mulsum()
    g = intermediate_graph(program)
    return ascii_graph(g, "Figure 2: intermediate implicit static graph")


def fig3_final_graph() -> str:
    """Figure 3: final implicit static dependency graph (fields merged)."""
    program, _ = build_mulsum()
    g = final_graph(program)
    return ascii_graph(g, "Figure 3: final implicit static graph")


def fig4_dcdag(max_age: int = 3) -> str:
    """Figure 4: the DC-DAG unrolled over ages (acyclic by construction)."""
    program, _ = build_mulsum()
    g = dc_dag(program, max_age)
    assert g.is_acyclic()
    return ascii_graph(
        g, f"Figure 4: DC-DAG unrolled to age {max_age} (acyclic)"
    )
