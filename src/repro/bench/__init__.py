"""Experiment harness: regenerates every table and figure in the paper.

Each ``table*``/``fig*`` function returns structured data plus a
formatted rendering that mirrors the paper's presentation.  The
``benchmarks/`` directory drives these under pytest-benchmark;
``EXPERIMENTS.md`` records paper-vs-measured for each.

Measurement tiers (documented per experiment):

* **simulated** — the discrete-event node with table-calibrated costs on
  the table-I machine profiles (figures 9, 10: curve shapes);
* **measured** — the real Python runtime on this host, at a reduced
  scale where the full parameters are impractical under the GIL
  (tables II, III: instance counts exact, timings host-specific);
* **structural** — graphs and language artifacts (figures 2–8).
"""

from .experiments import (
    fig2_intermediate_graph,
    fig3_final_graph,
    fig4_dcdag,
    fig9_mjpeg_scaling,
    fig10_kmeans_scaling,
    table1_machines,
    table2_mjpeg_micro,
    table3_kmeans_micro,
)
from .plots import ascii_chart, format_sweep

__all__ = [
    "ascii_chart",
    "fig10_kmeans_scaling",
    "fig2_intermediate_graph",
    "fig3_final_graph",
    "fig4_dcdag",
    "fig9_mjpeg_scaling",
    "format_sweep",
    "table1_machines",
    "table2_mjpeg_micro",
    "table3_kmeans_micro",
]
