"""KPN network wiring and lifecycle.

Demonstrates exactly the programming-model burden the paper contrasts
P2G against: every process and every channel is declared and connected
*manually* ("the KPN model requires the application developer to specify
the communication channels between the processes manually"), and the
runtime must babysit bounded buffers with a deadlock monitor.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

from ..core.errors import DeadlockError
from .channel import Channel
from .deadlock import WaitForGraph, find_cycle
from .process import Process

__all__ = ["Network"]


class Network:
    """A set of processes connected by bounded channels."""

    def __init__(self, name: str = "kpn") -> None:
        self.name = name
        self._processes: dict[str, Process] = {}
        self._channels: dict[str, Channel] = {}
        self.deadlocks_resolved = 0

    # -- construction -----------------------------------------------------
    def add_process(
        self,
        name: str,
        fn: Callable[[Mapping[str, Channel], Mapping[str, Channel]], None],
    ) -> Process:
        """Declare a process; wiring happens via connect()."""
        if name in self._processes:
            raise ValueError(f"duplicate process {name!r}")
        p = Process(name, fn)
        self._processes[name] = p
        return p

    def add_channel(self, name: str, capacity: int = 16) -> Channel:
        """Declare an unwired channel (advanced use; prefer connect())."""
        if name in self._channels:
            raise ValueError(f"duplicate channel {name!r}")
        ch = Channel(name, capacity)
        self._channels[name] = ch
        return ch

    def connect(
        self,
        producer: str,
        out_port: str,
        consumer: str,
        in_port: str,
        capacity: int = 16,
    ) -> Channel:
        """Create a channel and wire producer.out_port -> consumer.in_port."""
        ch = self.add_channel(
            f"{producer}.{out_port}->{consumer}.{in_port}", capacity
        )
        self._processes[producer].add_output(out_port, ch)
        self._processes[consumer].add_input(in_port, ch)
        return ch

    def channel(self, name: str) -> Channel:
        """Look up a channel by name."""
        return self._channels[name]

    def processes(self) -> list[Process]:
        """All processes in declaration order."""
        return list(self._processes.values())

    # -- execution ----------------------------------------------------------
    def run(self, timeout: float | None = None, poll: float = 0.01) -> None:
        """Start every process and run to completion.

        The monitor polls the channels' blocked markers; an artificial
        deadlock (cycle containing a full-channel edge) is resolved by
        growing the smallest full channel on the cycle (Parks); a true
        deadlock (all-read cycle) raises :class:`DeadlockError`.
        """
        for p in self._processes.values():
            p.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            alive = [p for p in self._processes.values() if p.running]
            if not alive:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlockError(
                    f"network {self.name!r} did not finish within {timeout}s"
                )
            graph = WaitForGraph.snapshot(self._channels.values())
            cycle = find_cycle(graph)
            if cycle is not None:
                # Re-check after a short settle: a transiently blocked
                # process may already have moved on.
                time.sleep(poll)
                graph2 = WaitForGraph.snapshot(self._channels.values())
                cycle2 = find_cycle(graph2)
                if cycle2 is not None:
                    self._resolve(cycle2)
            time.sleep(poll)
        errors = [p.error for p in self._processes.values() if p.error]
        if errors:
            raise errors[0]

    def _resolve(self, cycle) -> None:
        write_edges = [e for e in cycle if e.kind == "write"]
        if not write_edges:
            chain = " -> ".join(e.waiter for e in cycle)
            raise DeadlockError(
                f"true deadlock in network {self.name!r}: {chain}"
            )
        smallest = min(write_edges, key=lambda e: e.channel.capacity)
        smallest.channel.grow()
        self.deadlocks_resolved += 1

    # -- stats ---------------------------------------------------------------
    def total_messages(self) -> int:
        """Messages that passed through all channels."""
        return sum(ch.total_messages for ch in self._channels.values())
