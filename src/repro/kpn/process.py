"""KPN processes.

A process is a plain Python callable executed in its own thread, whose
only communication is blocking :meth:`Channel.get`/:meth:`Channel.put`
on the channels it was wired to — the Kahn conditions that make the
whole network deterministic.  When the callable returns (or its input
closes), the process closes its output channels, propagating end of
stream downstream.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from .channel import Channel, ChannelClosed

__all__ = ["Process"]


class Process:
    """One KPN process.

    Parameters
    ----------
    name:
        Unique process name.
    fn:
        ``fn(inputs, outputs)`` where both arguments are name→Channel
        mappings.  The function runs once; loops are written inside it
        (``while True: x = inputs["in"].get() ...``), and a
        :class:`ChannelClosed` escaping the function is normal end of
        stream.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Mapping[str, Channel], Mapping[str, Channel]], None],
    ) -> None:
        self.name = name
        self.fn = fn
        self.inputs: dict[str, Channel] = {}
        self.outputs: dict[str, Channel] = {}
        self._thread: threading.Thread | None = None
        self.error: BaseException | None = None
        self.finished = threading.Event()

    # -- wiring (done by the Network) ------------------------------------
    def add_input(self, port: str, channel: Channel) -> None:
        """Wire a channel to an input port (sets the channel's reader)."""
        if port in self.inputs:
            raise ValueError(f"process {self.name!r}: duplicate input port "
                             f"{port!r}")
        channel.reader = self.name
        self.inputs[port] = channel

    def add_output(self, port: str, channel: Channel) -> None:
        """Wire a channel to an output port (sets the channel's writer)."""
        if port in self.outputs:
            raise ValueError(f"process {self.name!r}: duplicate output port "
                             f"{port!r}")
        channel.writer = self.name
        self.outputs[port] = channel

    # -- lifecycle ---------------------------------------------------------
    def _run(self) -> None:
        try:
            self.fn(self.inputs, self.outputs)
        except ChannelClosed:
            pass  # upstream ended; normal termination
        except BaseException as exc:  # noqa: BLE001 - reported by network
            self.error = exc
        finally:
            for ch in self.outputs.values():
                ch.close()
            self.finished.set()

    def start(self) -> None:
        """Start the process thread."""
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"kpn-{self.name}"
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for termination; True when the thread has exited."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def running(self) -> bool:
        """Whether the process thread is still alive."""
        return self._thread is not None and self._thread.is_alive()
