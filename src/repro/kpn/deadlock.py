"""Wait-for-graph deadlock detection for the KPN runtime.

"A distributed version of a KPN implementation requires a distributed
deadlock detection algorithm" (paper, section II) — the single-node
variant here builds the wait-for graph from blocked channel operations:

* a process blocked *reading* channel ``c`` waits for ``c``'s writer;
* a process blocked *writing* (full) channel ``c`` waits for ``c``'s
  reader.

A cycle containing at least one full-channel (write) edge is an
*artificial* deadlock caused by finite buffering; Parks' algorithm
resolves it by growing the smallest full channel on the cycle.  A cycle
of pure read edges is a true deadlock and is reported as
:class:`~repro.core.errors.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable

from .channel import Channel

__all__ = ["WaitForGraph", "find_cycle"]


@dataclass(frozen=True)
class WaitEdge:
    """``waiter`` is blocked on ``channel`` waiting for ``holder``."""

    waiter: str
    holder: str
    channel: Channel
    kind: str  # "read" | "write"


@dataclass
class WaitForGraph:
    """Snapshot of who waits for whom."""

    edges: list[WaitEdge] = dc_field(default_factory=list)

    @classmethod
    def snapshot(cls, channels: Iterable[Channel]) -> "WaitForGraph":
        """Build the wait-for graph from the channels' blocked markers."""
        edges = []
        for ch in channels:
            if ch.blocked_reader and ch.writer:
                edges.append(
                    WaitEdge(ch.blocked_reader, ch.writer, ch, "read")
                )
            if ch.blocked_writer and ch.reader:
                edges.append(
                    WaitEdge(ch.blocked_writer, ch.reader, ch, "write")
                )
        return cls(edges)

    def successors(self, process: str) -> list[WaitEdge]:
        """Edges whose waiter is ``process``."""
        return [e for e in self.edges if e.waiter == process]


def find_cycle(graph: WaitForGraph) -> list[WaitEdge] | None:
    """Find one cycle in the wait-for graph (DFS); returns its edges or
    ``None``."""
    adjacency: dict[str, list[WaitEdge]] = {}
    for e in graph.edges:
        adjacency.setdefault(e.waiter, []).append(e)
    color: dict[str, int] = {}
    stack: list[WaitEdge] = []
    result: list[WaitEdge] | None = None

    def dfs(node: str) -> bool:
        nonlocal result
        color[node] = 1
        for e in adjacency.get(node, ()):
            if color.get(e.holder, 0) == 1:
                # found a back edge; slice the cycle out of the stack
                cycle = [e]
                for prev in reversed(stack):
                    cycle.append(prev)
                    if prev.waiter == e.holder:
                        break
                result = list(reversed(cycle))
                return True
            if color.get(e.holder, 0) == 0:
                stack.append(e)
                if dfs(e.holder):
                    return True
                stack.pop()
        color[node] = 2
        return False

    for node in list(adjacency):
        if color.get(node, 0) == 0 and dfs(node):
            return result
    return None
