"""Bounded KPN channels.

A Kahn channel is an unbounded FIFO in theory; "in real-life distributed
implementations, however, queue length is limited by available memory"
(paper, section III) — so these channels have a capacity, writers block
when full, and the network's deadlock monitor may *grow* a channel to
resolve an artificial deadlock (Parks' algorithm).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["Channel", "ChannelClosed"]


class ChannelClosed(Exception):
    """Raised by :meth:`Channel.get` after the producer closed an empty
    channel, and by :meth:`Channel.put` after close."""


class Channel:
    """Single-producer / single-consumer bounded blocking FIFO.

    The ``reader``/``writer`` attributes are filled in by the network at
    wiring time and used by the deadlock monitor to build the wait-for
    graph.
    """

    def __init__(self, name: str, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._q: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.writer: str | None = None
        self.reader: str | None = None
        #: deadlock-monitor state: process name blocked on this channel
        self.blocked_writer: str | None = None
        self.blocked_reader: str | None = None
        self.total_messages = 0

    # ------------------------------------------------------------------
    def put(self, item: Any) -> None:
        """Blocking write (Kahn semantics: the only way a process emits)."""
        with self._not_full:
            if self._closed:
                raise ChannelClosed(self.name)
            while len(self._q) >= self.capacity:
                self.blocked_writer = self.writer
                self._not_full.wait(0.05)
                if self._closed:
                    self.blocked_writer = None
                    raise ChannelClosed(self.name)
            self.blocked_writer = None
            self._q.append(item)
            self.total_messages += 1
            self._not_empty.notify()

    def get(self) -> Any:
        """Blocking read; raises :class:`ChannelClosed` at end of stream."""
        with self._not_empty:
            while not self._q:
                if self._closed:
                    raise ChannelClosed(self.name)
                self.blocked_reader = self.reader
                self._not_empty.wait(0.05)
            self.blocked_reader = None
            item = self._q.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Producer signals end of stream; blocked peers wake."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def grow(self, extra: int = 1) -> int:
        """Parks' resolution: raise capacity, waking a blocked writer.
        Returns the new capacity."""
        with self._lock:
            self.capacity += extra
            self._not_full.notify_all()
            return self.capacity

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the producer has signalled end of stream."""
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._q)

    @property
    def full(self) -> bool:
        """Whether the buffer is at capacity (writers would block)."""
        with self._lock:
            return len(self._q) >= self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, {len(self)}/{self.capacity}"
            f"{', closed' if self._closed else ''})"
        )
