"""A Kahn-Process-Network runtime — the Nornir baseline.

The paper builds on the authors' earlier Nornir system [39], a C++ KPN
runtime, and motivates P2G by KPN's pain points: processes and
communication channels must be wired *manually*, channels are formally
unbounded FIFOs (real implementations bound them and then need deadlock
handling), and data parallelism requires explicitly instantiating more
processes.

This package is a faithful small KPN runtime used by the comparison
examples and tests:

* :class:`~repro.kpn.channel.Channel` — bounded, blocking, single-
  producer/single-consumer FIFO;
* :class:`~repro.kpn.process.Process` — a Python callable run in its own
  thread, reading/writing only through its channels (Kahn semantics:
  blocking reads, no polling — which is what makes execution
  deterministic);
* :class:`~repro.kpn.network.Network` — wiring + lifecycle + the
  deadlock monitor;
* :mod:`repro.kpn.deadlock` — wait-for-graph cycle detection with
  Parks' resolution (grow the smallest full channel in the cycle) for
  *artificial* deadlocks, and :class:`~repro.core.errors.DeadlockError`
  for true ones.
"""

from .channel import Channel, ChannelClosed
from .deadlock import WaitForGraph, find_cycle
from .network import Network
from .process import Process

__all__ = [
    "Channel",
    "ChannelClosed",
    "Network",
    "Process",
    "WaitForGraph",
    "find_cycle",
]
