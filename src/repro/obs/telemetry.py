"""Live telemetry: periodic metric snapshots, JSONL / Prometheus
export, an optional scrape endpoint, and the SLO alert wiring.

The run-report path (``--metrics-json``) only speaks after the run is
over; production serving needs signals *while the run is alive*.  A
:class:`TelemetryExporter` samples one or more snapshot sources (the
shared :class:`~repro.obs.metrics.MetricsRegistry`, per-node synthetic
snapshots in a cluster) on a fixed interval, merges them with the
existing snapshot algebra (:func:`repro.obs.metrics.merge` — the same
operation the cluster master uses for cross-node aggregation), and
keeps a bounded time-series ring.  Each tick can also append a JSONL
line, and an embedded stdlib HTTP server (``--telemetry-port``)
exposes:

* ``/metrics`` — Prometheus text exposition (counters and gauges map
  directly; histograms export as summaries with quantile labels);
* ``/snapshot.json`` — the latest merged snapshot, raw;
* one JSON page per registered :meth:`TelemetryExporter.page`
  (the stream wiring adds ``/slo.json`` and ``/stages.json``).

:class:`Telemetry` is the bundle the runtime wires through
``run_program`` / ``Cluster.run``: a
:class:`~repro.obs.timeline.TimelineRecorder`, an
:class:`~repro.obs.slo.SloTracker` whose default alert action logs,
drops a tracer instant and dumps a session-annotated flight
recording, and the exporter.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping

from .flight import dump_flight
from .metrics import merge, flatten, percentile_keys, quantile_of_key
from .slo import SloAlert, SloTracker
from .timeline import TimelineRecorder

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "TelemetryExporter",
    "render_prometheus",
    "validate_prometheus_text",
]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[Nn]a[Nn]|[-+]?[Ii]nf)$"
)


def _prom_name(name: str, prefix: str = "p2g") -> str:
    """A metric name valid under the Prometheus data model: dots and
    other separators become underscores, with a namespace prefix."""
    clean = _NAME_BAD.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return f"{prefix}_{clean}" if prefix else clean


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, dict],
                      prefix: str = "p2g") -> str:
    """Render a metrics snapshot as Prometheus text exposition
    (version 0.0.4).  Counters and gauges map one-to-one; histograms
    become summaries — one ``{quantile="0.x"}`` sample per reported
    percentile plus ``_sum`` and ``_count`` series."""
    lines: list[str] = []
    for name in sorted(snapshot):
        s = snapshot[name]
        kind = s.get("type")
        pname = _prom_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_prom_value(s['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(s['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} summary")
            for key in percentile_keys(s):
                q = quantile_of_key(key) / 100.0
                lines.append(
                    f'{pname}{{quantile="{q:g}"}} {_prom_value(s[key])}'
                )
            lines.append(f"{pname}_sum {_prom_value(s['sum'])}")
            lines.append(f"{pname}_count {_prom_value(s['count'])}")
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> int:
    """Validate Prometheus text exposition; returns the number of
    sample lines.  Raises :class:`ValueError` on a malformed line or a
    sample whose family was never ``# TYPE``-declared."""
    samples = 0
    families: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                families.add(parts[2])
                continue
            raise ValueError(f"line {lineno}: malformed comment {line!r}")
        if not _METRIC_LINE.match(line):
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = re.sub(r"_(sum|count)$", "", name)
        if name not in families and base not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        samples += 1
    return samples


# ----------------------------------------------------------------------
# Exporter
# ----------------------------------------------------------------------
class _ScrapeHandler(BaseHTTPRequestHandler):
    exporter: "TelemetryExporter"  # set on the subclass per server

    def log_message(self, *_args) -> None:  # silence request logging
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        exp = self.exporter
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = exp.prometheus_text().encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/snapshot.json":
            body = json.dumps(exp.latest() or {}).encode()
            ctype = "application/json"
        else:
            fn = exp._pages.get(path.strip("/"))
            if fn is None:
                self.send_response(404)
                self.end_headers()
                return
            try:
                body = json.dumps(fn()).encode()
            except Exception:  # noqa: BLE001 - scrape must not crash
                body = b"{}"
            ctype = "application/json"
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TelemetryExporter:
    """Samples snapshot sources on an interval into a bounded ring,
    with optional JSONL append and an HTTP scrape endpoint.

    Sources are named callables returning metric snapshots; each tick
    merges them with :func:`repro.obs.metrics.merge` — node-local
    snapshots aggregate at the sampling master exactly as cluster
    run-reports do.  A source that raises contributes nothing to that
    tick (a dying node must not kill telemetry).
    """

    def __init__(
        self,
        *,
        interval_s: float = 0.5,
        ring: int = 256,
        jsonl_path: "str | Path | None" = None,
        port: int | None = None,
    ) -> None:
        self.interval_s = max(0.05, float(interval_s))
        self._sources: dict[str, Callable[[], Mapping[str, dict]]] = {}
        self._pages: dict[str, Callable[[], object]] = {}
        self._ring: deque = deque(maxlen=max(1, ring))
        self._jsonl_path = Path(jsonl_path) if jsonl_path else None
        self._jsonl_fh = None
        self._port = port
        self.http_port: int | None = None
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.ticks = 0

    # -- wiring ---------------------------------------------------------
    def add_source(self, name: str,
                   fn: Callable[[], Mapping[str, dict]]) -> None:
        with self._lock:
            self._sources[name] = fn

    def page(self, name: str, fn: Callable[[], object]) -> None:
        """Register a JSON page served at ``/<name>.json`` (and
        ``/<name>``)."""
        with self._lock:
            self._pages[name.removesuffix(".json")] = fn
            self._pages[f"{name.removesuffix('.json')}.json"] = fn

    # -- sampling -------------------------------------------------------
    def sample(self) -> dict:
        """Take one merged sample now (also called by the timer
        thread).  Returns the merged snapshot."""
        with self._lock:
            sources = list(self._sources.items())
        snaps = []
        for _name, fn in sources:
            try:
                snaps.append(fn())
            except Exception:  # noqa: BLE001 - per-source isolation
                continue
        snap = merge(*snaps) if snaps else {}
        entry = {"t": time.time(), "metrics": snap}
        with self._lock:
            self._ring.append(entry)
            self.ticks += 1
            fh = self._jsonl_fh
            if fh is not None:
                line = json.dumps(
                    {"t": entry["t"], "metrics": flatten(snap)}
                )
                fh.write(line + "\n")
                fh.flush()
        return snap

    def latest(self) -> dict | None:
        with self._lock:
            return self._ring[-1]["metrics"] if self._ring else None

    def snapshots(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def prometheus_text(self) -> str:
        snap = self.sample()
        return render_prometheus(snap)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        if self._jsonl_path is not None:
            self._jsonl_fh = self._jsonl_path.open("w")
        if self._port is not None:
            handler = type("Handler", (_ScrapeHandler,),
                           {"exporter": self})
            self._server = ThreadingHTTPServer(
                ("127.0.0.1", self._port), handler
            )
            self.http_port = self._server.server_address[1]
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                name="telemetry-http", daemon=True,
            )
            self._server_thread.start()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-sampler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self) -> None:
        if self._thread is None and self._server is None:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()  # final tick so short runs record something
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server = None
            self._server_thread = None
        with self._lock:
            if self._jsonl_fh is not None:
                self._jsonl_fh.close()
                self._jsonl_fh = None


# ----------------------------------------------------------------------
# The bundle the runtime wires through
# ----------------------------------------------------------------------
@dataclass
class TelemetryConfig:
    """Knobs for one run's telemetry layer."""

    interval_s: float = 0.5      #: exporter sampling period
    ring: int = 256              #: snapshot ring capacity
    port: int | None = None      #: HTTP scrape port (0 = ephemeral)
    jsonl_path: str | None = None  #: append one JSON line per tick
    slo_window_s: float = 5.0    #: burn-rate evidence window
    slo_burn_alert: float = 2.0  #: burn-rate alert threshold
    slo_min_frames: int = 10     #: samples required before alerting
    slo_cooldown_s: float = 5.0  #: per-session alert rate limit
    slo_target: float = 0.05     #: default error budget (miss fraction)


class Telemetry:
    """Timeline + SLO tracker + exporter, wired together.

    Constructed once per run (``run_program(..., telemetry=...)`` /
    ``Cluster.run(..., telemetry=...)`` / ``SessionManager``), it owns
    the pieces the layers share: the frame :attr:`timeline`, the
    :attr:`slo` tracker whose default alert action logs the breach,
    drops a ``slo-breach`` tracer instant and dumps a flight recording
    annotated with the offending session, and the :attr:`exporter`.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.timeline = TimelineRecorder()
        self.slo = SloTracker(
            window_s=self.config.slo_window_s,
            burn_alert=self.config.slo_burn_alert,
            min_frames=self.config.slo_min_frames,
            cooldown_s=self.config.slo_cooldown_s,
            default_target=self.config.slo_target,
        )
        self.exporter = TelemetryExporter(
            interval_s=self.config.interval_s,
            ring=self.config.ring,
            jsonl_path=self.config.jsonl_path,
            port=self.config.port,
        )
        self.flight_paths: list[Path] = []
        self._tracer = None
        self._started = False
        self.enabled = True
        self.slo.on_alert(self._default_alert)
        self.exporter.page("slo", self.slo.as_dict)
        self.exporter.page("stages", self.timeline.as_dict)

    # -- alert plumbing -------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Give the default alert action a tracer to annotate (the run
        wiring calls this with the run's tracer)."""
        self._tracer = tracer

    def _default_alert(self, alert: SloAlert) -> None:
        label = alert.session or "stream"
        print(
            f"[slo] {label} ({alert.tier}): error budget burning "
            f"{alert.burn_rate:.1f}x too fast "
            f"({alert.window_misses}/{alert.window_frames} misses in "
            f"window, deadline {alert.deadline_ms:g}ms)",
            file=sys.stderr,
        )
        tracer = self._tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return
        tracer.instant(
            "slo-breach", "slo", "stream", label, args=alert.as_dict()
        )
        path = dump_flight(
            tracer,
            reason="slo-breach",
            context={
                "session": alert.session,
                "tier": alert.tier,
                "burn_rate": round(alert.burn_rate, 3),
                "deadline_ms": alert.deadline_ms,
            },
        )
        if path is not None:
            self.flight_paths.append(path)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            self.exporter.start()

    def stop(self) -> None:
        if self._started:
            self._started = False
            self.exporter.stop()

    # -- reporting ------------------------------------------------------
    def as_dict(self) -> dict:
        out = self.slo.as_dict()
        out["timeline"] = self.timeline.as_dict()
        out["snapshots"] = len(self.exporter.snapshots())
        if self.exporter.http_port is not None:
            out["http_port"] = self.exporter.http_port
        if self.flight_paths:
            out["flight_paths"] = [str(p) for p in self.flight_paths]
        return out
