"""Metrics registry: counters, gauges and histograms with snapshots.

Where :mod:`repro.obs.tracing` keeps the timeline, this module keeps the
*state* a scheduler (the paper's LLS/HLS) or an operator would poll:
ready-queue depth and wait time, live field bytes, transport traffic,
deadline misses, recovery counts, and the online-adaptation counters
(``adapt.replans`` / ``adapt.coarsen`` / ``adapt.fuse`` totals plus the
``adapt.epoch`` gauge tracking the newest swap boundary).  Three metric
kinds:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — last-set value (with a ``set_max`` variant so
  several nodes reporting the same shared resource don't regress it);
* :class:`Histogram` — count/sum/min/max of observations (mean derived)
  plus a configurable quantile set (p50/p90/p99/p999 by default)
  estimated from a bounded, deterministically decimated sample buffer
  (the streaming runtime's latency accounting).

A snapshot is a plain ``{name: {"type": ..., ...}}`` dict: JSON-ready,
and the module-level :func:`delta`, :func:`merge`, :func:`flatten` and
:func:`render` give it the algebra the CLI and the cluster need —
deltas for rate windows, merges for cluster-wide aggregation, a flat
``name -> number`` view for machine consumers and a human table for
``--metrics``.
"""

from __future__ import annotations

import json
import math
import re
import sys
import threading
from typing import Callable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "delta",
    "flatten",
    "merge",
    "peak_rss_bytes",
    "percentile_keys",
    "quantile_key",
    "quantile_of_key",
    "render",
]

#: Quantiles every histogram reports by default (per-cent values).
DEFAULT_QUANTILES: tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)

#: Snapshot keys shaped like percentile estimates ("p50", "p999", ...).
_PERCENTILE_KEY_RE = re.compile(r"^p\d+$")


def quantile_key(q: float) -> str:
    """Snapshot key for quantile ``q``: 50 -> ``p50``, 99.9 -> ``p999``."""
    return "p" + f"{q:g}".replace(".", "")


def quantile_of_key(key: str) -> float:
    """Inverse of :func:`quantile_key` (``p999`` -> 99.9).  Digits past
    the integer part are decimals: a quantile is at most 100."""
    value = float(key[1:])
    while value > 100.0:
        value /= 10.0
    return value


def percentile_keys(snapshot_entry: Mapping[str, object]) -> list[str]:
    """The percentile keys present in one histogram snapshot entry,
    ordered by quantile (empty for pre-percentile snapshots)."""
    keys = [k for k in snapshot_entry if _PERCENTILE_KEY_RE.match(k)]
    return sorted(keys, key=quantile_of_key)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the total."""
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if higher (used when several
        nodes report the same shared resource)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Count/sum/min/max summary of a stream of observations, plus
    percentile estimates.

    Percentiles come from a bounded sample buffer decimated
    *deterministically*: every ``stride``-th observation is kept, and
    whenever the buffer fills the stride doubles and every other kept
    sample is dropped.  No randomness — two runs observing the same
    sequence report identical percentiles (the streaming QoS tests rely
    on this) — and memory stays O(:data:`_SAMPLE_CAP`) on unbounded
    runs.
    """

    __slots__ = (
        "_lock", "count", "total", "vmin", "vmax",
        "_samples", "_stride", "quantiles",
    )

    #: Sample-buffer bound; decimation keeps at most this many values.
    _SAMPLE_CAP = 4096

    def __init__(self, quantiles: Sequence[float] | None = None) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self.quantiles: tuple[float, ...] = tuple(
            DEFAULT_QUANTILES if quantiles is None else quantiles
        )

    def observe(self, value: float) -> None:
        with self._lock:
            if self.count % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self._SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate over the retained samples
        (``q`` in 0–100; 0.0 with no observations)."""
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def snapshot(self) -> dict:
        with self._lock:
            if not self.count:
                out = {
                    "type": "histogram", "count": 0, "sum": 0.0,
                    "min": 0.0, "max": 0.0, "mean": 0.0,
                }
                for q in self.quantiles:
                    out[quantile_key(q)] = 0.0
                return out
            out = {
                "type": "histogram",
                "count": self.count,
                "sum": self.total,
                "min": self.vmin,
                "max": self.vmax,
                "mean": self.total / self.count,
            }
        for q in self.quantiles:
            out[quantile_key(q)] = self.percentile(q)
        return out


class MetricsRegistry:
    """Thread-safe name -> metric registry with get-or-create access.

    Gauges may also be *computed*: :meth:`gauge_fn` registers a callback
    evaluated at snapshot time (e.g. live field bytes), so idle-path
    metrics cost nothing between snapshots.

    ``enabled=False`` marks the registry as a sink the runtime should
    skip entirely: hot-path call sites check the flag once per run (not
    per instance) and bypass their counter/histogram updates, so a
    metrics-off run pays ~zero accounting overhead.  The registry
    itself still works if written to directly — the flag is a contract
    with the callers, not a lock.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}
        self.enabled = enabled

    def _get(self, name: str, cls):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = cls()
                self._metrics[name] = m
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} is {type(m).__name__}, "
                    f"not {cls.__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  quantiles: Sequence[float] | None = None) -> Histogram:
        """Get-or-create a histogram.  ``quantiles`` configures the
        reported percentile set at creation time (an existing
        histogram's set is left alone so concurrent callers agree)."""
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = Histogram(quantiles)
                self._metrics[name] = m
            elif not isinstance(m, Histogram):
                raise TypeError(
                    f"metric {name!r} is {type(m).__name__}, "
                    f"not Histogram"
                )
            return m

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) a computed gauge evaluated at snapshot
        time."""
        with self._lock:
            self._gauge_fns[name] = fn

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._metrics) | set(self._gauge_fns))

    def snapshot(self) -> dict[str, dict]:
        """Typed snapshot of every metric (computed gauges evaluated
        now; a callback that raises reports a 0.0 gauge rather than
        poisoning the snapshot)."""
        with self._lock:
            metrics = dict(self._metrics)
            fns = dict(self._gauge_fns)
        out = {name: m.snapshot() for name, m in metrics.items()}
        for name, fn in fns.items():
            try:
                value = float(fn())
            except Exception:  # noqa: BLE001 - snapshots must not fail
                value = 0.0
            out[name] = {"type": "gauge", "value": value}
        return dict(sorted(out.items()))

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------
def delta(new: Mapping[str, dict], old: Mapping[str, dict]) -> dict:
    """``new - old`` for rate windows: counters and histogram
    count/sum subtract; gauges and histogram min/max keep ``new``'s
    values.  Names only in ``new`` pass through unchanged."""
    out: dict[str, dict] = {}
    for name, s in new.items():
        prev = old.get(name)
        if prev is None or prev.get("type") != s.get("type"):
            out[name] = dict(s)
            continue
        if s["type"] == "counter":
            out[name] = {"type": "counter",
                         "value": s["value"] - prev["value"]}
        elif s["type"] == "histogram":
            count = s["count"] - prev["count"]
            total = s["sum"] - prev["sum"]
            out[name] = {
                "type": "histogram",
                "count": count,
                "sum": total,
                "min": s["min"],
                "max": s["max"],
                "mean": total / count if count else 0.0,
            }
            # Percentiles are not subtractable; the window keeps the
            # new snapshot's estimates (absent in pre-percentile
            # snapshots, so pass through whatever set is present).
            for key in percentile_keys(s):
                out[name][key] = s[key]
        else:
            out[name] = dict(s)
    return out


def merge(*snapshots: Mapping[str, dict]) -> dict:
    """Combine snapshots from several nodes: counters and histogram
    count/sum add, histogram min/max widen, gauges take the max (nodes
    reporting a shared resource must not double-count it)."""
    out: dict[str, dict] = {}
    for snap in snapshots:
        for name, s in snap.items():
            cur = out.get(name)
            if cur is None or cur.get("type") != s.get("type"):
                out[name] = dict(s)
                continue
            if s["type"] == "counter":
                cur["value"] += s["value"]
            elif s["type"] == "gauge":
                cur["value"] = max(cur["value"], s["value"])
            elif s["type"] == "histogram":
                count = cur["count"] + s["count"]
                total = cur["sum"] + s["sum"]
                cur.update(
                    count=count,
                    sum=total,
                    min=min(cur["min"], s["min"]) if count else 0.0,
                    max=max(cur["max"], s["max"]) if count else 0.0,
                    mean=total / count if count else 0.0,
                )
                # Exact percentiles cannot be merged from summaries;
                # take the widest (max) estimate as a conservative
                # upper bound across nodes.  Quantile sets may differ
                # between nodes (old snapshots report fewer keys).
                for key in percentile_keys(s):
                    if key in cur:
                        cur[key] = max(cur[key], s[key])
                    else:
                        cur[key] = s[key]
    return dict(sorted(out.items()))


def flatten(snapshot: Mapping[str, dict]) -> dict[str, float]:
    """Flat ``name -> number`` view: histograms expand to
    ``name.count/.sum/.min/.max/.mean`` entries."""
    out: dict[str, float] = {}
    for name, s in snapshot.items():
        if s["type"] == "histogram":
            keys = ["count", "sum", "min", "max", "mean"]
            keys += percentile_keys(s)  # absent pre-percentile
            for key in keys:
                if key in s:
                    out[f"{name}.{key}"] = s[key]
        else:
            out[name] = s["value"]
    return dict(sorted(out.items()))


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process plus its reaped children,
    in bytes (0 where the ``resource`` module is unavailable).

    The children term covers a process-backend run's worker pool once
    the workers have been joined — sample after shutdown (the metrics
    registry's computed gauges evaluate at snapshot time, which is
    late enough).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int((own + kids) * scale)


def render(snapshot: Mapping[str, dict], title: str | None = None) -> str:
    """Human-readable two-column table of a snapshot."""
    flat = flatten(snapshot)
    width = max((len(n) for n in flat), default=10)
    lines = [title] if title else []
    lines.append(f"{'metric':<{width}}  value")
    for name, value in flat.items():
        if isinstance(value, float) and not value.is_integer():
            text = f"{value:.6g}"
        else:
            text = f"{int(value)}"
        lines.append(f"{name:<{width}}  {text}")
    return "\n".join(lines)
