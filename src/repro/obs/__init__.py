"""Observability: span tracing, metrics and the failure flight recorder.

This subpackage is the measurement substrate the ROADMAP's performance
work rests on.  It is deliberately dependency-free within the project
(imports nothing from :mod:`repro.core` or :mod:`repro.dist`, which
both build on it):

* :mod:`repro.obs.tracing` — per-kernel-instance lifecycle spans and
  scheduler/analyzer/transport/heartbeat/recovery events, exported as
  Chrome trace-event JSON (``--trace out.json``, open in Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges and histograms with
  snapshot/delta/merge semantics (``--metrics`` / ``--metrics-json``);
* :mod:`repro.obs.flight` — a bounded ring of recent events dumped
  automatically when a run dies, next to the chaos repro artifact.
"""

from .flight import FLIGHT_DIR_ENV, dump_flight, flight_dir
from .metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta,
    flatten,
    merge,
    peak_rss_bytes,
    percentile_keys,
    quantile_key,
    quantile_of_key,
    render,
)
from .slo import SloAlert, SloTracker
from .telemetry import (
    Telemetry,
    TelemetryConfig,
    TelemetryExporter,
    render_prometheus,
    validate_prometheus_text,
)
from .timeline import (
    BUCKETS,
    TimelineRecorder,
    attribute_spans,
    stage_summary,
)
from .tracing import (
    NULL_TRACER,
    TraceSchemaError,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "BUCKETS",
    "Counter",
    "DEFAULT_QUANTILES",
    "FLIGHT_DIR_ENV",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "SloAlert",
    "SloTracker",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryExporter",
    "TimelineRecorder",
    "TraceSchemaError",
    "Tracer",
    "attribute_spans",
    "delta",
    "dump_flight",
    "flatten",
    "flight_dir",
    "merge",
    "peak_rss_bytes",
    "percentile_keys",
    "quantile_key",
    "quantile_of_key",
    "render",
    "render_prometheus",
    "stage_summary",
    "validate_chrome_trace",
    "validate_prometheus_text",
]
