"""Failure flight recorder: dump the recent timeline next to the crash.

A fault-tolerant cluster run keeps a :class:`~repro.obs.tracing.Tracer`
in ``ring`` mode — a bounded window of the most recent spans and events
(heartbeats, failure detections, fencing, replay, re-execution) at
near-zero cost.  When the run dies with
:class:`~repro.core.errors.NodeFailureError` or
:class:`~repro.core.errors.StallError` (or a chaos test fails), the ring
is dumped as a JSON artifact alongside the existing fault-schedule
repro JSON, so one failed seed yields both the *inputs* (the schedule)
and the *timeline* (what the runtime actually did).

The dump is itself a valid Chrome trace-event document (the extra
``flight`` envelope key is ignored by viewers), so it loads straight
into Perfetto.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

from .tracing import Tracer

__all__ = ["FLIGHT_DIR_ENV", "dump_flight", "flight_dir"]

#: Environment variable selecting the dump directory; falls back to the
#: chaos-repro artifact directory, then the current directory.
FLIGHT_DIR_ENV = "P2G_FLIGHT_DIR"

_seq = itertools.count(1)


def flight_dir() -> Path:
    """The directory flight recordings land in."""
    for env in (FLIGHT_DIR_ENV, "CHAOS_REPRO_DIR"):
        value = os.environ.get(env)
        if value:
            return Path(value)
    return Path(".")


def dump_flight(
    tracer: Tracer,
    reason: str,
    context: dict | None = None,
    directory: "Path | str | None" = None,
) -> Path | None:
    """Write the tracer's ring window as a flight-recorder artifact.

    Returns the path written, or ``None`` when the tracer is disabled
    or holds no events (nothing to record).  Never raises: a failing
    dump must not mask the error that triggered it.
    """
    if not tracer.enabled:
        return None
    events = tracer.ring_events()
    if not any(e.get("ph") != "M" for e in events):
        return None
    try:
        out_dir = Path(directory) if directory is not None else flight_dir()
        out_dir.mkdir(parents=True, exist_ok=True)
        name = f"p2g-flight-{os.getpid()}-{next(_seq)}.json"
        path = out_dir / name
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "flight": {
                "reason": reason,
                "context": context or {},
                "ring_dropped": tracer.ring_dropped,
                "unix_time": time.time(),
            },
        }
        path.write_text(json.dumps(doc) + "\n")
        return path
    except OSError:
        return None
