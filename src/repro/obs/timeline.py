"""Per-frame stage timelines and critical-path latency attribution.

PR 7's multi-tenant runtime can say *that* a frame took 179 ms
end-to-end; this module says *where* those milliseconds went.  A
:class:`TimelineRecorder` collects, per ``(session, age)`` frame,
wall-clock spans stamped at the existing hook points — credit-gate
admission in the stream driver, ready-queue wait in the worker loops,
kernel bodies and store commits in the execution paths, IPC round
trips in the process backend, and transport hops in the cluster bus —
and, when the sink reports the frame complete, sweeps them into an
exact partition of the frame's end-to-end window:

``gate | queue | compute | ipc | transport | store | other``

The sweep is a *critical-path* attribution, not a duration sum: spans
from parallel kernel instances overlap, so adding raw durations would
over-count.  Instead every instant of ``[frame start, sink emit]`` is
charged to exactly one bucket — the highest-priority span covering it
(compute beats store beats IPC beats transport beats gate beats
queue), with uncovered time falling into ``other``.  By construction
the bucket sums equal the end-to-end window exactly, so the per-stage
report reconciles with the driver's ``latency_ms`` histogram.

Zero-cost-off contract: the runtime binds its timeline reference once
per run (``tl if tl is not None and tl.enabled else None``) and every
hot-path call site is guarded by a single ``is not None`` test —
telemetry off adds no allocations and no calls per instance.  Even
when enabled, :meth:`TimelineRecorder.span` drops spans for frames no
driver has :meth:`~TimelineRecorder.begin`-ed, so batch (non-stream)
runs cannot grow the recorder.
"""

from __future__ import annotations

import threading
from typing import Mapping

from .metrics import Histogram

__all__ = [
    "BUCKETS",
    "TimelineRecorder",
    "attribute_spans",
    "stage_summary",
]

#: Attribution buckets, highest critical-path priority first.  When
#: spans overlap, an instant belongs to the earliest bucket here that
#: covers it: actual kernel compute dominates, store commits beat the
#: IPC round trip that contains them, transport hops beat the gate
#: wait they overlap, and queue wait is charged only when nothing else
#: explains the time.  ``other`` is the uncovered remainder.
BUCKETS: tuple[str, ...] = (
    "compute", "store", "ipc", "transport", "gate", "queue", "other",
)

_PRIORITY = {name: i for i, name in enumerate(BUCKETS)}


def attribute_spans(
    spans: list[tuple[str, float, float]],
    t_start: float,
    t_end: float,
) -> dict[str, float]:
    """Partition ``[t_start, t_end]`` (seconds) across buckets.

    ``spans`` is a list of ``(bucket, t0, t1)`` wall-clock intervals;
    they may overlap and extend past the window (they are clipped).
    Returns ``{bucket: seconds}`` over all :data:`BUCKETS`; the values
    sum to ``t_end - t_start`` exactly (uncovered time -> ``other``).
    """
    out = dict.fromkeys(BUCKETS, 0.0)
    if t_end <= t_start:
        return out
    clipped = []
    points = {t_start, t_end}
    for bucket, s, e in spans:
        s, e = max(s, t_start), min(e, t_end)
        if e <= s:
            continue
        clipped.append((_PRIORITY.get(bucket, len(BUCKETS)), s, e))
        points.add(s)
        points.add(e)
    edges = sorted(points)
    for lo, hi in zip(edges, edges[1:]):
        mid = (lo + hi) / 2.0
        best = None
        for prio, s, e in clipped:
            if s <= mid < e and (best is None or prio < best):
                best = prio
        # Unknown bucket names rank below every known one and have no
        # accumulator of their own: their time lands in "other".
        bucket = (
            BUCKETS[best]
            if best is not None and best < len(BUCKETS) else "other"
        )
        out[bucket] += hi - lo
    return out


class _Frame:
    __slots__ = ("t_start", "spans")

    def __init__(self, t_start: float) -> None:
        self.t_start = t_start
        self.spans: list[tuple[str, float, float]] = []


class TimelineRecorder:
    """Collects per-frame stage spans and rolls up per-session,
    per-bucket latency histograms.

    Keys are ``(session, age)``; the single-stream runtime uses
    ``session == ""``.  Drivers call :meth:`begin` when a frame is
    offered, instrumented layers call :meth:`span` as work happens,
    and the driver calls :meth:`finish` (sink emit) or :meth:`discard`
    (shed / retired without completing).  All methods are thread-safe
    and cheap: span append is one lock + dict probe + list append.
    """

    #: Defensive bound on concurrently tracked frames: a driver that
    #: never finishes frames (or a hook begun outside a stream run)
    #: must not grow memory without bound.  Oldest frames are dropped.
    MAX_IN_FLIGHT = 4096

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._frames: dict[tuple[str, int], _Frame] = {}
        #: session -> bucket -> Histogram of milliseconds.
        self._stages: dict[str, dict[str, Histogram]] = {}
        #: session -> frames attributed.
        self._counts: dict[str, int] = {}

    # -- recording hooks ------------------------------------------------
    def begin(self, session: str, age: int, t_start: float) -> None:
        """Start tracking frame ``(session, age)`` with its end-to-end
        window opening at wall-clock ``t_start`` (perf-counter
        seconds)."""
        if not self.enabled:
            return
        with self._lock:
            if len(self._frames) >= self.MAX_IN_FLIGHT:
                self._frames.pop(next(iter(self._frames)), None)
            self._frames[(session, age)] = _Frame(t_start)

    def span(self, session: str, age: int, bucket: str,
             t0: float, t1: float) -> None:
        """Record that ``bucket`` work for the frame covered
        ``[t0, t1]``.  Silently ignored for frames not begun — this is
        what keeps non-stream runs and already-finished frames free."""
        if not self.enabled or t1 <= t0:
            return
        with self._lock:
            frame = self._frames.get((session, age))
            if frame is not None:
                frame.spans.append((bucket, t0, t1))

    def discard(self, session: str, age: int) -> None:
        """Drop a frame that will never complete (shed or retired)."""
        if not self.enabled:
            return
        with self._lock:
            self._frames.pop((session, age), None)

    def finish(self, session: str, age: int,
               t_end: float) -> dict[str, float] | None:
        """Close the frame at sink-emit time ``t_end``, attribute its
        window and fold the result into the session's rollups.
        Returns the per-bucket breakdown in **milliseconds** (``None``
        if the frame was never begun)."""
        if not self.enabled:
            return None
        with self._lock:
            frame = self._frames.pop((session, age), None)
        if frame is None:
            return None
        parts = attribute_spans(frame.spans, frame.t_start, t_end)
        breakdown = {b: v * 1000.0 for b, v in parts.items()}
        with self._lock:
            stages = self._stages.setdefault(session, {})
            for bucket, ms in breakdown.items():
                hist = stages.get(bucket)
                if hist is None:
                    hist = stages[bucket] = Histogram()
                hist.observe(ms)
            self._counts[session] = self._counts.get(session, 0) + 1
        return breakdown

    # -- reporting ------------------------------------------------------
    def in_flight(self) -> int:
        with self._lock:
            return len(self._frames)

    def frames(self, session: str = "") -> int:
        """Frames attributed for ``session`` so far."""
        with self._lock:
            return self._counts.get(session, 0)

    def sessions(self) -> list[str]:
        with self._lock:
            return sorted(self._stages)

    def stages(self, session: str = "") -> dict[str, dict]:
        """Per-bucket latency summaries for one session:
        ``{bucket: {count, mean, p50, p90, p99, p999, ...}}`` in
        milliseconds (histogram snapshots minus the ``type`` tag)."""
        with self._lock:
            stages = dict(self._stages.get(session, {}))
        out: dict[str, dict] = {}
        for bucket in BUCKETS:
            hist = stages.get(bucket)
            if hist is None:
                continue
            snap = hist.snapshot()
            snap.pop("type", None)
            out[bucket] = snap
        return out

    def as_dict(self) -> dict:
        """All sessions' stage summaries (JSON-ready)."""
        return {
            "frames": dict(sorted(self._counts.items())),
            "stages": {s: self.stages(s) for s in self.sessions()},
        }

    def feed_registry(self, metrics, prefix: str = "stream") -> None:
        """Publish the rollups into a :class:`MetricsRegistry` so the
        live exporter can scrape per-stage latency, as gauges named
        ``<prefix>[.<session>].stage.<bucket>_ms.<stat>``.  Quantile
        summaries cannot be re-observed into a histogram without
        distorting them, so each stat is exported as a gauge.  Called
        from snapshot/report paths, never the hot path.
        """
        for session in self.sessions():
            base = f"{prefix}.{session}" if session else prefix
            for bucket, snap in self.stages(session).items():
                for key, value in snap.items():
                    if key in ("count", "sum"):
                        continue
                    name = f"{base}.stage.{bucket}_ms.{key}"
                    metrics.gauge(name).set(float(value))


def stage_summary(stages: Mapping[str, Mapping[str, float]]) -> str:
    """One human line per bucket: ``compute p50 3.1ms p99 7.9ms``."""
    lines = []
    for bucket in BUCKETS:
        snap = stages.get(bucket)
        # finish() folds a (possibly zero) observation into every
        # bucket so means reconcile; render only buckets that ever
        # accumulated time.
        if not snap or not snap.get("count") or not snap.get("sum"):
            continue
        lines.append(
            f"{bucket:<9} p50 {snap.get('p50', 0.0):8.2f}ms"
            f"  p99 {snap.get('p99', 0.0):8.2f}ms"
            f"  mean {snap.get('mean', 0.0):8.2f}ms"
        )
    return "\n".join(lines)
