"""Span tracing in Chrome trace-event format.

The paper's evaluation is built on *when things happened*: dispatch
versus kernel time per instance (tables II–III), scaling knees where the
serial analyzer saturates (figures 9–10), and — in the fault-tolerant
cluster — the detection→replacement window.  The aggregated
:class:`~repro.core.instrumentation.KernelStats` keep the totals; this
module keeps the *timeline*.

A :class:`Tracer` records spans (complete events) and instants for every
kernel-instance lifecycle phase, plus analyzer, scheduler, transport,
heartbeat, recovery and online-adaptation activity (a ``replan`` span in
the ``adapt`` category marks each mid-run LLS re-binding, carrying the
swap epoch and the applied decisions), and exports them as Chrome
trace-event JSON — the ``{"traceEvents": [...]}`` envelope that loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Lanes map
P2G concepts onto the viewer's process/thread rows: one *process* row
per execution node (plus ``master`` for the control plane), one *thread*
row per worker / analyzer / heartbeat / recovery actor.

Cost model — the hook layer must be near-zero when unused:

* ``off`` — the shared :data:`NULL_TRACER`; every method returns
  immediately after one attribute test, and hot call sites additionally
  guard with ``if tracer.enabled:`` so argument construction is skipped
  entirely;
* ``ring`` — only the last ``ring`` events are retained in a bounded
  deque: the **flight recorder** mode, cheap enough to leave armed for
  every fault-tolerant cluster run;
* ``full`` — every event is retained for ``--trace`` export (the ring
  is kept as well, so a failing traced run still dumps a flight
  recording).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = [
    "NULL_TRACER",
    "TraceSchemaError",
    "Tracer",
    "validate_chrome_trace",
]

#: Instant-event scopes accepted by the trace-event format.
_INSTANT_SCOPES = ("t", "p", "g")


class TraceSchemaError(ValueError):
    """A trace document violated the Chrome trace-event schema."""


class Tracer:
    """Thread-safe recorder of trace events with named lanes.

    Parameters
    ----------
    mode:
        ``"off"`` (no-op), ``"ring"`` (flight-recorder: bounded ring
        only) or ``"full"`` (retain everything + the ring).
    ring:
        Ring-buffer capacity — the flight recorder's horizon.
    clock:
        Injectable time source (defaults to ``time.perf_counter``); the
        tracer's origin is its value at construction, so timestamps are
        microseconds since the tracer was created.
    """

    MODES = ("off", "ring", "full")

    def __init__(
        self,
        mode: str = "full",
        ring: int = 4096,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"unknown tracer mode {mode!r}; expected one of {self.MODES}"
            )
        self.mode = mode
        self.enabled = mode != "off"
        self._clock = clock if clock is not None else time.perf_counter
        self._origin = self._clock()
        self._lock = threading.Lock()
        self._events: list[dict] | None = [] if mode == "full" else None
        self._ring: deque | None = (
            deque(maxlen=max(1, ring)) if self.enabled else None
        )
        self.ring_dropped = 0  #: events that fell off the ring buffer
        self._meta: list[dict] = []  #: process/thread-name metadata events
        self._pids: dict[str, int] = {}
        self._lanes: dict[tuple[str, str], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Time base
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current clock value (same domain as the ``t0``/``t1`` span
        arguments)."""
        return self._clock()

    def _ts_us(self, t: float) -> float:
        return (t - self._origin) * 1e6

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def lane(self, process: str, thread: str) -> tuple[int, int]:
        """The (pid, tid) pair for a named lane, allocating it (and its
        viewer metadata events) on first use."""
        key = (process, thread)
        with self._lock:
            ids = self._lanes.get(key)
            if ids is not None:
                return ids
            pid = self._pids.get(process)
            if pid is None:
                pid = len(self._pids) + 1
                self._pids[process] = pid
                self._meta.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": process},
                    }
                )
            tid = 1 + sum(1 for p, _t in self._lanes if p == process)
            self._lanes[key] = (pid, tid)
            self._meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
            return (pid, tid)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, ev: dict) -> None:
        with self._lock:
            if self._events is not None:
                self._events.append(ev)
            ring = self._ring
            if ring is not None:
                if len(ring) == ring.maxlen:
                    self.ring_dropped += 1
                ring.append(ev)

    def complete(
        self,
        name: str,
        cat: str,
        process: str,
        thread: str,
        t0: float,
        t1: float,
        args: dict | None = None,
    ) -> None:
        """Record a complete ("X") span from clock value ``t0`` to
        ``t1`` in the (process, thread) lane."""
        if not self.enabled:
            return
        pid, tid = self.lane(process, thread)
        ev = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": self._ts_us(t0),
            "dur": max(0.0, self._ts_us(t1) - self._ts_us(t0)),
            "pid": pid,
            "tid": tid,
        }
        if args:
            ev["args"] = args
        self._record(ev)

    def instant(
        self,
        name: str,
        cat: str,
        process: str,
        thread: str,
        args: dict | None = None,
        ts: float | None = None,
        scope: str = "t",
    ) -> None:
        """Record an instant ("i") event; ``ts`` defaults to now."""
        if not self.enabled:
            return
        pid, tid = self.lane(process, thread)
        ev = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": self._ts_us(self._clock() if ts is None else ts),
            "pid": pid,
            "tid": tid,
            "s": scope,
        }
        if args:
            ev["args"] = args
        self._record(ev)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        """Snapshot of every retained event (metadata first).  In
        ``ring`` mode this is the ring's current window."""
        with self._lock:
            body = (
                list(self._events)
                if self._events is not None
                else list(self._ring or ())
            )
            return list(self._meta) + body

    def ring_events(self) -> list[dict]:
        """Snapshot of the flight-recorder ring (metadata first)."""
        with self._lock:
            return list(self._meta) + list(self._ring or ())

    def event_count(self) -> int:
        """Number of retained non-metadata events."""
        with self._lock:
            if self._events is not None:
                return len(self._events)
            return len(self._ring or ())

    def chrome(self) -> dict:
        """The Chrome trace-event JSON document (a dict)."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> int:
        """Write the trace-event JSON to ``path``; returns the number of
        events written (excluding lane metadata)."""
        doc = self.chrome()
        with open(path, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        return sum(1 for e in doc["traceEvents"] if e.get("ph") != "M")


#: The disabled tracer every component defaults to: one shared no-op.
NULL_TRACER = Tracer(mode="off")


# ----------------------------------------------------------------------
# Schema validation (used by the tier-1 tests and the CI smoke step)
# ----------------------------------------------------------------------
def validate_chrome_trace(doc: Any) -> int:
    """Validate a parsed trace document against the trace-event schema.

    Checks the subset of the format this tracer emits (the subset
    Perfetto requires to load a file): the ``traceEvents`` envelope, and
    per event the phase-appropriate required keys and value types.
    Returns the number of non-metadata events; raises
    :class:`TraceSchemaError` on any violation.
    """
    if not isinstance(doc, dict):
        raise TraceSchemaError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TraceSchemaError("'traceEvents' must be a list")
    n = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TraceSchemaError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            raise TraceSchemaError(f"{where}: missing phase 'ph'")
        if not isinstance(ev.get("name"), str):
            raise TraceSchemaError(f"{where}: missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise TraceSchemaError(f"{where}: {key!r} must be an int")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise TraceSchemaError(f"{where}: 'args' must be an object")
        if ph == "M":
            if ev["name"] not in ("process_name", "thread_name",
                                  "process_labels", "process_sort_index",
                                  "thread_sort_index"):
                raise TraceSchemaError(
                    f"{where}: unknown metadata event {ev['name']!r}"
                )
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise TraceSchemaError(f"{where}: 'ts' must be a number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceSchemaError(
                    f"{where}: complete event needs numeric 'dur' >= 0"
                )
        elif ph == "i":
            if ev.get("s", "t") not in _INSTANT_SCOPES:
                raise TraceSchemaError(
                    f"{where}: instant scope must be one of "
                    f"{_INSTANT_SCOPES}"
                )
        elif ph not in ("B", "E", "C", "b", "e", "n"):
            raise TraceSchemaError(f"{where}: unsupported phase {ph!r}")
        n += 1
    return n
