"""Per-tenant SLO tracking: deadline-miss burn rate over a live window.

Each streaming session carries a ``deadline_ms`` budget and a QoS tier
(gold / best-effort).  The driver already counts deadline misses; what
an operator needs while the run is *alive* is whether a tenant's error
budget is burning faster than it can afford — the SRE burn-rate
formulation: if the SLO allows a ``target`` fraction of frames to miss
(the error budget), then

    ``burn_rate = (window miss fraction) / target``

A burn rate of 1.0 spends the budget exactly; ``>= burn_alert``
(default 2x) over a sliding window with enough samples fires the
registered callbacks once per cooldown.  The default wiring (see
:mod:`repro.obs.telemetry`) logs the alert, drops a tracer instant and
dumps the flight-recorder ring annotated with the offending session so
a post-mortem starts from the exact moment the tier degraded.

The tracker is intentionally clock-agnostic: callers may pass their
own timestamps (the stream driver passes its pacing timer) and tests
drive it with synthetic time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "SloAlert",
    "SloTracker",
]


@dataclass
class SloAlert:
    """One burn-rate alert: the session, its tier, and the window
    evidence that fired it."""

    session: str
    tier: str
    burn_rate: float
    window_misses: int
    window_frames: int
    deadline_ms: float
    target: float
    t: float

    def as_dict(self) -> dict:
        return {
            "session": self.session,
            "tier": self.tier,
            "burn_rate": round(self.burn_rate, 3),
            "window_misses": self.window_misses,
            "window_frames": self.window_frames,
            "deadline_ms": self.deadline_ms,
            "target": self.target,
            "t": round(self.t, 3),
        }


@dataclass
class _SessionSlo:
    tier: str
    deadline_ms: float
    target: float
    window: list = field(default_factory=list)  # [(t, missed), ...]
    frames: int = 0
    misses: int = 0
    last_alert_t: float = float("-inf")
    alerts: list = field(default_factory=list)


class SloTracker:
    """Tracks per-session deadline misses and fires burn-rate alerts.

    ``window_s`` bounds the sliding evidence window, ``burn_alert`` is
    the burn-rate threshold, ``min_frames`` suppresses alerts until the
    window holds enough samples to mean something, and ``cooldown_s``
    rate-limits alerts per session.  ``observe``/``observe_shed`` are
    the per-frame entry points (cheap: one lock, one append, one
    prune); shed frames count as misses — a frame the policy dropped to
    protect others still failed *this* tenant's SLO.
    """

    def __init__(
        self,
        *,
        window_s: float = 5.0,
        burn_alert: float = 2.0,
        min_frames: int = 10,
        cooldown_s: float = 5.0,
        default_target: float = 0.05,
    ) -> None:
        self.window_s = window_s
        self.burn_alert = burn_alert
        self.min_frames = min_frames
        self.cooldown_s = cooldown_s
        self.default_target = default_target
        self._lock = threading.Lock()
        self._sessions: dict[str, _SessionSlo] = {}
        self._callbacks: list[Callable[[SloAlert], None]] = []

    def configure(
        self,
        session: str,
        *,
        deadline_ms: float,
        tier: str = "best-effort",
        target: float | None = None,
    ) -> None:
        """Declare a session's SLO: its frame deadline and the allowed
        miss fraction (error budget, default ``default_target``)."""
        with self._lock:
            self._sessions[session] = _SessionSlo(
                tier=tier,
                deadline_ms=float(deadline_ms),
                target=self.default_target if target is None else target,
            )

    def on_alert(self, callback: Callable[[SloAlert], None]) -> None:
        with self._lock:
            self._callbacks.append(callback)

    # -- per-frame entry points ----------------------------------------
    def observe(
        self,
        session: str,
        latency_ms: float,
        *,
        missed: bool | None = None,
        t: float | None = None,
    ) -> SloAlert | None:
        """Record one completed frame; returns the alert if this
        observation fired one."""
        state = self._sessions.get(session)
        if state is None:
            return None
        if missed is None:
            missed = (state.deadline_ms > 0
                      and latency_ms > state.deadline_ms)
        return self._record(session, state, bool(missed), t)

    def observe_shed(self, session: str,
                     t: float | None = None) -> SloAlert | None:
        """Record a shed frame (always an SLO miss for this tenant)."""
        state = self._sessions.get(session)
        if state is None:
            return None
        return self._record(session, state, True, t)

    def _record(self, session: str, state: _SessionSlo,
                missed: bool, t: float | None) -> SloAlert | None:
        now = time.monotonic() if t is None else t
        alert = None
        with self._lock:
            state.frames += 1
            state.misses += int(missed)
            win = state.window
            win.append((now, missed))
            horizon = now - self.window_s
            while win and win[0][0] < horizon:
                win.pop(0)
            n = len(win)
            miss_n = sum(1 for _, m in win if m)
            burn = ((miss_n / n) / state.target) if n else 0.0
            if (
                n >= self.min_frames
                and burn >= self.burn_alert
                and now - state.last_alert_t >= self.cooldown_s
            ):
                state.last_alert_t = now
                alert = SloAlert(
                    session=session, tier=state.tier, burn_rate=burn,
                    window_misses=miss_n, window_frames=n,
                    deadline_ms=state.deadline_ms, target=state.target,
                    t=now,
                )
                state.alerts.append(alert)
            callbacks = list(self._callbacks) if alert else []
        for cb in callbacks:
            try:
                cb(alert)
            except Exception:  # noqa: BLE001 - alerts must not kill a run
                pass
        return alert

    # -- reporting ------------------------------------------------------
    def burn_rate(self, session: str) -> float:
        """Current window burn rate (0.0 for unknown sessions)."""
        state = self._sessions.get(session)
        if state is None:
            return 0.0
        with self._lock:
            n = len(state.window)
            if not n:
                return 0.0
            miss_n = sum(1 for _, m in state.window if m)
            return (miss_n / n) / state.target

    def alerts(self, session: str | None = None) -> list[SloAlert]:
        with self._lock:
            if session is not None:
                state = self._sessions.get(session)
                return list(state.alerts) if state else []
            out: list[SloAlert] = []
            for state in self._sessions.values():
                out.extend(state.alerts)
            out.sort(key=lambda a: a.t)
            return out

    def session_dict(self, session: str) -> dict | None:
        """JSON-ready summary for one session (``None`` if unknown)."""
        state = self._sessions.get(session)
        if state is None:
            return None
        with self._lock:
            return {
                "tier": state.tier,
                "deadline_ms": state.deadline_ms,
                "target": state.target,
                "frames": state.frames,
                "misses": state.misses,
                "alerts": len(state.alerts),
            }

    def as_dict(self) -> dict:
        """All sessions: config, cumulative counts, burn rate, alerts."""
        with self._lock:
            names = sorted(self._sessions)
        out: dict[str, dict] = {"sessions": {}, "alerts": []}
        for name in names:
            entry = self.session_dict(name)
            if entry is None:
                continue
            entry["burn_rate"] = round(self.burn_rate(name), 3)
            out["sessions"][name] = entry
        out["alerts"] = [a.as_dict() for a in self.alerts()]
        return out
