"""Abstract syntax of the kernel language.

Node names follow figure 5's vocabulary: a program is a list of field,
timer and kernel declarations; a kernel declaration is a list of
age/index/local declarations, fetch/store statements, options and native
blocks, in source order (order matters for codegen: native blocks run in
the order written, with locals created first).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field


@dataclass(frozen=True)
class AgeRef:
    """Age expression in a fetch/store: ``a``, ``a+1``, ``a-2`` or a
    literal integer."""

    var: str | None  # None = literal
    offset: int = 0
    literal: int | None = None
    line: int = 0

    @staticmethod
    def of_var(name: str, offset: int = 0, line: int = 0) -> "AgeRef":
        """Age reference through the kernel's age variable."""
        return AgeRef(var=name, offset=offset, line=line)

    @staticmethod
    def of_literal(value: int, line: int = 0) -> "AgeRef":
        """Literal age reference."""
        return AgeRef(var=None, literal=value, line=line)

    def __str__(self) -> str:
        if self.var is None:
            return str(self.literal)
        if self.offset == 0:
            return self.var
        sign = "+" if self.offset > 0 else "-"
        return f"{self.var}{sign}{abs(self.offset)}"


@dataclass(frozen=True)
class IndexRef:
    """One ``[...]`` index item: a variable (optionally blocked,
    ``[x:8]``, optionally offset, ``[x-1]`` — a clamped stencil access)
    or ``[:]`` for the whole dimension."""

    var: str | None  # None = all
    block: int = 1
    offset: int = 0
    line: int = 0

    @property
    def is_all(self) -> bool:
        """Whether this is the whole-dimension item (``[:]``)."""
        return self.var is None

    def __str__(self) -> str:
        if self.is_all:
            return ":"
        out = self.var
        if self.offset:
            out += f"+{self.offset}" if self.offset > 0 else str(self.offset)
        if self.block != 1:
            out += f":{self.block}"
        return out


@dataclass(frozen=True)
class FieldDecl:
    """``int32[][] frame age;`` — dtype, ndim = number of [] pairs.

    Dimensions may carry declared sizes (``int64[4][8] partial age;``),
    fixing the field's extent up front; unsized dimensions grow by
    implicit resizing.  Mixing is rejected by semantic analysis because
    a partially declared extent has the same whole-field ambiguity as an
    undeclared one.
    """

    name: str
    dtype: str
    ndim: int
    aging: bool
    shape: tuple[int | None, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class TimerDecl:
    """``timer t1;``"""

    name: str
    line: int = 0


@dataclass(frozen=True)
class AgeDecl:
    """``age a;``"""

    name: str
    line: int = 0


@dataclass(frozen=True)
class IndexDecl:
    """``index x;``"""

    name: str
    line: int = 0


@dataclass(frozen=True)
class LocalDecl:
    """``local int32[] values;`` (ndim 0 = scalar local)."""

    name: str
    dtype: str
    ndim: int
    line: int = 0


@dataclass(frozen=True)
class FetchStmt:
    """``fetch value = m_data(a)[x];``"""

    param: str
    field: str
    age: AgeRef
    index: tuple[IndexRef, ...]
    line: int = 0


@dataclass(frozen=True)
class StoreStmt:
    """``store p_data(a)[x] = value;``"""

    field: str
    age: AgeRef
    index: tuple[IndexRef, ...]
    source: str
    line: int = 0


@dataclass(frozen=True)
class NativeBlock:
    """``%{ ... %}`` — raw Python code."""

    code: str
    line: int = 0


@dataclass(frozen=True)
class OptionStmt:
    """``age_limit 9;`` or ``domain x = 100;`` — runtime bounds that have
    no figure-5 counterpart but are needed to express the paper's
    iteration-bounded evaluation runs inside the language."""

    name: str  # "age_limit" | "domain"
    key: str | None
    value: int
    line: int = 0


@dataclass
class KernelDecl:
    """One kernel definition in source order."""

    name: str
    items: list = dc_field(default_factory=list)
    line: int = 0

    def ages(self) -> list[AgeDecl]:
        """The kernel's age declarations, in source order."""
        return [i for i in self.items if isinstance(i, AgeDecl)]

    def indices(self) -> list[IndexDecl]:
        """The kernel's index declarations, in source order."""
        return [i for i in self.items if isinstance(i, IndexDecl)]

    def locals(self) -> list[LocalDecl]:
        """The kernel's local declarations, in source order."""
        return [i for i in self.items if isinstance(i, LocalDecl)]

    def fetches(self) -> list[FetchStmt]:
        """The kernel's fetch statements, in source order."""
        return [i for i in self.items if isinstance(i, FetchStmt)]

    def stores(self) -> list[StoreStmt]:
        """The kernel's store statements, in source order."""
        return [i for i in self.items if isinstance(i, StoreStmt)]

    def natives(self) -> list[NativeBlock]:
        """The kernel's native blocks, in source order."""
        return [i for i in self.items if isinstance(i, NativeBlock)]

    def options(self) -> list[OptionStmt]:
        """The kernel's option statements, in source order."""
        return [i for i in self.items if isinstance(i, OptionStmt)]


@dataclass
class ProgramDecl:
    """Top-level AST: all declarations in source order."""

    fields: list[FieldDecl] = dc_field(default_factory=list)
    timers: list[TimerDecl] = dc_field(default_factory=list)
    kernels: list[KernelDecl] = dc_field(default_factory=list)
