"""The kernel-language compiler driver.

Mirrors the paper's pipeline (section VI-A): the P2G compiler parses the
kernel language, validates it, and hands the native blocks to the host
tool-chain — a C++ compiler there, the Python runtime here — producing a
runnable program.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from ..core import Program
from .codegen import generate_program
from .parser import parse_program
from .sema import analyze

__all__ = ["compile_program", "compile_file"]


def compile_program(
    source: str,
    bindings: Mapping[str, Any] | None = None,
    name: str = "program",
) -> Program:
    """Compile kernel-language source text into a runnable
    :class:`repro.core.Program`.

    Parameters
    ----------
    source:
        Kernel-language text (see :mod:`repro.lang` for the grammar).
    bindings:
        Host objects made visible inside native blocks (e.g. an output
        list the ``print`` kernel appends to).
    name:
        Program name used in graphs and logs.

    Raises
    ------
    LexError / ParseError / SemanticError
        With source line information, for malformed programs.
    """
    ast = parse_program(source)
    analyze(ast)
    return generate_program(ast, bindings, name)


def compile_file(
    path: str | Path,
    bindings: Mapping[str, Any] | None = None,
) -> Program:
    """Compile a ``.p2g`` source file (program name = file stem)."""
    p = Path(path)
    return compile_program(p.read_text(), bindings, name=p.stem)
