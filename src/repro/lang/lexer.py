"""Kernel-language lexer.

Hand-written scanner producing :class:`~repro.lang.tokens.Token` objects.
Two non-obvious rules:

* ``%{ ... %}`` native blocks are captured raw (their contents are
  Python in this reproduction and must not be tokenized);
* ``//`` and ``#`` start line comments (the paper's examples use C-style
  comments; ``#`` is a courtesy for Python-minded programs).
"""

from __future__ import annotations

from ..core.errors import LexError
from .tokens import KEYWORDS, TYPE_NAMES, Token, TokenType

_SINGLE = {
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ":": TokenType.COLON,
    ";": TokenType.SEMI,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    ",": TokenType.COMMA,
}


class Lexer:
    """Tokenizes one source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, msg: str) -> LexError:
        return LexError(msg, self.line, self.column)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def tokens(self) -> list[Token]:
        """Scan the whole source; returns tokens ending with EOF."""
        out: list[Token] = []
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "#":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "%" and self._peek(1) == "{":
                out.append(self._native_block())
                continue
            if ch.isdigit():
                out.append(self._number())
                continue
            if ch.isalpha() or ch == "_":
                out.append(self._word())
                continue
            if ch in _SINGLE:
                out.append(Token(_SINGLE[ch], ch, self.line, self.column))
                self._advance()
                continue
            raise self._error(f"unexpected character {ch!r}")
        out.append(Token(TokenType.EOF, "", self.line, self.column))
        return out

    # ------------------------------------------------------------------
    def _native_block(self) -> Token:
        line, column = self.line, self.column
        self._advance(2)  # consume %{
        start = self.pos
        while self.pos < len(self.source):
            if self._peek() == "%" and self._peek(1) == "}":
                code = self.source[start : self.pos]
                self._advance(2)
                return Token(TokenType.NATIVE, code, line, column)
            self._advance()
        raise LexError("unterminated native block (%{ without %})",
                       line, column)

    def _number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and self._peek().isdigit():
            self._advance()
        return Token(TokenType.INT, self.source[start : self.pos],
                     line, column)

    def _word(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        word = self.source[start : self.pos]
        if word in TYPE_NAMES:
            return Token(TokenType.TYPE, word, line, column)
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, line, column)
        return Token(TokenType.IDENT, word, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    return Lexer(source).tokens()
