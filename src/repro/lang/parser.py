"""Recursive-descent parser for the kernel language.

Grammar (see :mod:`repro.lang` for an example program)::

    program      := (field_def | timer_def | kernel_def)*
    field_def    := TYPE brackets IDENT ["age"] ";"
    brackets     := ("[" "]")+
    timer_def    := "timer" IDENT ";"
    kernel_def   := IDENT ":" item*
    item         := "age" IDENT ";"
                  | "index" IDENT ";"
                  | "local" TYPE brackets? IDENT ";"
                  | "fetch" IDENT "=" field_ref ";"
                  | "store" field_ref "=" IDENT ";"
                  | "age_limit" INT ";"
                  | "domain" IDENT "=" INT ";"
                  | NATIVE
    field_ref    := IDENT "(" age_expr ")" index_suffix?
    age_expr     := IDENT [("+"|"-") INT] | INT
    index_suffix := ("[" index_item "]")+
    index_item   := IDENT [":" INT] | ":"

A kernel body extends until the next kernel header (``IDENT ":"``) or
end of file — the language has no braces, matching figure 5's layout.
"""

from __future__ import annotations

from ..core.errors import ParseError
from .ast import (
    AgeDecl,
    AgeRef,
    FieldDecl,
    FetchStmt,
    IndexDecl,
    IndexRef,
    KernelDecl,
    LocalDecl,
    NativeBlock,
    OptionStmt,
    ProgramDecl,
    StoreStmt,
    TimerDecl,
)
from .lexer import tokenize
from .tokens import Token, TokenType


class Parser:
    """Recursive-descent parser over a token list."""
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _expect(self, ttype: TokenType, what: str) -> Token:
        tok = self._peek()
        if tok.type is not ttype:
            raise ParseError(
                f"expected {what}, found {tok.value!r}", tok.line, tok.column
            )
        return self._next()

    def _expect_keyword(self, word: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(word):
            raise ParseError(
                f"expected {word!r}, found {tok.value!r}",
                tok.line, tok.column,
            )
        return self._next()

    # ------------------------------------------------------------------
    def parse(self) -> ProgramDecl:
        """Parse a whole program (fields, timers, kernels)."""
        prog = ProgramDecl()
        while self._peek().type is not TokenType.EOF:
            tok = self._peek()
            if tok.type is TokenType.TYPE:
                prog.fields.append(self._field_def())
            elif tok.is_keyword("timer"):
                prog.timers.append(self._timer_def())
            elif (
                tok.type is TokenType.IDENT
                and self._peek(1).type is TokenType.COLON
            ):
                prog.kernels.append(self._kernel_def())
            else:
                raise ParseError(
                    f"expected a field, timer or kernel definition, found "
                    f"{tok.value!r}",
                    tok.line,
                    tok.column,
                )
        return prog

    # ------------------------------------------------------------------
    def _brackets(self) -> tuple[int, tuple[int | None, ...]]:
        """Parse ``[]``/``[N]`` dimension suffixes; returns (ndim, sizes)
        where each size is an int or None (unsized)."""
        sizes: list[int | None] = []
        while self._peek().type is TokenType.LBRACKET:
            self._next()
            if self._peek().type is TokenType.INT:
                sizes.append(int(self._next().value))
            else:
                sizes.append(None)
            self._expect(TokenType.RBRACKET, "']'")
        return len(sizes), tuple(sizes)

    def _field_def(self) -> FieldDecl:
        ttok = self._expect(TokenType.TYPE, "a type name")
        ndim, shape = self._brackets()
        if ndim == 0:
            raise ParseError(
                "field must have at least one [] dimension",
                ttok.line, ttok.column,
            )
        name = self._expect(TokenType.IDENT, "a field name")
        aging = False
        if self._peek().is_keyword("age"):
            self._next()
            aging = True
        self._expect(TokenType.SEMI, "';'")
        return FieldDecl(name.value, ttok.value, ndim, aging, shape,
                         ttok.line)

    def _timer_def(self) -> TimerDecl:
        tok = self._expect_keyword("timer")
        name = self._expect(TokenType.IDENT, "a timer name")
        self._expect(TokenType.SEMI, "';'")
        return TimerDecl(name.value, tok.line)

    # ------------------------------------------------------------------
    def _kernel_def(self) -> KernelDecl:
        name = self._expect(TokenType.IDENT, "a kernel name")
        self._expect(TokenType.COLON, "':'")
        kernel = KernelDecl(name.value, line=name.line)
        while True:
            tok = self._peek()
            if tok.type is TokenType.EOF or tok.type is TokenType.TYPE:
                break
            if (
                tok.type is TokenType.IDENT
                and self._peek(1).type is TokenType.COLON
            ):
                break  # next kernel header
            if tok.is_keyword("timer"):
                break
            kernel.items.append(self._kernel_item())
        return kernel

    def _kernel_item(self):
        tok = self._peek()
        if tok.type is TokenType.NATIVE:
            self._next()
            return NativeBlock(tok.value, tok.line)
        if tok.is_keyword("age"):
            self._next()
            name = self._expect(TokenType.IDENT, "an age variable name")
            self._expect(TokenType.SEMI, "';'")
            return AgeDecl(name.value, tok.line)
        if tok.is_keyword("index"):
            self._next()
            name = self._expect(TokenType.IDENT, "an index variable name")
            self._expect(TokenType.SEMI, "';'")
            return IndexDecl(name.value, tok.line)
        if tok.is_keyword("local"):
            self._next()
            ttok = self._expect(TokenType.TYPE, "a type name")
            ndim, _sizes = self._brackets()  # locals grow; sizes ignored
            name = self._expect(TokenType.IDENT, "a local name")
            self._expect(TokenType.SEMI, "';'")
            return LocalDecl(name.value, ttok.value, ndim, tok.line)
        if tok.is_keyword("fetch"):
            self._next()
            param = self._expect(TokenType.IDENT, "a fetch target name")
            self._expect(TokenType.ASSIGN, "'='")
            field, age, index = self._field_ref()
            self._expect(TokenType.SEMI, "';'")
            return FetchStmt(param.value, field, age, index, tok.line)
        if tok.is_keyword("store"):
            self._next()
            field, age, index = self._field_ref()
            self._expect(TokenType.ASSIGN, "'='")
            source = self._expect(TokenType.IDENT, "a source name")
            self._expect(TokenType.SEMI, "';'")
            return StoreStmt(field, age, index, source.value, tok.line)
        if tok.is_keyword("age_limit"):
            self._next()
            value = self._expect(TokenType.INT, "an integer")
            self._expect(TokenType.SEMI, "';'")
            return OptionStmt("age_limit", None, int(value.value), tok.line)
        if tok.is_keyword("domain"):
            self._next()
            key = self._expect(TokenType.IDENT, "an index variable name")
            self._expect(TokenType.ASSIGN, "'='")
            value = self._expect(TokenType.INT, "an integer")
            self._expect(TokenType.SEMI, "';'")
            return OptionStmt("domain", key.value, int(value.value), tok.line)
        raise ParseError(
            f"unexpected {tok.value!r} in kernel body", tok.line, tok.column
        )

    # ------------------------------------------------------------------
    def _field_ref(self) -> tuple[str, AgeRef, tuple[IndexRef, ...]]:
        name = self._expect(TokenType.IDENT, "a field name")
        self._expect(TokenType.LPAREN, "'('")
        age = self._age_expr()
        self._expect(TokenType.RPAREN, "')'")
        index: list[IndexRef] = []
        while self._peek().type is TokenType.LBRACKET:
            self._next()
            index.append(self._index_item())
            self._expect(TokenType.RBRACKET, "']'")
        return name.value, age, tuple(index)

    def _age_expr(self) -> AgeRef:
        tok = self._peek()
        if tok.type is TokenType.INT:
            self._next()
            return AgeRef.of_literal(int(tok.value), tok.line)
        name = self._expect(TokenType.IDENT, "an age variable or literal")
        offset = 0
        if self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            sign = 1 if self._next().type is TokenType.PLUS else -1
            num = self._expect(TokenType.INT, "an integer offset")
            offset = sign * int(num.value)
        return AgeRef.of_var(name.value, offset, tok.line)

    def _index_item(self) -> IndexRef:
        tok = self._peek()
        if tok.type is TokenType.COLON:
            self._next()
            return IndexRef(None, line=tok.line)
        name = self._expect(TokenType.IDENT, "an index variable or ':'")
        offset = 0
        if self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            sign = 1 if self._next().type is TokenType.PLUS else -1
            num = self._expect(TokenType.INT, "an index offset")
            offset = sign * int(num.value)
        block = 1
        if self._peek().type is TokenType.COLON:
            self._next()
            num = self._expect(TokenType.INT, "a block size")
            block = int(num.value)
        return IndexRef(name.value, block, offset, tok.line)


def parse_program(source: str) -> ProgramDecl:
    """Tokenize and parse; raises :class:`LexError`/:class:`ParseError`."""
    return Parser(tokenize(source)).parse()
