"""Token kinds and the token record for the kernel-language lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories of the kernel language."""

    IDENT = "ident"
    INT = "int"
    KEYWORD = "keyword"
    TYPE = "type"
    NATIVE = "native"  # a %{ ... %} block, value = raw code
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COLON = ":"
    SEMI = ";"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    COMMA = ","
    EOF = "eof"


#: reserved words that are not type names
KEYWORDS = frozenset(
    {
        "age",
        "index",
        "local",
        "fetch",
        "store",
        "timer",
        "age_limit",
        "domain",
    }
)

#: scalar type names (must match ``repro.core.fields.DTYPES``)
TYPE_NAMES = frozenset(
    {
        "int8",
        "uint8",
        "int16",
        "uint16",
        "int32",
        "uint32",
        "int64",
        "uint64",
        "float32",
        "float64",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def __str__(self) -> str:
        return f"{self.type.name}({self.value!r})@{self.line}:{self.column}"
