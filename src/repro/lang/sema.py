"""Semantic analysis of a parsed kernel-language program.

Checks everything that can be checked without executing native blocks:
declaration uniqueness, reference resolution (fields, age and index
variables), index arity against field dimensionality, age-expression
well-formedness, and option validity.  Violations raise
:class:`~repro.core.errors.SemanticError` with source positions.
"""

from __future__ import annotations

from ..core.errors import SemanticError
from .ast import (
    AgeRef,
    FetchStmt,
    KernelDecl,
    ProgramDecl,
    StoreStmt,
)


def analyze(prog: ProgramDecl) -> None:
    """Validate ``prog``; raises :class:`SemanticError` on the first
    violation found."""
    fields = {}
    for f in prog.fields:
        if f.name in fields:
            raise SemanticError(f"duplicate field {f.name!r}", f.line)
        if f.shape and any(s is not None for s in f.shape):
            if any(s is None for s in f.shape):
                raise SemanticError(
                    f"field {f.name!r}: either every dimension or none "
                    f"must declare a size",
                    f.line,
                )
            if any(s < 0 for s in f.shape):
                raise SemanticError(
                    f"field {f.name!r}: negative dimension size", f.line
                )
        fields[f.name] = f
    timers = set()
    for t in prog.timers:
        if t.name in timers:
            raise SemanticError(f"duplicate timer {t.name!r}", t.line)
        if t.name in fields:
            raise SemanticError(
                f"timer {t.name!r} collides with a field name", t.line
            )
        timers.add(t.name)
    kernel_names = set()
    for k in prog.kernels:
        if k.name in kernel_names:
            raise SemanticError(f"duplicate kernel {k.name!r}", k.line)
        if k.name in fields:
            raise SemanticError(
                f"kernel {k.name!r} collides with a field name", k.line
            )
        kernel_names.add(k.name)
        _analyze_kernel(k, fields)


def _analyze_kernel(kernel: KernelDecl, fields: dict) -> None:
    ages = kernel.ages()
    if len(ages) > 1:
        raise SemanticError(
            f"kernel {kernel.name!r} declares more than one age variable",
            ages[1].line,
        )
    age_name = ages[0].name if ages else None

    names: set[str] = set()
    if age_name:
        names.add(age_name)
    index_names: set[str] = set()
    for ix in kernel.indices():
        if ix.name in names or ix.name in index_names:
            raise SemanticError(
                f"kernel {kernel.name!r}: duplicate declaration of "
                f"{ix.name!r}",
                ix.line,
            )
        index_names.add(ix.name)
    names |= index_names
    for lo in kernel.locals():
        if lo.name in names:
            raise SemanticError(
                f"kernel {kernel.name!r}: local {lo.name!r} shadows another "
                f"declaration",
                lo.line,
            )
        names.add(lo.name)
    for fe in kernel.fetches():
        if fe.param in names:
            raise SemanticError(
                f"kernel {kernel.name!r}: fetch target {fe.param!r} shadows "
                f"another declaration",
                fe.line,
            )
        names.add(fe.param)
        _check_field_ref(kernel, fe.field, fe.age, fe.index, fields,
                         age_name, index_names, fe.line, "fetch")
    store_keys: set[tuple[str, str]] = set()
    for st in kernel.stores():
        _check_field_ref(kernel, st.field, st.age, st.index, fields,
                         age_name, index_names, st.line, "store")
        key = (st.field, st.source)
        if key in store_keys:
            raise SemanticError(
                f"kernel {kernel.name!r}: duplicate store of {st.source!r} "
                f"to {st.field!r}",
                st.line,
            )
        store_keys.add(key)
    for opt in kernel.options():
        if opt.name == "domain" and opt.key not in index_names:
            raise SemanticError(
                f"kernel {kernel.name!r}: domain option names unknown index "
                f"variable {opt.key!r}",
                opt.line,
            )
        if opt.value < 0:
            raise SemanticError(
                f"kernel {kernel.name!r}: option {opt.name!r} must be "
                f"non-negative",
                opt.line,
            )
    if kernel.stores() or kernel.fetches():
        pass  # pure-native kernels are legal (side-effect sinks)


def _check_field_ref(
    kernel: KernelDecl,
    field: str,
    age: AgeRef,
    index: tuple,
    fields: dict,
    age_name: str | None,
    index_names: set[str],
    line: int,
    what: str,
) -> None:
    if field not in fields:
        raise SemanticError(
            f"kernel {kernel.name!r}: {what} references unknown field "
            f"{field!r}",
            line,
        )
    fdecl = fields[field]
    if age.var is not None:
        if age_name is None:
            raise SemanticError(
                f"kernel {kernel.name!r}: {what} on {field!r} uses age "
                f"variable {age.var!r} but the kernel declares no age",
                line,
            )
        if age.var != age_name:
            raise SemanticError(
                f"kernel {kernel.name!r}: unknown age variable {age.var!r} "
                f"(declared: {age_name!r})",
                line,
            )
        if not fdecl.aging and (age.offset or True):
            # variable age on a non-aging field is only meaningful at 0
            raise SemanticError(
                f"kernel {kernel.name!r}: {what} uses a variable age on "
                f"non-aging field {field!r}",
                line,
            )
    else:
        if not fdecl.aging and age.literal != 0:
            raise SemanticError(
                f"kernel {kernel.name!r}: non-aging field {field!r} only "
                f"has age 0",
                line,
            )
        if age.literal is not None and age.literal < 0:
            raise SemanticError(
                f"kernel {kernel.name!r}: negative literal age", line
            )
    if index and len(index) != fdecl.ndim:
        raise SemanticError(
            f"kernel {kernel.name!r}: {what} on {field!r} has "
            f"{len(index)} index item(s); the field has {fdecl.ndim} "
            f"dimension(s)",
            line,
        )
    for item in index:
        if item.var is not None and item.var not in index_names:
            raise SemanticError(
                f"kernel {kernel.name!r}: undeclared index variable "
                f"{item.var!r}",
                line,
            )
        if item.block < 1:
            raise SemanticError(
                f"kernel {kernel.name!r}: block size must be >= 1", line
            )
        if item.offset and what == "store":
            raise SemanticError(
                f"kernel {kernel.name!r}: index offsets are fetch-only "
                f"(a shifted store leaves write-once holes)",
                line,
            )
