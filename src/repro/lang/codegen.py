"""Code generation: kernel-language AST → executable ``repro.core``
objects.

Each kernel's native blocks are spliced into a generated Python function
with this environment:

* the age variable (e.g. ``a``) and index variables bound to the
  instance's values;
* fetch targets bound to the fetched values (scalars for single-element
  fetches, NumPy arrays otherwise);
* ``local`` declarations bound to :class:`~repro.core.LocalField`
  instances (array locals) or 0 (scalar locals);
* timers bound by name to :class:`~repro.core.Timer` objects;
* intrinsics ``put``/``get``/``extent`` (figure 5/6) plus ``np`` and
  ``math``;
* any extra ``bindings`` the embedder passes to ``compile_program``
  (how programs reach host objects such as output sinks).

After the native blocks run, each ``store f(a)[x] = src;`` statement
emits the final value of ``src`` — unless it is ``None``, which skips
the store (end-of-stream / deadline-miss alternate paths).
"""

from __future__ import annotations

import math
import textwrap
from typing import Any, Mapping

import numpy as np

from ..core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelDef,
    LocalField,
    Program,
    StoreSpec,
)
from ..core.errors import SemanticError
from .ast import AgeRef, IndexRef, KernelDecl, ProgramDecl

__all__ = ["generate_program", "put", "get", "extent"]


# ----------------------------------------------------------------------
# Intrinsics available inside native blocks (figure 5/6 vocabulary)
# ----------------------------------------------------------------------
def put(target: LocalField, value: Any, *index: int) -> None:
    """``put(values, v, i, ...)`` — store into a local field, growing it."""
    target.put(value, *index)


def get(source: Any, *index: int) -> Any:
    """``get(m, i, ...)`` — read an element of a local field or array."""
    if isinstance(source, LocalField):
        return source.get(*index)
    return np.asarray(source)[tuple(index)]


def extent(source: Any, dim: int = 0) -> int:
    """``extent(m, d)`` — size of a local field or array along ``dim``."""
    if isinstance(source, LocalField):
        return source.extent(dim)
    return np.asarray(source).shape[dim]


_INTRINSICS: dict[str, Any] = {
    "put": put,
    "get": get,
    "extent": extent,
    "np": np,
    "math": math,
    "LocalField": LocalField,
}


# ----------------------------------------------------------------------
def _age_expr(ref: AgeRef) -> AgeExpr:
    if ref.var is None:
        return AgeExpr.const(int(ref.literal))
    return AgeExpr.var(ref.offset)


def _dims(index: tuple[IndexRef, ...]) -> tuple[Dim, ...]:
    return tuple(
        Dim.all() if item.is_all
        else Dim.of(item.var, item.block, item.offset)
        for item in index
    )


def _dedent_native(code: str) -> str:
    if "\n" not in code:
        return code.strip()
    body = code.lstrip("\n")
    return textwrap.dedent(body).rstrip()


def _store_key(field: str, source: str, seen: set[str]) -> str:
    key = field
    if key in seen:
        key = f"{field}={source}"
    i = 2
    while key in seen:
        key = f"{field}={source}#{i}"
        i += 1
    seen.add(key)
    return key


def _generate_kernel(
    kernel: KernelDecl, bindings: Mapping[str, Any]
) -> KernelDef:
    ages = kernel.ages()
    age_name = ages[0].name if ages else None
    index_vars = tuple(ix.name for ix in kernel.indices())

    fetch_specs: list[FetchSpec] = []
    for fe in kernel.fetches():
        dims = _dims(fe.index)
        scalar = bool(dims) and all(
            not d.is_all and d.block == 1 for d in dims
        )
        fetch_specs.append(
            FetchSpec(fe.param, fe.field, _age_expr(fe.age), dims, scalar)
        )

    store_specs: list[StoreSpec] = []
    store_sources: list[tuple[str, str]] = []  # (emit key, source var)
    seen_keys: set[str] = set()
    for st in kernel.stores():
        key = _store_key(st.field, st.source, seen_keys)
        store_specs.append(
            StoreSpec(st.field, _age_expr(st.age), _dims(st.index), key=key)
        )
        store_sources.append((key, st.source))

    # ------------------------------------------------------------------
    # Build the body function source
    # ------------------------------------------------------------------
    lines: list[str] = [f"def __p2g_body_{kernel.name}(ctx):"]
    if age_name:
        lines.append(f"    {age_name} = ctx.age")
    for v in index_vars:
        lines.append(f"    {v} = ctx.index[{v!r}]")
    for fe in kernel.fetches():
        lines.append(f"    {fe.param} = ctx.fetched[{fe.param!r}]")
    for lo in kernel.locals():
        if lo.ndim == 0:
            lines.append(f"    {lo.name} = 0")
        else:
            lines.append(
                f"    {lo.name} = LocalField({lo.dtype!r}, {lo.ndim})"
            )
    for tname in _timer_names(bindings):
        lines.append(f"    {tname} = ctx.timers[{tname!r}]")
    for nb in kernel.natives():
        code = _dedent_native(nb.code)
        if not code:
            continue
        for ln in code.splitlines():
            lines.append("    " + ln)
    for key, source in store_sources:
        lines.append(f"    __v = {source}")
        lines.append("    if isinstance(__v, LocalField): __v = __v.data")
        lines.append(f"    if __v is not None: ctx.emit({key!r}, __v)")
    if len(lines) == 1:
        lines.append("    pass")
    src = "\n".join(lines)

    env: dict[str, Any] = dict(_INTRINSICS)
    env.update(bindings)
    try:
        code_obj = compile(src, f"<p2g:{kernel.name}>", "exec")
    except SyntaxError as exc:
        raise SemanticError(
            f"kernel {kernel.name!r}: native block is not valid Python: "
            f"{exc.msg}",
            kernel.line,
        ) from exc
    exec(code_obj, env)
    body = env[f"__p2g_body_{kernel.name}"]

    age_limit = None
    domain: dict[str, int] = {}
    for opt in kernel.options():
        if opt.name == "age_limit":
            age_limit = opt.value
        elif opt.name == "domain":
            domain[opt.key] = opt.value

    return KernelDef(
        name=kernel.name,
        body=body,
        fetches=tuple(fetch_specs),
        stores=tuple(store_specs),
        has_age=age_name is not None,
        index_vars=index_vars,
        domain=domain or None,
        age_limit=age_limit,
    )


def _timer_names(bindings: Mapping[str, Any]) -> tuple[str, ...]:
    return tuple(bindings.get("__timer_names__", ()))


def generate_program(
    prog: ProgramDecl,
    bindings: Mapping[str, Any] | None = None,
    name: str = "program",
) -> Program:
    """Lower a validated AST to a :class:`repro.core.Program`."""
    bindings = dict(bindings or {})
    timer_names = tuple(t.name for t in prog.timers)
    bindings["__timer_names__"] = timer_names
    fields = [
        FieldDef(
            f.name, f.dtype, f.ndim, f.aging,
            shape=(
                tuple(f.shape)
                if f.shape and all(s is not None for s in f.shape)
                else None
            ),
        )
        for f in prog.fields
    ]
    kernels = [_generate_kernel(k, bindings) for k in prog.kernels]
    return Program.build(fields, kernels, timer_names, name)
