"""The P2G kernel language (paper, section V-B and figure 5).

A small C-like language in which programs declare global *fields* and
*kernels*; kernels declare ``age``/``index``/``local`` variables, specify
their field interaction through ``fetch``/``store`` statements, and embed
a *native block* (``%{ ... %}``) containing the sequential transformation
code.  The paper's native blocks are C/C++ compiled by a compiler driver;
this reproduction's native blocks are Python, compiled by
:func:`compile_program` into a regular :class:`repro.core.Program` that
the runtime, graphs, LLS and simulator consume unchanged — the language
is "not an integral part and can be replaced easily", which this package
demonstrates by being a pure front-end.

Example (figure 5)::

    int32[] m_data age;
    int32[] p_data age;

    init:
      local int32[] values;
      %{
        for i in range(5):
            put(values, i + 10, i)
      %}
      store m_data(0) = values;

    mul2:
      age a;
      index x;
      fetch value = m_data(a)[x];
      %{ value *= 2 %}
      store p_data(a)[x] = value;
"""

from .ast import (
    AgeRef,
    FieldDecl,
    IndexRef,
    KernelDecl,
    NativeBlock,
    ProgramDecl,
    TimerDecl,
)
from .compiler import compile_program, compile_file
from .lexer import Lexer, tokenize
from .parser import Parser, parse_program
from .sema import analyze
from .tokens import Token, TokenType

__all__ = [
    "AgeRef",
    "FieldDecl",
    "IndexRef",
    "KernelDecl",
    "Lexer",
    "NativeBlock",
    "Parser",
    "ProgramDecl",
    "TimerDecl",
    "Token",
    "TokenType",
    "analyze",
    "compile_file",
    "compile_program",
    "parse_program",
    "tokenize",
]
