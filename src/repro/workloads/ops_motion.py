"""Windowed per-region motion statistics over a live source.

The second operator-algebra scenario (ISSUE 10): a camera's luma plane
is diced into ``region x region`` tiles; a ``window(2)`` map computes
each tile's SAD/SSD against the *next* frame (vectorizable pattern
``absdiff_region_stats``), and a ``keyed_partition`` folds the regions
into ``slots`` deterministic hash zones (think per-zone alarms).  The
sink emits ``{"m": (RY, RX, 2), "z": (slots, 2)}`` int64 stats per
output age — one age *fewer* than input frames, the forward-window age
semantics (output age ``a`` compares frames ``a`` and ``a+1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import ops
from ..core.vectorize import tag_vectorizable
from ..media.yuv import synthetic_sequence

__all__ = [
    "MotionConfig",
    "build_motion",
    "build_motion_stream",
    "motion_baseline",
    "region_slots",
]


@dataclass(frozen=True)
class MotionConfig:
    """Geometry of the motion-statistics scenario."""

    width: int = 64
    height: int = 64
    frames: int = 8
    region: int = 16
    slots: int = 4
    seed: int = 1234

    @property
    def regions(self) -> tuple[int, int]:
        return (self.height // self.region, self.width // self.region)

    def validate(self) -> None:
        if self.width % self.region or self.height % self.region:
            raise ValueError(
                f"width/height must be multiples of region={self.region}"
            )
        if self.frames < 2:
            raise ValueError("motion stats need at least 2 frames")


def region_slots(config: MotionConfig) -> np.ndarray:
    """Deterministic ``(RY, RX)`` region→slot assignment grid."""
    ry, rx = config.regions
    return np.array(
        [
            [ops.slot_of((r, c), config.slots) for c in range(rx)]
            for r in range(ry)
        ],
        dtype=np.int64,
    )


def _stats_body():
    def body(ctx) -> None:
        a = ctx.fetched["y@0"].astype(np.int64)
        b = ctx.fetched["y@1"].astype(np.int64)
        d = a - b
        ctx.emit(
            "m",
            np.array([np.abs(d).sum(), (d * d).sum()], dtype=np.int64),
        )

    return tag_vectorizable(body, "absdiff_region_stats")


def _zones_body(assign: np.ndarray):
    def body(ctx) -> None:
        m = ctx.fetched["m"]  # (RY, RX, 2)
        mask = assign == ctx.index["slot"]
        ctx.emit("z", m[mask].sum(axis=0, dtype=np.int64))

    return body


def _build_graph(config: MotionConfig, cam: ops.Handle) -> ops.Handle:
    ry, rx = config.regions
    stats = cam["y"].window(2).block(config.region, config.region).map(
        "stats",
        _stats_body(),
        out={"m": ("int64", (ry, rx, 2))},
        out_block={"m": (1, 1)},
    )
    zones = stats["m"].keyed_partition(
        "zones",
        config.slots,
        _zones_body(region_slots(config)),
        out={"z": ("int64", (2,))},
    )
    return ops.sink(
        "motion",
        [stats, zones],
        fn=lambda age, v: {"m": v["stats.m"], "z": v["zones.z"]},
        key="sample",
    )


def build_motion(
    config: MotionConfig = MotionConfig(), vectorize: bool = True
) -> ops.CompiledPipeline:
    """Batch motion stats over the deterministic synthetic clip."""
    config.validate()
    clip = synthetic_sequence(
        config.frames, config.width, config.height, config.seed
    )
    cam = ops.source(
        "cam",
        {"y": ("uint8", (config.height, config.width))},
        frames=[{"y": f.y} for f in clip],
    )
    done = _build_graph(config, cam)
    return ops.compile_ops(done, name="ops_motion", vectorize=vectorize)


def build_motion_stream(
    config: MotionConfig = MotionConfig(),
    stream=None,
    source=None,
    vectorize: bool = True,
) -> ops.CompiledPipeline:
    """Live motion stats; ``source`` overrides the synthetic camera
    (e.g. a ``FileLoopSource`` from the CLI's ``--source``)."""
    from ..stream.sources import SyntheticSource

    config.validate()
    if source is None:
        source = SyntheticSource(config.width, config.height, config.seed)
    cam = ops.source(
        "cam",
        {"y": ("uint8", (config.height, config.width))},
        live=source,
    )
    done = _build_graph(config, cam)
    return ops.compile_ops(
        done,
        name="ops_motion",
        mode="live",
        stream=stream,
        vectorize=vectorize,
    )


# ----------------------------------------------------------------------
# Reference implementation
# ----------------------------------------------------------------------
def motion_baseline(
    config: MotionConfig = MotionConfig(),
) -> list[dict]:
    """Pure-NumPy motion stats: the byte-identity oracle."""
    config.validate()
    clip = synthetic_sequence(
        config.frames, config.width, config.height, config.seed
    )
    ry, rx = config.regions
    k = config.region
    assign = region_slots(config)
    out = []
    for t in range(config.frames - 1):
        a = clip[t].y.astype(np.int64)
        b = clip[t + 1].y.astype(np.int64)
        d = (a - b).reshape(ry, k, rx, k)
        m = np.stack(
            [np.abs(d).sum(axis=(1, 3)), (d * d).sum(axis=(1, 3))],
            axis=-1,
        )
        z = np.zeros((config.slots, 2), dtype=np.int64)
        for s in range(config.slots):
            z[s] = m[assign == s].sum(axis=0, dtype=np.int64)
        out.append({"m": m, "z": z})
    return out
