"""Motion JPEG *decoding* as a P2G program.

The reverse of figure 8's encoder pipeline, built from the same
substrate: a serial ``vld`` source kernel entropy-decodes one JPEG per
age into quantized-coefficient fields (variable-length decoding cannot
be split — the bitstream is sequential), then per-macro-block
``yidct``/``uidct``/``vidct`` kernels dequantize and inverse-transform
in parallel, and a ``write`` kernel reassembles the YUV frame.  The
paper's intro motivates exactly this shape of workload (arbitrary
multimedia transformations with per-stage decomposition opportunities
"at different granularities"); the decoder demonstrates that the P2G
model expresses the consumer side as naturally as the producer side.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Sequence

import numpy as np

from ..core import (
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
)
from ..media.dct import idct2_blocks
from ..media.jpeg import blocks_to_plane, decode_to_coefficients
from ..media.quant import dequantize
from ..media.yuv import YUVFrame
from .mjpeg import MJPEGConfig

__all__ = ["MJPEGDecodeSink", "build_mjpeg_decoder"]


@dataclass
class MJPEGDecodeSink:
    """Collects reconstructed frames by age."""

    config: MJPEGConfig
    frames: dict[int, YUVFrame] = dc_field(default_factory=dict)
    qtables: dict[int, np.ndarray] = dc_field(default_factory=dict)

    def ordered_frames(self) -> list[YUVFrame]:
        """Reconstructed frames in age order."""
        return [self.frames[a] for a in sorted(self.frames)]


def build_mjpeg_decoder(
    jpegs: Sequence[bytes],
    config: MJPEGConfig = MJPEGConfig(),
) -> tuple[Program, MJPEGDecodeSink]:
    """Build the decoder program for a sequence of JPEG frames.

    All frames must share the configured geometry (our encoder's 4:2:0
    output); the ``vld`` kernel parses each frame's own quantization
    tables, so any baseline quality is accepted.
    """
    jpegs = list(jpegs)
    sink = MJPEGDecodeSink(config)
    luma_shape = (config.height, config.width)
    chroma_shape = (config.height // 2, config.width // 2)

    def vld_body(ctx: KernelContext) -> None:
        if ctx.age >= len(jpegs):
            return  # end of stream
        dec = decode_to_coefficients(jpegs[ctx.age])
        if (dec.width, dec.height) != (config.width, config.height):
            raise ValueError(
                f"frame {ctx.age}: size {dec.width}x{dec.height} does not "
                f"match config {config.width}x{config.height}"
            )
        if dec.sampling != ((2, 2), (1, 1), (1, 1)):
            raise ValueError(
                f"frame {ctx.age}: only 4:2:0 streams are supported"
            )
        sink.qtables.setdefault(0, dec.qtables[dec.qtable_ids[0]])
        sink.qtables.setdefault(1, dec.qtables[dec.qtable_ids[1]])
        # Coefficient planes in block-raster layout; int32 fields.
        ctx.emit("y_coeff", blocks_to_plane(dec.grids[0]))
        ctx.emit("u_coeff", blocks_to_plane(dec.grids[1]))
        ctx.emit("v_coeff", blocks_to_plane(dec.grids[2]))

    def idct_body_for(qtable_id: int):
        def idct_body(ctx: KernelContext) -> None:
            block = ctx["block"].astype(np.float64)
            q = sink.qtables[qtable_id]
            pix = idct2_blocks(dequantize(block, q)) + 128.0
            ctx.emit("out", np.clip(np.round(pix), 0, 255))

        return idct_body

    def write_body(ctx: KernelContext) -> None:
        sink.frames[ctx.age] = YUVFrame(
            ctx["y"].astype(np.uint8),
            ctx["u"].astype(np.uint8),
            ctx["v"].astype(np.uint8),
        )

    block_dims = (Dim.of("by", 8), Dim.of("bx", 8))

    def idct_kernel(name: str, src: str, dst: str, qid: int) -> KernelDef:
        return KernelDef(
            name=name,
            body=idct_body_for(qid),
            has_age=True,
            index_vars=("by", "bx"),
            fetches=(FetchSpec("block", src, dims=block_dims),),
            stores=(StoreSpec(dst, dims=block_dims, key="out"),),
        )

    vld = KernelDef(
        name="vld",
        body=vld_body,
        has_age=True,
        stores=(
            StoreSpec("y_coeff", key="y_coeff"),
            StoreSpec("u_coeff", key="u_coeff"),
            StoreSpec("v_coeff", key="v_coeff"),
        ),
    )
    write = KernelDef(
        name="write",
        body=write_body,
        has_age=True,
        fetches=(
            FetchSpec("y", "y_pixels"),
            FetchSpec("u", "u_pixels"),
            FetchSpec("v", "v_pixels"),
        ),
    )
    program = Program.build(
        fields=[
            FieldDef("y_coeff", "int32", 2, shape=luma_shape),
            FieldDef("u_coeff", "int32", 2, shape=chroma_shape),
            FieldDef("v_coeff", "int32", 2, shape=chroma_shape),
            FieldDef("y_pixels", "uint8", 2, shape=luma_shape),
            FieldDef("u_pixels", "uint8", 2, shape=chroma_shape),
            FieldDef("v_pixels", "uint8", 2, shape=chroma_shape),
        ],
        kernels=[
            vld,
            idct_kernel("yidct", "y_coeff", "y_pixels", 0),
            idct_kernel("uidct", "u_coeff", "u_pixels", 1),
            idct_kernel("vidct", "v_coeff", "v_pixels", 1),
            write,
        ],
        name="mjpeg-decode",
    )
    return program, sink
