"""Workloads: the paper's example programs expressed against the P2G API.

* :mod:`repro.workloads.mulsum` — the mul2/plus5/print/init running
  example of figures 2–6.
* :mod:`repro.workloads.kmeans` — K-means clustering (figure 7, section
  VII-A) plus the sequential baseline.
* :mod:`repro.workloads.mjpeg` — Motion JPEG encoding (figure 8, section
  VII-B) plus the standalone single-threaded baseline encoder.
* :mod:`repro.workloads.ops_mosaic` / :mod:`~repro.workloads.ops_motion`
  / :mod:`~repro.workloads.ops_transcode` — operator-algebra scenarios
  (multi-camera mosaic, windowed motion statistics, MJPEG transcode)
  compiled from :mod:`repro.ops` pipelines.
"""

from .intra import IntraConfig, IntraSink, build_intra, intra_baseline
from .kmeans import KMeansResult, build_kmeans, generate_dataset, kmeans_baseline
from .mjpeg import (
    MJPEGConfig,
    MJPEGSink,
    build_mjpeg,
    build_mjpeg_stream,
    mjpeg_baseline,
)
from .mjpeg_decode import MJPEGDecodeSink, build_mjpeg_decoder
from .ops_mosaic import (
    MosaicConfig,
    build_mosaic,
    build_mosaic_stream,
    mosaic_baseline,
)
from .ops_motion import (
    MotionConfig,
    build_motion,
    build_motion_stream,
    motion_baseline,
)
from .ops_transcode import (
    TranscodeConfig,
    build_transcode,
    build_transcode_stream,
    make_input_jpegs,
    transcode_baseline,
)
from .mulsum import build_mulsum, expected_series

__all__ = [
    "IntraConfig",
    "IntraSink",
    "KMeansResult",
    "MJPEGConfig",
    "MJPEGDecodeSink",
    "MJPEGSink",
    "MosaicConfig",
    "MotionConfig",
    "TranscodeConfig",
    "build_intra",
    "build_kmeans",
    "build_mjpeg",
    "build_mjpeg_decoder",
    "build_mjpeg_stream",
    "build_mosaic",
    "build_mosaic_stream",
    "build_motion",
    "build_motion_stream",
    "build_transcode",
    "build_transcode_stream",
    "build_mulsum",
    "expected_series",
    "generate_dataset",
    "intra_baseline",
    "kmeans_baseline",
    "make_input_jpegs",
    "mosaic_baseline",
    "motion_baseline",
    "mjpeg_baseline",
    "transcode_baseline",
]
