"""Workloads: the paper's example programs expressed against the P2G API.

* :mod:`repro.workloads.mulsum` — the mul2/plus5/print/init running
  example of figures 2–6.
* :mod:`repro.workloads.kmeans` — K-means clustering (figure 7, section
  VII-A) plus the sequential baseline.
* :mod:`repro.workloads.mjpeg` — Motion JPEG encoding (figure 8, section
  VII-B) plus the standalone single-threaded baseline encoder.
"""

from .intra import IntraConfig, IntraSink, build_intra, intra_baseline
from .kmeans import KMeansResult, build_kmeans, generate_dataset, kmeans_baseline
from .mjpeg import (
    MJPEGConfig,
    MJPEGSink,
    build_mjpeg,
    build_mjpeg_stream,
    mjpeg_baseline,
)
from .mjpeg_decode import MJPEGDecodeSink, build_mjpeg_decoder
from .mulsum import build_mulsum, expected_series

__all__ = [
    "IntraConfig",
    "IntraSink",
    "KMeansResult",
    "MJPEGConfig",
    "MJPEGDecodeSink",
    "MJPEGSink",
    "build_intra",
    "build_kmeans",
    "build_mjpeg",
    "build_mjpeg_decoder",
    "build_mjpeg_stream",
    "build_mulsum",
    "expected_series",
    "generate_dataset",
    "intra_baseline",
    "kmeans_baseline",
    "mjpeg_baseline",
]
