"""Multi-camera mosaic: N live cameras → one composited stream.

The first operator-algebra scenario (ISSUE 10): ``cams`` synthetic
cameras each feed a per-plane box-downscale map (vectorizable pattern
``box_downscale``), and a lockstep :func:`repro.ops.merge` stitches the
scaled tiles into a ``grid x grid`` mosaic the size of one input frame
(vectorizable pattern ``grid_composite``).  The sink emits one
:class:`~repro.media.YUVFrame` per age.

Batch and live compilations share the same graph; live mode zips the N
cameras through one :class:`~repro.stream.MultiSource`, so a mosaic
session is exactly the "multi-source session" shape the tentpole asks
the stream layer to serve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import ops
from ..core.vectorize import tag_vectorizable
from ..media.yuv import (
    YUVFrame,
    box_downscale,
    synthetic_sequence,
)

__all__ = [
    "MosaicConfig",
    "assemble_grid",
    "build_mosaic",
    "build_mosaic_stream",
    "mosaic_baseline",
]


@dataclass(frozen=True)
class MosaicConfig:
    """Geometry of the mosaic scenario.

    ``cams`` must be a perfect square (the grid); every camera is
    ``width x height`` and the mosaic is too — each tile is the camera
    frame box-downscaled by the grid size.
    """

    cams: int = 4
    width: int = 64
    height: int = 64
    frames: int = 8
    seed: int = 1234

    @property
    def grid(self) -> int:
        g = math.isqrt(self.cams)
        if g * g != self.cams:
            raise ValueError(
                f"cams must be a perfect square, got {self.cams}"
            )
        return g

    def validate(self) -> None:
        g = self.grid
        if self.width % (16 * g) or self.height % (16 * g):
            raise ValueError(
                f"width/height must be multiples of {16 * g} "
                f"(8-pixel blocks after /{g} downscale, 4:2:0 chroma)"
            )


def assemble_grid(tiles: Sequence[np.ndarray], grid: int) -> np.ndarray:
    """Stitch ``grid*grid`` equally-sized tiles (row-major) into one
    plane; two concatenate passes, shared with the ``grid_composite``
    vectorized path for byte-identity."""
    rows = [
        np.concatenate(tiles[r * grid : (r + 1) * grid], axis=-1)
        for r in range(grid)
    ]
    return np.concatenate(rows, axis=-2)


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
_PLANES = ("y", "u", "v")


def _plane_shapes(width: int, height: int):
    return {
        "y": (height, width),
        "u": (height // 2, width // 2),
        "v": (height // 2, width // 2),
    }


def _scale_body(grid: int, plane: str):
    def body(ctx) -> None:
        ctx.emit(plane, box_downscale(ctx.fetched[plane], grid))

    return tag_vectorizable(body, "box_downscale", factor=grid)


def _composite_body(layout: dict[str, list[str]], grid: int):
    def body(ctx) -> None:
        for plane, tile_params in layout.items():
            tiles = [ctx.fetched[p] for p in tile_params]
            ctx.emit(plane, assemble_grid(tiles, grid))

    return tag_vectorizable(
        body, "grid_composite", grid=grid, layout=layout
    )


def _build_graph(config: MosaicConfig, sources) -> ops.Handle:
    g = config.grid
    shapes = _plane_shapes(config.width, config.height)
    tile_shapes = {
        p: (h // g, w // g) for p, (h, w) in shapes.items()
    }
    scaled: dict[str, list[ops.Handle]] = {p: [] for p in _PLANES}
    for i, cam in enumerate(sources):
        for plane in _PLANES:
            # Fetch 2g·8-wide stripes, store 8x8 tiles: one instance
            # per output macro-block, the vectorizer's unit of work.
            block = 8 * g
            h = cam[plane].block(block, block).map(
                f"scale{i}_{plane}",
                _scale_body(g, plane),
                out={plane: ("uint8", tile_shapes[plane])},
                out_block={plane: (8, 8)},
            )
            scaled[plane].append(h)
    layout = {
        plane: [f"scale{i}_{plane}.{plane}" for i in range(config.cams)]
        for plane in _PLANES
    }
    composite = ops.merge(
        "composite",
        [scaled[p][i] for p in _PLANES for i in range(config.cams)],
        _composite_body(layout, g),
        out={p: ("uint8", shapes[p]) for p in _PLANES},
    )
    return ops.sink(
        "mosaic",
        [composite],
        fn=lambda age, v: YUVFrame(v["y"], v["u"], v["v"]),
        key="frame",
    )


def build_mosaic(
    config: MosaicConfig = MosaicConfig(), vectorize: bool = True
) -> ops.CompiledPipeline:
    """Batch mosaic: each camera's clip is the deterministic synthetic
    sequence at ``seed + cam``; the sink collects the composited
    :class:`~repro.media.YUVFrame` per age."""
    config.validate()
    sources = []
    for i in range(config.cams):
        clip = synthetic_sequence(
            config.frames, config.width, config.height, config.seed + i
        )
        sources.append(
            ops.source(
                f"cam{i}",
                {
                    p: ("uint8", s)
                    for p, s in _plane_shapes(
                        config.width, config.height
                    ).items()
                },
                frames=[
                    {"y": f.y, "u": f.u, "v": f.v} for f in clip
                ],
            )
        )
    done = _build_graph(config, sources)
    return ops.compile_ops(done, name="ops_mosaic", vectorize=vectorize)


def build_mosaic_stream(
    config: MosaicConfig = MosaicConfig(),
    stream=None,
    sources=None,
    vectorize: bool = True,
) -> ops.CompiledPipeline:
    """Live mosaic: N cameras zipped through one
    :class:`~repro.stream.MultiSource`.

    ``sources`` overrides the per-camera
    :class:`~repro.stream.FrameSource` list (e.g. ``FileLoopSource``
    clips via the CLI's ``--source-glob``); default is one
    :class:`~repro.stream.SyntheticSource` per camera at ``seed + i``.
    """
    from ..stream.sources import SyntheticSource

    config.validate()
    if sources is None:
        sources = [
            SyntheticSource(config.width, config.height, config.seed + i)
            for i in range(config.cams)
        ]
    if len(sources) != config.cams:
        raise ValueError(
            f"need {config.cams} sources, got {len(sources)}"
        )
    handles = [
        ops.source(
            f"cam{i}",
            {
                p: ("uint8", s)
                for p, s in _plane_shapes(
                    config.width, config.height
                ).items()
            },
            live=src,
        )
        for i, src in enumerate(sources)
    ]
    done = _build_graph(config, handles)
    return ops.compile_ops(
        done,
        name="ops_mosaic",
        mode="live",
        stream=stream,
        vectorize=vectorize,
    )


# ----------------------------------------------------------------------
# Reference implementation
# ----------------------------------------------------------------------
def mosaic_baseline(
    config: MosaicConfig = MosaicConfig(),
) -> list[YUVFrame]:
    """Pure-NumPy mosaic: the byte-identity oracle for every backend."""
    config.validate()
    g = config.grid
    clips = [
        synthetic_sequence(
            config.frames, config.width, config.height, config.seed + i
        )
        for i in range(config.cams)
    ]
    out = []
    for t in range(config.frames):
        planes = {}
        for plane in _PLANES:
            tiles = [
                box_downscale(getattr(clips[i][t], plane), g)
                for i in range(config.cams)
            ]
            planes[plane] = assemble_grid(tiles, g)
        out.append(YUVFrame(planes["y"], planes["u"], planes["v"]))
    return out
