"""MJPEG transcode: decode → downscale → re-encode, as an operator chain.

The third operator-algebra scenario (ISSUE 10), reusing the ``media/``
codec and the decode stages of ``workloads/mjpeg_decode.py``:

``jin`` (JPEG bytes) → ``vld`` (serial entropy decode + dequantize, the
hand-off point of :func:`repro.media.decode_to_coefficients`) →
per-plane ``*idct`` block maps (pattern ``idct_8x8``) → per-plane
``*scale`` box-downscale maps (pattern ``box_downscale``) → per-plane
``*dct`` block maps (the MJPEG encoder's own ``dct_quant_8x8``
pattern) → ``vlc`` sink assembling the output JFIF bytes via
:func:`repro.media.encode_from_quantized`.

JPEG byte strings are variable length, and fields are fixed-shape: the
``jin.jpg`` field is a length-prefixed, zero-padded ``uint8`` vector
(:func:`pack_bytes` / :func:`unpack_bytes`), sized for the worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import ops
from ..core.vectorize import tag_vectorizable
from ..media.dct import dct2_blocks, idct2_blocks
from ..media.jpeg import (
    blocks_to_plane,
    decode_to_coefficients,
    encode_from_quantized,
    encode_jpeg,
    plane_to_blocks,
    qtables_for_quality,
)
from ..media.quant import dequantize, quantize
from ..media.yuv import box_downscale, synthetic_sequence

__all__ = [
    "TranscodeConfig",
    "build_transcode",
    "build_transcode_stream",
    "make_input_jpegs",
    "pack_bytes",
    "transcode_baseline",
    "unpack_bytes",
]


@dataclass(frozen=True)
class TranscodeConfig:
    """Geometry and quality knobs of the transcode scenario."""

    width: int = 64
    height: int = 64
    frames: int = 6
    quality_in: int = 80
    quality_out: int = 60
    factor: int = 2
    seed: int = 1234

    @property
    def out_size(self) -> tuple[int, int]:
        """(width, height) of the re-encoded stream."""
        return (self.width // self.factor, self.height // self.factor)

    @property
    def capacity(self) -> int:
        """The ``jin.jpg`` field length: worst-case JPEG + prefix."""
        return self.width * self.height * 3 + 4096

    def validate(self) -> None:
        f = self.factor
        if f < 1:
            raise ValueError(f"factor must be >= 1, got {f}")
        if self.width % (16 * f) or self.height % (16 * f):
            raise ValueError(
                f"width/height must be multiples of {16 * f} "
                f"(4:2:0 macro-blocks after /{f} downscale)"
            )


def pack_bytes(data: bytes, capacity: int) -> np.ndarray:
    """Length-prefix and zero-pad ``data`` into a ``(capacity,)`` uint8
    vector (4-byte big-endian length, then the payload)."""
    n = len(data)
    if n + 4 > capacity:
        raise ValueError(
            f"payload of {n} bytes exceeds field capacity {capacity}"
        )
    out = np.zeros(capacity, dtype=np.uint8)
    out[:4] = np.frombuffer(n.to_bytes(4, "big"), dtype=np.uint8)
    out[4 : 4 + n] = np.frombuffer(data, dtype=np.uint8)
    return out


def unpack_bytes(arr: np.ndarray) -> bytes:
    """Inverse of :func:`pack_bytes`."""
    n = int.from_bytes(bytes(arr[:4]), "big")
    return bytes(arr[4 : 4 + n])


def make_input_jpegs(config: TranscodeConfig) -> list[bytes]:
    """The input clip: synthetic frames encoded at ``quality_in``."""
    clip = synthetic_sequence(
        config.frames, config.width, config.height, config.seed
    )
    return [encode_jpeg(f, config.quality_in) for f in clip]


# ----------------------------------------------------------------------
# Kernel bodies
# ----------------------------------------------------------------------
_COMPONENTS = ("y", "u", "v")


def _vld_body():
    def body(ctx) -> None:
        dec = decode_to_coefficients(bytes(unpack_bytes(ctx.fetched["jpg"])))
        for port, comp in (("yc", 0), ("uc", 1), ("vc", 2)):
            grid = dec.grids[comp]
            qtable = dec.qtables[dec.qtable_ids[comp]]
            plane = blocks_to_plane(dequantize(grid, qtable))
            ctx.emit(port, plane.astype(np.int32))

    return body


def _idct_body(param: str, out_port: str):
    def body(ctx) -> None:
        # The (1, 8, 8) view routes the scalar path through the same
        # stacked idct2_blocks matmul the batch pattern uses.
        pixels = idct2_blocks(ctx.fetched[param][None])[0] + 128.0
        ctx.emit(
            out_port,
            np.clip(np.rint(pixels), 0, 255).astype(np.uint8),
        )

    return tag_vectorizable(body, "idct_8x8")


def _scale_body(param: str, out_port: str, factor: int):
    def body(ctx) -> None:
        ctx.emit(out_port, box_downscale(ctx.fetched[param], factor))

    return tag_vectorizable(body, "box_downscale", factor=factor)


def _dct_body(param: str, out_port: str, qtable: np.ndarray):
    def body(ctx) -> None:
        coeffs = dct2_blocks(
            ctx.fetched[param].astype(np.float64) - 128.0,
            method="matrix",
        )
        ctx.emit(out_port, quantize(coeffs, qtable))

    return tag_vectorizable(
        body, "dct_quant_8x8", qtable=qtable, method="matrix"
    )


def _build_graph(config: TranscodeConfig, jin: ops.Handle) -> ops.Handle:
    f = config.factor
    ow, oh = config.out_size
    qy, qc = qtables_for_quality(config.quality_out)
    plane_shapes = {
        "y": (config.height, config.width),
        "u": (config.height // 2, config.width // 2),
        "v": (config.height // 2, config.width // 2),
    }
    out_shapes = {
        "y": (oh, ow),
        "u": (oh // 2, ow // 2),
        "v": (oh // 2, ow // 2),
    }
    vld = jin["jpg"].map(
        "vld",
        _vld_body(),
        out={
            "yc": ("int32", plane_shapes["y"]),
            "uc": ("int32", plane_shapes["u"]),
            "vc": ("int32", plane_shapes["v"]),
        },
    )
    quantized = []
    for comp in _COMPONENTS:
        coeff_port = f"{comp}c"
        pixels = vld[coeff_port].block(8, 8).map(
            f"{comp}idct",
            _idct_body(coeff_port, comp),
            out={comp: ("uint8", plane_shapes[comp])},
            out_block={comp: (8, 8)},
        )
        scaled = pixels[comp].block(8 * f, 8 * f).map(
            f"{comp}scale",
            _scale_body(comp, comp, f),
            out={comp: ("uint8", out_shapes[comp])},
            out_block={comp: (8, 8)},
        )
        qtable = qy if comp == "y" else qc
        quantized.append(
            scaled[comp].block(8, 8).map(
                f"{comp}dct",
                _dct_body(comp, "q", qtable),
                out={"q": ("int32", out_shapes[comp])},
                out_block={"q": (8, 8)},
            )
        )

    def vlc_fn(age, values):
        yq = plane_to_blocks(values["ydct.q"])
        uq = plane_to_blocks(values["udct.q"])
        vq = plane_to_blocks(values["vdct.q"])
        return encode_from_quantized(yq, uq, vq, ow, oh, qy, qc)

    return ops.sink("vlc", quantized, fn=vlc_fn, key="frame")


def _jin_source(config: TranscodeConfig, **kwargs) -> ops.Handle:
    return ops.source(
        "jin", {"jpg": ("uint8", (config.capacity,))}, **kwargs
    )


def build_transcode(
    config: TranscodeConfig = TranscodeConfig(),
    jpegs: Sequence[bytes] | None = None,
    vectorize: bool = True,
) -> ops.CompiledPipeline:
    """Batch transcode of ``jpegs`` (default: the synthetic input clip)."""
    config.validate()
    if jpegs is None:
        jpegs = make_input_jpegs(config)
    jin = _jin_source(
        config,
        frames=[
            {"jpg": pack_bytes(j, config.capacity)} for j in jpegs
        ],
    )
    return ops.compile_ops(
        _build_graph(config, jin), name="ops_transcode",
        vectorize=vectorize,
    )


def build_transcode_stream(
    config: TranscodeConfig = TranscodeConfig(),
    stream=None,
    source=None,
    vectorize: bool = True,
) -> ops.CompiledPipeline:
    """Live transcode; ``source`` is a
    :class:`~repro.stream.FrameSource` of JPEG byte strings (default: a
    :class:`~repro.stream.CycleSource` looping the synthetic clip)."""
    from ..stream.sources import CycleSource

    config.validate()
    if source is None:
        source = CycleSource(make_input_jpegs(config))
    cap = config.capacity

    def adapter(frame):
        data = frame if isinstance(frame, bytes) else bytes(frame)
        return {"jpg": pack_bytes(data, cap)}

    jin = _jin_source(config, live=source, adapter=adapter)
    return ops.compile_ops(
        _build_graph(config, jin),
        name="ops_transcode",
        mode="live",
        stream=stream,
        vectorize=vectorize,
    )


# ----------------------------------------------------------------------
# Reference implementation
# ----------------------------------------------------------------------
def transcode_baseline(
    config: TranscodeConfig = TranscodeConfig(),
    jpegs: Sequence[bytes] | None = None,
) -> list[bytes]:
    """Sequential transcode through the same codec calls: the
    byte-identity oracle for every backend."""
    config.validate()
    if jpegs is None:
        jpegs = make_input_jpegs(config)
    f = config.factor
    ow, oh = config.out_size
    qy, qc = qtables_for_quality(config.quality_out)
    out = []
    for data in jpegs:
        dec = decode_to_coefficients(data)
        planes = []
        for comp in range(3):
            grid = dec.grids[comp]
            qtable = dec.qtables[dec.qtable_ids[comp]]
            coeff = blocks_to_plane(dequantize(grid, qtable)).astype(
                np.int32
            )
            blocks = plane_to_blocks(coeff).reshape(-1, 8, 8)
            pixels = idct2_blocks(blocks) + 128.0
            pixels = np.clip(np.rint(pixels), 0, 255).astype(np.uint8)
            bh, bw = coeff.shape[0] // 8, coeff.shape[1] // 8
            plane = blocks_to_plane(pixels.reshape(bh, bw, 8, 8))
            planes.append(box_downscale(plane, f))
        grids = []
        for comp, plane in enumerate(planes):
            qtable = qy if comp == 0 else qc
            coeffs = dct2_blocks(
                plane_to_blocks(plane.astype(np.float64) - 128.0),
                method="matrix",
            )
            grids.append(quantize(coeffs, qtable))
        out.append(
            encode_from_quantized(
                grids[0], grids[1], grids[2], ow, oh, qy, qc
            )
        )
    return out
