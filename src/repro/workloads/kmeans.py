"""K-means clustering as a P2G program (paper figure 7, section VII-A).

The paper's pipeline: an ``init`` kernel generates ``n`` datapoints and
picks ``k`` of them as initial centroids; an ``assign`` kernel computes,
per kernel instance, the relation of datapoints to the *last calculated*
centroids; a ``refine`` kernel recomputes each cluster's mean and stores
it into the next age of the ``centroids`` field — ``assign``/``refine``
form the aging loop.  A ``print`` kernel observes each centroid
generation.  The run is bounded to a fixed number of iterations exactly
as in the evaluation ("the K-means algorithm is not run until
convergence, but with 10 iterations").

Two decomposition granularities are provided (the knob table III turns
out to matter — the fine-grained ``assign`` saturates the dependency
analyzer and limits scaling to 4 threads, figure 10):

* ``granularity="pair"`` (default, matches the paper's instance counts):
  one ``assign`` instance per (datapoint, centroid) pair storing a
  single distance — ``n*k`` instances per iteration, 2,000,000 total at
  the paper's n=2000, K=100, 10 iterations (the paper reports 2,024,251
  including a partially dispatched final age).
* ``granularity="point"``: one instance per datapoint computing its
  nearest centroid directly — the coarser decomposition the paper says
  the LLS should choose ("each kernel instance of assign working on
  larger slices of data").

Both granularities produce bit-identical centroid trajectories, verified
against :func:`kmeans_baseline` (sequential Lloyd's iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Literal

import numpy as np

from ..core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    tag_vectorizable,
    vectorize_program,
)

__all__ = ["build_kmeans", "kmeans_baseline", "KMeansResult", "generate_dataset"]


def generate_dataset(
    n: int, dims: int = 2, seed: int = 42
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic random dataset + initial centroids.

    Mirrors the paper's "randomly generated data set containing 2000
    datapoints" with K of them "selected randomly as the initial means".
    Both the P2G program and the baseline call this, so their inputs are
    bit-identical.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 100.0, size=(n, dims))
    return points, rng.permutation(n)


def _initial_centroids(
    points: np.ndarray, k: int, perm: np.ndarray
) -> np.ndarray:
    return points[perm[:k]].copy()


@dataclass
class KMeansResult:
    """Centroid trajectory and derived diagnostics."""

    history: dict[int, np.ndarray] = dc_field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Number of refine rounds recorded (highest age)."""
        return max(self.history) if self.history else 0

    def final_centroids(self) -> np.ndarray:
        """Centroids of the last recorded age."""
        return self.history[max(self.history)]

    def assignments(self, points: np.ndarray) -> np.ndarray:
        """Nearest-centroid index per point, under the final centroids."""
        c = self.final_centroids()
        d = np.linalg.norm(points[:, None, :] - c[None, :, :], axis=2)
        return np.argmin(d, axis=1)

    def inertia(self, points: np.ndarray) -> float:
        """Sum of squared distances to assigned final centroids."""
        c = self.final_centroids()
        a = self.assignments(points)
        return float(np.sum((points - c[a]) ** 2))


def _refine_mean(
    points: np.ndarray,
    owner: np.ndarray,
    prev_centroid: np.ndarray,
    cluster: int,
) -> np.ndarray:
    """Mean of a cluster's members; empty clusters keep their centroid
    (the same rule the baseline uses, so trajectories stay identical)."""
    members = points[owner == cluster]
    if len(members) == 0:
        return prev_centroid.copy()
    return members.mean(axis=0)


def build_kmeans(
    n: int = 2000,
    k: int = 100,
    dims: int = 2,
    iterations: int = 10,
    seed: int = 42,
    granularity: Literal["pair", "point"] = "pair",
    vectorize: bool = True,
) -> tuple[Program, KMeansResult]:
    """Build the K-means P2G program; returns (program, result sink).

    Run with ``run_program(program, workers)`` — iteration bounds are
    baked in via per-kernel age limits, so no global ``max_age`` is
    needed.  ``result.history[a]`` holds the centroids of age ``a``
    (age 0 = initial means, age ``iterations`` = final means).

    ``vectorize`` attaches a batched NumPy implementation to ``assign``
    (distance pattern for ``pair``, nearest-centroid pattern for
    ``point``) used by batched dispatch (``batch > 1``); byte-identical
    to the scalar body, ``False`` to opt out.
    """
    if granularity not in ("pair", "point"):
        raise ValueError(f"unknown granularity {granularity!r}")
    points_data, perm = generate_dataset(n, dims, seed)
    init_centroids = _initial_centroids(points_data, k, perm)
    result = KMeansResult()

    def init_body(ctx: KernelContext) -> None:
        ctx.emit("datapoints", points_data)
        ctx.emit("centroids", init_centroids)

    def print_body(ctx: KernelContext) -> None:
        # Out-of-band: the centroid snapshot is delivered to the result
        # sink via the program's output handler in the parent process,
        # so the trajectory records identically on every backend.
        ctx.output("centroids", ctx["c"].copy())

    init = KernelDef(
        name="init",
        body=init_body,
        stores=(
            StoreSpec("datapoints", age=AgeExpr.const(0)),
            StoreSpec("centroids", age=AgeExpr.const(0)),
        ),
    )
    prnt = KernelDef(
        name="print",
        body=print_body,
        has_age=True,
        fetches=(FetchSpec("c", "centroids"),),
        age_limit=iterations,
    )

    fields = [
        FieldDef("datapoints", "float64", 2, aging=False, shape=(n, dims)),
        FieldDef("centroids", "float64", 2, aging=True, shape=(k, dims)),
    ]

    if granularity == "pair":
        # assign(x, c): distance between point x and centroid c.
        def assign_body(ctx: KernelContext) -> None:
            p = ctx["point"].reshape(-1)
            c = ctx["centroid"].reshape(-1)
            ctx.emit("distances", float(np.sqrt(np.sum((p - c) ** 2))))

        tag_vectorizable(assign_body, "kmeans_pair_distance")

        def refine_body(ctx: KernelContext) -> None:
            d = ctx["distances"]  # (n, k)
            pts = ctx["points"]
            prev_row = ctx["centroid"].reshape(-1)
            owner = np.argmin(d, axis=1)
            ctx.emit(
                "centroids",
                _refine_mean(pts, owner, prev_row, ctx.index["c"]),
            )

        assign = KernelDef(
            name="assign",
            body=assign_body,
            has_age=True,
            index_vars=("x", "c"),
            fetches=(
                FetchSpec(
                    "point", "datapoints", age=AgeExpr.const(0),
                    dims=(Dim.of("x"), Dim.all()),
                ),
                FetchSpec(
                    "centroid", "centroids",
                    dims=(Dim.of("c"), Dim.all()),
                ),
            ),
            stores=(
                StoreSpec(
                    "distances", dims=(Dim.of("x"), Dim.of("c")),
                ),
            ),
            age_limit=iterations - 1,
        )
        refine = KernelDef(
            name="refine",
            body=refine_body,
            has_age=True,
            index_vars=("c",),
            fetches=(
                FetchSpec("distances", "distances"),
                FetchSpec(
                    "points", "datapoints", age=AgeExpr.const(0)
                ),
                FetchSpec(
                    "centroid", "centroids",
                    dims=(Dim.of("c"), Dim.all()),
                ),
            ),
            stores=(
                StoreSpec(
                    "centroids", age=AgeExpr.var(1),
                    dims=(Dim.of("c"), Dim.all()),
                ),
            ),
            age_limit=iterations - 1,
        )
        fields.append(
            FieldDef("distances", "float64", 2, aging=True, shape=(n, k))
        )
    else:
        # assign(x): nearest centroid of point x.
        def assign_body(ctx: KernelContext) -> None:
            p = ctx["point"].reshape(-1)
            c = ctx["centroids"]
            d = np.linalg.norm(c - p[None, :], axis=1)
            ctx.emit("assignments", int(np.argmin(d)))

        tag_vectorizable(assign_body, "kmeans_point_assign")

        def refine_body(ctx: KernelContext) -> None:
            owner = ctx["assignments"].reshape(-1)
            pts = ctx["points"]
            prev_row = ctx["centroid"].reshape(-1)
            ctx.emit(
                "centroids",
                _refine_mean(pts, owner, prev_row, ctx.index["c"]),
            )

        assign = KernelDef(
            name="assign",
            body=assign_body,
            has_age=True,
            index_vars=("x",),
            fetches=(
                FetchSpec(
                    "point", "datapoints", age=AgeExpr.const(0),
                    dims=(Dim.of("x"), Dim.all()),
                ),
                FetchSpec("centroids", "centroids"),
            ),
            stores=(StoreSpec("assignments", dims=(Dim.of("x"),)),),
            age_limit=iterations - 1,
        )
        refine = KernelDef(
            name="refine",
            body=refine_body,
            has_age=True,
            index_vars=("c",),
            fetches=(
                FetchSpec("assignments", "assignments"),
                FetchSpec(
                    "points", "datapoints", age=AgeExpr.const(0)
                ),
                FetchSpec(
                    "centroid", "centroids",
                    dims=(Dim.of("c"), Dim.all()),
                ),
            ),
            stores=(
                StoreSpec(
                    "centroids", age=AgeExpr.var(1),
                    dims=(Dim.of("c"), Dim.all()),
                ),
            ),
            age_limit=iterations - 1,
        )
        fields.append(
            FieldDef("assignments", "int32", 1, aging=True, shape=(n,))
        )

    # refine's centroid rows land in ages 1..iterations; its own count
    # domain for variable c is bound by the centroids fetch.
    program = Program.build(
        fields=fields,
        kernels=[init, assign, refine, prnt],
        name=f"kmeans-{granularity}",
    )
    if vectorize:
        vectorize_program(program)

    def on_output(kernel, age, index, key, value) -> None:
        if key == "centroids":
            result.history[age] = value

    program.set_output_handler(on_output)
    return program, result


def kmeans_baseline(
    n: int = 2000,
    k: int = 100,
    dims: int = 2,
    iterations: int = 10,
    seed: int = 42,
) -> KMeansResult:
    """Sequential Lloyd's iteration with the same data, initialization
    and empty-cluster rule as the P2G program — the ground truth for the
    equivalence tests and the single-threaded comparator for figure 10.
    """
    points, perm = generate_dataset(n, dims, seed)
    centroids = _initial_centroids(points, k, perm)
    result = KMeansResult()
    result.history[0] = centroids.copy()
    for it in range(iterations):
        d = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        owner = np.argmin(d, axis=1)
        nxt = centroids.copy()
        for c in range(k):
            nxt[c] = _refine_mean(points, owner, centroids[c], c)
        centroids = nxt
        result.history[it + 1] = centroids.copy()
    return result
