"""Motion JPEG encoding as a P2G program (paper figure 8, section VII-B).

Kernel structure follows the paper exactly:

* ``read`` (read + splitYUV): an aged source kernel that reads one YUV
  frame per age and stores its three components to the global fields
  ``y_input``, ``u_input``, ``v_input``.  "The read loop ends when the
  kernel stops storing to the next age, e.g., at the end of the file" —
  at EOF the body emits nothing, so with 50 frames the kernel runs 51
  times but encodes 50 (table II's read/splityuv row).
* ``ydct``/``udct``/``vdct``: one kernel per component, each instance
  fetching a single 8x8 macro-block, applying the DCT and quantization,
  and storing the quantized block to the matching result field.  At CIF
  resolution this yields 1584 luma and 396+396 chroma instances per age
  (the 4:2:0 geometry behind table II's counts; the paper's prose says
  "4:2:2" but its numbers — 396 = 1584/4 — are 4:2:0, which is what we
  implement).
* ``vlc`` (VLC + write): fetches the three whole result fields of an age
  and entropy-codes them into a complete JPEG, appended to the MJPEG
  stream.  Frames may finish out of order under parallel execution; the
  sink keys them by age and reassembles the stream in order.

The produced stream is a real MJPEG file: every frame decodes with
:func:`repro.media.decode_jpeg` and is PSNR-checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Sequence

import numpy as np

from ..core import (
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    tag_vectorizable,
    vectorize_program,
)
from ..media.jpeg import (
    encode_from_quantized,
    pad_plane,
    plane_to_blocks,
    qtables_for_quality,
    quantize_plane,
)
from ..media.dct import dct2_blocks
from ..media.quant import quantize
from ..media.yuv import YUVFrame, synthetic_sequence

__all__ = [
    "MJPEGConfig",
    "MJPEGSink",
    "build_mjpeg",
    "build_mjpeg_stream",
    "mjpeg_baseline",
]


@dataclass(frozen=True)
class MJPEGConfig:
    """Parameters of an MJPEG encode run.

    Defaults are the paper's evaluation settings (*Foreman*-like CIF,
    50 frames) except ``dct_method``: the paper used a naive DCT in C;
    in Python the naive quadruple loop is reserved for micro-benchmarks
    and the separable matrix DCT is the practical default.  ``"aan"``
    selects the FastDCT of the paper's reference [2].
    """

    width: int = 352
    height: int = 288
    frames: int = 50
    quality: int = 75
    dct_method: str = "matrix"  # "naive" | "matrix" | "aan"
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError(
                "width/height must be multiples of 16 (4:2:0 MCU size); "
                "use repro.media.pad_plane for arbitrary input"
            )

    @property
    def luma_blocks(self) -> int:
        """Luma macro-blocks per frame (1584 at CIF)."""
        return (self.height // 8) * (self.width // 8)

    @property
    def chroma_blocks(self) -> int:
        """Chroma macro-blocks per component per frame (396 at CIF)."""
        return (self.height // 16) * (self.width // 16)


@dataclass
class MJPEGSink:
    """Collects per-age encoded frames and reassembles the stream.

    Live runs may *degrade* a late age to a frame-freeze instead of
    encoding it (:meth:`mark_frozen`): the stream repeats the previous
    encoded frame at that position, preserving frame timing.  A frozen
    age with no predecessor (nothing encoded yet) is silently dropped.
    With no frozen ages the output is exactly the batch encoder's
    byte stream.
    """

    config: MJPEGConfig
    frames: dict[int, bytes] = dc_field(default_factory=dict)
    frozen: set[int] = dc_field(default_factory=set)

    def mark_frozen(self, age: int) -> None:
        """Record that ``age`` was degraded to a repeat of its
        predecessor (the stream driver's QoS ``degrade`` action)."""
        self.frozen.add(age)

    def _ordered(self) -> list[bytes]:
        out: list[bytes] = []
        prev: bytes | None = None
        for a in sorted(set(self.frames) | self.frozen):
            data = self.frames.get(a, prev)
            if data is None:
                continue  # frozen before any frame was encoded
            out.append(data)
            prev = data
        return out

    def stream(self) -> bytes:
        """Concatenated JPEGs in age order (the MJPEG file), frozen
        ages resolved to their predecessor's bytes."""
        return b"".join(self._ordered())

    def frame_count(self) -> int:
        """Frames the stream will contain (encoded + resolvable
        frozen)."""
        return len(self._ordered())


def build_mjpeg(
    frames: Sequence[YUVFrame] | None = None,
    config: MJPEGConfig = MJPEGConfig(),
    vectorize: bool = True,
) -> tuple[Program, MJPEGSink]:
    """Build the figure-8 MJPEG program.

    ``frames`` defaults to the synthetic sequence of ``config.frames``
    frames.  Run with ``run_program(program, workers)``; termination is
    natural (the read kernel stops storing at end of input).

    ``vectorize`` attaches a batched DCT/quant implementation to the
    three dct kernels, used by batched dispatch (``batch > 1``) to
    transform a whole run of macro-blocks in one NumPy call —
    byte-identical output; ``False`` to opt out.
    """
    if frames is None:
        frames = synthetic_sequence(
            config.frames, config.width, config.height, config.seed
        )
    frames = list(frames)
    for f in frames:
        if (f.width, f.height) != (config.width, config.height):
            raise ValueError(
                f"frame size {f.width}x{f.height} does not match config "
                f"{config.width}x{config.height}"
            )

    def read_body(ctx: KernelContext) -> None:
        if ctx.age >= len(frames):
            return  # EOF: store nothing, ending the read loop
        f = frames[ctx.age]
        ctx.emit("y_input", f.y)
        ctx.emit("u_input", f.u)
        ctx.emit("v_input", f.v)

    read = KernelDef(
        name="read",
        body=read_body,
        has_age=True,
        stores=(
            StoreSpec("y_input", key="y_input"),
            StoreSpec("u_input", key="u_input"),
            StoreSpec("v_input", key="v_input"),
        ),
    )
    return _encode_program(config, read=read, vectorize=vectorize)


def _encode_program(
    config: MJPEGConfig, read: KernelDef | None, vectorize: bool = True
) -> tuple[Program, MJPEGSink]:
    """The DCT/quant/VLC pipeline shared by batch and live builds.

    With ``read`` the program is self-driving (figure 8 exactly);
    without it the input fields have no producer kernel and ages are
    created by externally injected stores — the streaming runtime's
    delivery path.
    """
    qy, qc = qtables_for_quality(config.quality)
    sink = MJPEGSink(config)
    method = config.dct_method

    def dct_body_for(qtable: np.ndarray):
        def dct_body(ctx: KernelContext) -> None:
            block = ctx["block"].astype(np.float64) - 128.0
            coeffs = dct2_blocks(block, method=method)
            ctx.emit("out", quantize(coeffs, qtable))

        # Vectorizable: dct2_blocks already takes (..., 8, 8) stacks
        # with per-block-identical arithmetic, quantize is elementwise.
        return tag_vectorizable(
            dct_body, "dct_quant_8x8", qtable=qtable, method=method
        )

    def vlc_body(ctx: KernelContext) -> None:
        yq = plane_to_blocks(ctx["y"])
        uq = plane_to_blocks(ctx["u"])
        vq = plane_to_blocks(ctx["v"])
        # Out-of-band: the encoded frame leaves the field model.  The
        # runtime delivers it to the program's output handler in the
        # parent process, so the sink fills identically on both the
        # threads and the processes backend.
        ctx.output(
            "frame",
            encode_from_quantized(
                yq, uq, vq, config.width, config.height, qy, qc
            ),
        )

    luma_shape = (config.height, config.width)
    chroma_shape = (config.height // 2, config.width // 2)
    block_dims = (Dim.of("by", 8), Dim.of("bx", 8))

    def dct_kernel(name: str, src: str, dst: str, qtable) -> KernelDef:
        return KernelDef(
            name=name,
            body=dct_body_for(qtable),
            has_age=True,
            index_vars=("by", "bx"),
            fetches=(FetchSpec("block", src, dims=block_dims),),
            stores=(StoreSpec(dst, dims=block_dims, key="out"),),
        )

    vlc = KernelDef(
        name="vlc",
        body=vlc_body,
        has_age=True,
        fetches=(
            FetchSpec("y", "y_result"),
            FetchSpec("u", "u_result"),
            FetchSpec("v", "v_result"),
        ),
    )
    kernels = [
        dct_kernel("ydct", "y_input", "y_result", qy),
        dct_kernel("udct", "u_input", "u_result", qc),
        dct_kernel("vdct", "v_input", "v_result", qc),
        vlc,
    ]
    if read is not None:
        kernels.insert(0, read)
    program = Program.build(
        fields=[
            FieldDef("y_input", "uint8", 2, shape=luma_shape),
            FieldDef("u_input", "uint8", 2, shape=chroma_shape),
            FieldDef("v_input", "uint8", 2, shape=chroma_shape),
            FieldDef("y_result", "int32", 2, shape=luma_shape),
            FieldDef("u_result", "int32", 2, shape=chroma_shape),
            FieldDef("v_result", "int32", 2, shape=chroma_shape),
        ],
        kernels=kernels,
        name="mjpeg",
    )
    if vectorize:
        vectorize_program(program)

    def on_output(kernel, age, index, key, value) -> None:
        if key == "frame":
            sink.frames[age] = value

    program.set_output_handler(on_output)
    return program, sink


def _store_yuv_frame(fields, age: int, frame: YUVFrame) -> list:
    """Store one frame's planes into the input fields; returns the
    store events to inject (the :class:`StreamBinding` glue)."""
    from ..core.events import StoreEvent

    events = []
    for name, plane in (
        ("y_input", frame.y),
        ("u_input", frame.u),
        ("v_input", frame.v),
    ):
        region = tuple(slice(0, n) for n in plane.shape)
        fields[name].store(age, region, plane)
        events.append(StoreEvent(name, age, region))
    return events


def build_mjpeg_stream(
    config: MJPEGConfig = MJPEGConfig(),
    stream: "StreamConfig | None" = None,
    source: "FrameSource | None" = None,
    vectorize: bool = True,
):
    """Build the live-encoder variant of the figure-8 MJPEG program.

    The ``read`` kernel is replaced by a
    :class:`~repro.stream.StreamBinding`: frames come from ``source``
    (default: the infinite synthetic camera, frame-for-frame identical
    to the batch clip) and are injected as new ages by the stream
    driver, under the pacing/backpressure/QoS knobs in ``stream``.

    Returns ``(program, sink, binding)``; run with
    ``run_program(program, stream=binding)``.
    """
    from ..stream import StreamBinding, StreamConfig, SyntheticSource

    if stream is None:
        stream = StreamConfig()
    if source is None:
        source = SyntheticSource(config.width, config.height, config.seed)
    program, sink = _encode_program(config, read=None,
                                    vectorize=vectorize)
    binding = StreamBinding(
        source=source,
        store_frame=_store_yuv_frame,
        completion_key="frame",
        config=stream,
        on_degrade=sink.mark_frozen,
    )
    return program, sink, binding


def mjpeg_baseline(
    frames: Sequence[YUVFrame] | None = None,
    config: MJPEGConfig = MJPEGConfig(),
) -> bytes:
    """The standalone single-threaded MJPEG encoder the paper compares
    against ("the standalone single threaded MJPEG encoder on which the
    P2G version is based"): one sequential pass, same DCT/quant/VLC code
    as the kernels, no framework."""
    if frames is None:
        frames = synthetic_sequence(
            config.frames, config.width, config.height, config.seed
        )
    qy, qc = qtables_for_quality(config.quality)
    out = bytearray()
    for f in frames:
        yq = quantize_plane(pad_plane(f.y, 16), qy, config.dct_method)
        uq = quantize_plane(pad_plane(f.u, 8), qc, config.dct_method)
        vq = quantize_plane(pad_plane(f.v, 8), qc, config.dct_method)
        out += encode_from_quantized(
            yq, uq, vq, f.width, f.height, qy, qc
        )
    return bytes(out)
