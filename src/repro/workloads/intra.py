"""Intra-frame prediction with wavefront dependencies.

The paper motivates P2G's combined data/task parallelism with exactly
this workload: "Intra-frame prediction in H.264 AVC, for example,
introduces many dependencies between sub-blocks of a frame, and
together with other overlapping processing stages, these operations
have a high potential for benefiting from both types of parallelism"
(section III).

This module implements a simplified DC-mode intra codec: each 8x8 block
is predicted from its *reconstructed* left and top neighbours (the
right-most column / bottom row, as H.264 DC prediction uses), the
residual is quantized, and the block is reconstructed — so block
(by, bx) depends on blocks (by, bx-1) and (by-1, bx) *of the same age*.
Expressed with shrink-boundary stencil fetches on the kernel's own
output field, the dependency analyzer discovers the anti-diagonal
wavefront automatically: block (0,0) starts immediately (its neighbour
fetches are empty), and parallelism grows to the frame's diagonal
width with zero scheduling code in the workload.

:func:`intra_baseline` is the sequential raster-order reference; the
P2G version must reconstruct bit-identically (the computation is
confluent — each block's inputs are fixed regardless of execution
order), which the tests assert per worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Sequence

import numpy as np

from ..core import (
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
)
from ..media.yuv import YUVFrame, psnr, synthetic_sequence

__all__ = ["IntraConfig", "IntraSink", "build_intra", "intra_baseline",
           "predict_and_reconstruct"]


@dataclass(frozen=True)
class IntraConfig:
    """Parameters of an intra-coding run."""

    width: int = 128
    height: int = 96
    frames: int = 2
    qstep: int = 8  #: residual quantization step
    seed: int = 77

    def __post_init__(self) -> None:
        if self.width % 8 or self.height % 8:
            raise ValueError("width/height must be multiples of 8")

    @property
    def blocks(self) -> tuple[int, int]:
        """(rows, cols) of 8x8 blocks per frame."""
        return self.height // 8, self.width // 8


def predict_and_reconstruct(
    cur: np.ndarray,
    left: np.ndarray | None,
    top: np.ndarray | None,
    qstep: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One block's DC prediction + residual quantization.

    ``left``/``top`` are the reconstructed neighbour blocks (or None /
    empty when absent).  Returns (reconstructed block, quantized
    residual levels) — shared verbatim by the P2G kernel and the
    sequential baseline so both compute bit-identically.
    """
    refs = []
    if left is not None and left.size:
        refs.append(left[:, -1].astype(np.float64))  # right-most column
    if top is not None and top.size:
        refs.append(top[-1, :].astype(np.float64))  # bottom row
    if refs:
        pred = float(np.mean(np.concatenate(refs)))
    else:
        pred = 128.0
    residual = cur.astype(np.float64) - pred
    levels = np.round(residual / qstep).astype(np.int32)
    recon = np.clip(np.round(pred + levels * qstep), 0, 255)
    return recon.astype(np.uint8), levels


@dataclass
class IntraSink:
    """Per-age reconstruction results."""

    config: IntraConfig
    recon: dict[int, np.ndarray] = dc_field(default_factory=dict)
    quality: dict[int, float] = dc_field(default_factory=dict)

    def mean_psnr(self) -> float:
        """Mean luma PSNR across the reconstructed frames."""
        return sum(self.quality.values()) / len(self.quality)


def build_intra(
    frames: Sequence[np.ndarray] | None = None,
    config: IntraConfig = IntraConfig(),
) -> tuple[Program, IntraSink]:
    """Build the wavefront intra-coding program.

    ``frames`` are luma planes (uint8, config geometry); defaults to the
    synthetic clip's luma.
    """
    if frames is None:
        frames = [
            f.y for f in synthetic_sequence(
                config.frames, config.width, config.height, config.seed
            )
        ]
    frames = [np.asarray(f, dtype=np.uint8) for f in frames]
    for f in frames:
        if f.shape != (config.height, config.width):
            raise ValueError(
                f"frame shape {f.shape} does not match config "
                f"{(config.height, config.width)}"
            )
    sink = IntraSink(config)
    qstep = config.qstep
    plane_shape = (config.height, config.width)

    def read_body(ctx: KernelContext) -> None:
        if ctx.age >= len(frames):
            return
        ctx.emit("y_input", frames[ctx.age])

    def intra_body(ctx: KernelContext) -> None:
        cur = ctx["cur"]
        left = ctx["left"]
        top = ctx["top"]
        recon, levels = predict_and_reconstruct(cur, left, top, qstep)
        ctx.emit("recon", recon)
        ctx.emit("levels", levels)

    def quality_body(ctx: KernelContext) -> None:
        sink.recon[ctx.age] = ctx["r"].copy()
        sink.quality[ctx.age] = psnr(ctx["r"], frames[ctx.age])

    block = 8
    read = KernelDef(
        "read", read_body, has_age=True,
        stores=(StoreSpec("y_input", key="y_input"),),
    )
    intra = KernelDef(
        "intra", intra_body, has_age=True, index_vars=("by", "bx"),
        fetches=(
            FetchSpec("cur", "y_input",
                      dims=(Dim.of("by", block), Dim.of("bx", block))),
            # reconstructed left/top neighbours of the SAME age — the
            # wavefront; absent at the frame border (shrink => empty)
            FetchSpec("left", "recon",
                      dims=(Dim.of("by", block),
                            Dim.of("bx", block, -block, "shrink"))),
            FetchSpec("top", "recon",
                      dims=(Dim.of("by", block, -block, "shrink"),
                            Dim.of("bx", block))),
        ),
        stores=(
            StoreSpec("recon", dims=(Dim.of("by", block),
                                     Dim.of("bx", block)), key="recon"),
            StoreSpec("levels", dims=(Dim.of("by", block),
                                      Dim.of("bx", block)), key="levels"),
        ),
    )
    quality = KernelDef(
        "quality", quality_body, has_age=True,
        fetches=(FetchSpec("r", "recon"),),
    )
    program = Program.build(
        fields=[
            FieldDef("y_input", "uint8", 2, shape=plane_shape),
            FieldDef("recon", "uint8", 2, shape=plane_shape),
            FieldDef("levels", "int32", 2, shape=plane_shape),
        ],
        kernels=[read, intra, quality],
        name="intra",
    )
    return program, sink


def intra_baseline(
    frames: Sequence[np.ndarray] | None = None,
    config: IntraConfig = IntraConfig(),
) -> list[np.ndarray]:
    """Sequential raster-order reference reconstruction."""
    if frames is None:
        frames = [
            f.y for f in synthetic_sequence(
                config.frames, config.width, config.height, config.seed
            )
        ]
    out = []
    bh, bw = config.blocks
    for plane in frames:
        plane = np.asarray(plane, dtype=np.uint8)
        recon = np.zeros_like(plane)
        for by in range(bh):
            for bx in range(bw):
                cur = plane[by * 8:(by + 1) * 8, bx * 8:(bx + 1) * 8]
                left = (recon[by * 8:(by + 1) * 8,
                              (bx - 1) * 8:bx * 8] if bx else None)
                top = (recon[(by - 1) * 8:by * 8,
                             bx * 8:(bx + 1) * 8] if by else None)
                rec, _levels = predict_and_reconstruct(
                    cur, left, top, config.qstep
                )
                recon[by * 8:(by + 1) * 8, bx * 8:(bx + 1) * 8] = rec
        out.append(recon)
    return out
