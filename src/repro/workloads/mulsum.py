"""The paper's running example: ``init``/``mul2``/``plus5``/``print``.

Figure 5 of the paper defines two 1-dimensional, 5-element fields and
four kernels forming a cycle:

* ``init`` runs once and stores ``{10, 11, 12, 13, 14}`` to
  ``m_data(0)``;
* ``mul2`` fetches one element of ``m_data(a)``, doubles it, stores it to
  ``p_data(a)``;
* ``plus5`` fetches one element of ``p_data(a)``, adds five, stores it to
  ``m_data(a+1)`` — closing the cycle at the next age;
* ``print`` fetches both whole fields per age and writes them out.

The paper states the exact observable series: the print kernel writes
``{10, 11, 12, 13, 14}, {20, 22, 24, 26, 28}`` for the first age and
``{25, 27, 29, 31, 33}, {50, 54, 58, 62, 66}`` for the second, and so on,
indefinitely.  :func:`expected_series` computes that reference series so
tests can check the runtime against the paper's published values.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..core import (
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    tag_vectorizable,
    vectorize_program,
)

DEFAULT_VALUES = (10, 11, 12, 13, 14)


def build_mulsum(
    values: Sequence[int] = DEFAULT_VALUES,
    sink: dict[int, tuple[np.ndarray, np.ndarray]] | None = None,
    echo: Callable[[str], None] | None = None,
    modulo: int | None = None,
    vectorize: bool = True,
) -> tuple[Program, dict[int, tuple[np.ndarray, np.ndarray]]]:
    """Build the figure-5 program.

    Parameters
    ----------
    values:
        Initial contents of ``m_data(0)`` (the paper uses 10..14).
    sink:
        Optional dict to collect ``print`` output into, keyed by age
        (each worker writes a distinct key, so no extra locking is
        needed).  A fresh dict is created when omitted.
    echo:
        Optional callable receiving the formatted lines ``print`` would
        write to ``cout`` (handy for the quickstart example).
    modulo:
        Optional wrap-around applied after each operation.  The series
        doubles every age, so an unbounded run (the paper's program "runs
        indefinitely") eventually exceeds int64; long-running tests pass
        a modulus to keep arithmetic exact forever.
    vectorize:
        Attach vectorized ``batch_body`` implementations to ``mul2`` and
        ``plus5`` (the ``affine_int`` pattern), used by batched dispatch
        (``batch > 1``) to run a whole run of instances in one NumPy
        call.  Byte-identical to the scalar path; ``False`` is the
        escape hatch.

    Returns
    -------
    (program, sink)
        Run with ``run_program(program, workers, max_age=N)`` — the
        program has no termination condition, exactly as in the paper, so
        a ``max_age`` bound (or ``stop()``) is required.
    """
    collected: dict[int, tuple[np.ndarray, np.ndarray]] = (
        sink if sink is not None else {}
    )
    init_values = np.asarray(list(values), dtype=np.int64)

    def init_body(ctx: KernelContext) -> None:
        local = ctx.local("int64", 1)
        for i, v in enumerate(init_values):
            local.put(int(v) + 0, i)  # put(values, i+10, i) in the paper
        ctx.emit("m_data", local.data)

    def mul2_body(ctx: KernelContext) -> None:
        value = ctx["value"]
        value *= 2
        if modulo is not None:
            value %= modulo
        ctx.emit("p_data", value)

    tag_vectorizable(mul2_body, "affine_int", mul=2, add=0,
                     modulo=modulo)

    def plus5_body(ctx: KernelContext) -> None:
        value = ctx["value"]
        value += 5
        if modulo is not None:
            value %= modulo
        ctx.emit("m_data", value)

    tag_vectorizable(plus5_body, "affine_int", mul=1, add=5,
                     modulo=modulo)

    def print_body(ctx: KernelContext) -> None:
        m = ctx["m"]
        p = ctx["p"]
        collected[ctx.age] = (m.copy(), p.copy())
        if echo is not None:
            echo(" ".join(str(int(x)) for x in m))
            echo(" ".join(str(int(x)) for x in p))

    init = KernelDef(
        name="init",
        body=init_body,
        stores=(StoreSpec("m_data", age=_const0()),),
    )
    mul2 = KernelDef(
        name="mul2",
        body=mul2_body,
        has_age=True,
        index_vars=("x",),
        fetches=(
            FetchSpec("value", "m_data", dims=(Dim.of("x"),), scalar=True),
        ),
        stores=(StoreSpec("p_data", dims=(Dim.of("x"),)),),
    )
    plus5 = KernelDef(
        name="plus5",
        body=plus5_body,
        has_age=True,
        index_vars=("x",),
        fetches=(
            FetchSpec("value", "p_data", dims=(Dim.of("x"),), scalar=True),
        ),
        stores=(
            StoreSpec("m_data", age=_age_plus1(), dims=(Dim.of("x"),)),
        ),
    )
    prnt = KernelDef(
        name="print",
        body=print_body,
        has_age=True,
        fetches=(
            FetchSpec("m", "m_data"),
            FetchSpec("p", "p_data"),
        ),
    )
    program = Program.build(
        fields=[
            FieldDef("m_data", "int64", 1, aging=True),
            FieldDef("p_data", "int64", 1, aging=True),
        ],
        kernels=[init, mul2, plus5, prnt],
        name="mulsum",
    )
    if vectorize:
        vectorize_program(program)
    return program, collected


def _const0():
    from ..core import AgeExpr

    return AgeExpr.const(0)


def _age_plus1():
    from ..core import AgeExpr

    return AgeExpr.var(1)


def expected_series(
    ages: int,
    values: Sequence[int] = DEFAULT_VALUES,
    modulo: int | None = None,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Reference semantics of the figure-5 program.

    Fields are int64 (the paper uses int32; the values double every age,
    so 64-bit keeps long runs exact).

    Returns per age ``(m_data, p_data)``; age 0 is
    ``({10..14}, {20,22,24,26,28})`` for the default values, matching the
    series printed in the paper.
    """
    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    m = np.asarray(list(values), dtype=np.int64)
    for a in range(ages):
        p = m * 2
        if modulo is not None:
            p = p % modulo
        out[a] = (m.copy(), p.copy())
        m = p + 5
        if modulo is not None:
            m = m % modulo
    return out
