"""Exception hierarchy for the P2G runtime.

Every error raised by :mod:`repro` derives from :class:`P2GError` so callers
can catch framework failures without masking unrelated bugs.
"""

from __future__ import annotations


class P2GError(Exception):
    """Base class for all P2G framework errors."""


class FieldError(P2GError):
    """Base class for field-related errors."""


class WriteOnceViolation(FieldError):
    """An element of a field was stored more than once for the same age.

    P2G's determinism rests on write-once semantics (section III of the
    paper): a position in a field may be written at most once per age.
    """

    def __init__(self, field: str, age: int, index) -> None:
        super().__init__(
            f"write-once violation: field {field!r} age={age} index={index} "
            f"was already written"
        )
        self.field = field
        self.age = age
        self.index = index


class ExtentError(FieldError):
    """A fetch or store referenced indices outside a field's extent in a
    way that cannot be satisfied by implicit resizing (e.g. negative
    indices or mismatched dimensionality)."""


class AgeError(FieldError):
    """An operation referenced a negative or otherwise invalid age."""


class CollectedAgeError(FieldError):
    """A fetch referenced an age that the garbage collector already freed."""

    def __init__(self, field: str, age: int) -> None:
        super().__init__(
            f"field {field!r} age={age} has been garbage-collected; "
            f"increase keep_ages or disable GC"
        )
        self.field = field
        self.age = age


class KernelError(P2GError):
    """Base class for kernel-definition errors."""


class DefinitionError(KernelError):
    """A kernel or field definition is malformed (unknown field, duplicate
    names, inconsistent index variables, ...)."""


class KernelBodyError(KernelError):
    """A kernel body raised an exception at run time.

    Wraps the original exception so the scheduler can report which
    instance failed without losing the traceback.
    """

    def __init__(self, kernel: str, age, index, cause: BaseException) -> None:
        super().__init__(
            f"kernel {kernel!r} instance (age={age}, index={index}) raised "
            f"{type(cause).__name__}: {cause}"
        )
        self.kernel = kernel
        self.age = age
        self.index = index
        self.cause = cause


class RuntimeStateError(P2GError):
    """The runtime was used in an invalid state (e.g. run() twice)."""


class WorkerProcessError(RuntimeStateError):
    """A worker process of the ``processes`` backend died unexpectedly.

    Raised by the parent runtime when a worker exits without sending a
    reply (segfault, ``os._exit``, OOM-kill, ...), so a crashed worker
    surfaces as a clean runtime error instead of a hang.
    """

    def __init__(self, worker_id: int, message: str) -> None:
        super().__init__(f"worker process {worker_id}: {message}")
        self.worker_id = worker_id


class SchedulerError(P2GError):
    """Low-level or high-level scheduler failure (invalid granularity,
    fusion of incompatible kernels, ...)."""


class PartitionError(P2GError):
    """The HLS graph partitioner received invalid input or produced an
    invalid partition."""


class LanguageError(P2GError):
    """Base class for kernel-language compilation errors."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        loc = ""
        if line is not None:
            loc = f" at line {line}" + (f", column {column}"
                                        if column is not None else "")
        super().__init__(message + loc)
        self.line = line
        self.column = column


class LexError(LanguageError):
    """Tokenization failed."""


class ParseError(LanguageError):
    """Parsing failed."""


class SemanticError(LanguageError):
    """Semantic analysis failed (undeclared identifiers, type errors,
    inconsistent age/index usage, ...)."""


class DeadlockError(P2GError):
    """The KPN baseline detected a deadlock (cycle in the wait-for graph)."""


class StallError(RuntimeStateError):
    """The quiescence counter made no progress for longer than the
    configured stall watchdog.

    Raised instead of hanging when a node (or the whole cluster) stops
    draining its work: outstanding work stays positive but no unit is
    retired.  Distinguishes a wedged run from a merely slow one — the
    watchdog interval must exceed the longest single kernel body.
    """

    def __init__(self, message: str, outstanding: int = 0) -> None:
        super().__init__(message)
        self.outstanding = outstanding


class NodeFailureError(P2GError):
    """A distributed run lost an execution node and could not recover.

    Raised by the cluster's recovery manager when the per-node restart
    budget is exhausted or no surviving node remains to host the dead
    node's kernels.  ``failures`` lists the (node, attempt) history so a
    chaos harness can dump a reproducible failure schedule.
    """

    def __init__(
        self, message: str, failures: list[tuple[str, int]] | None = None
    ) -> None:
        super().__init__(message)
        self.failures = failures or []


class TransportError(P2GError):
    """The distributed message transport failed to deliver a message."""


class TopologyError(P2GError):
    """Invalid topology description or node registration."""
