"""Online LLS adaptation: the policy-driver loop.

The paper's low-level scheduler changes data and task granularity *at
runtime* (section IV): the instrumentation data each execution node
gathers feeds back into the scheduler, which combines kernel instances
when dispatch overhead dominates.  The offline pieces already exist —
:func:`~repro.core.scheduler.coarsen` / :func:`~repro.core.scheduler.fuse`
rewrites and the :class:`~repro.core.scheduler.AdaptivePolicy` that
recommends them.  This module closes the loop while a program is
running:

* an :class:`AdaptationDriver` thread periodically snapshots the node's
  :class:`~repro.core.instrumentation.Instrumentation`;
* the *interval delta* of those stats (not whole-run averages — see
  :func:`~repro.core.instrumentation.delta_stats`) goes through the
  policy, which may recommend coarsen/fuse decisions;
* decisions are handed to
  :meth:`~repro.core.runtime.ExecutionNode.request_replan`, which makes
  the analyzer re-bind to the rewritten program at a safe age boundary
  (the swap epoch — see :mod:`.analyzer`).

The driver is deliberately dumb about *where* it runs: a single node
passes itself, while the distributed master composes one from three
callables (merged cluster stats, the master's tracked program, and a
broadcast apply), so the same loop drives both paths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .instrumentation import KernelStats, delta_stats
from .scheduler import AdaptivePolicy, decision_kernels


@dataclass
class AdaptationConfig:
    """Tuning for the online adaptation loop.

    ``interval`` is how often the driver polls the instrumentation;
    ``ratio_target`` / ``min_instances`` / ``max_factor`` parameterize
    the underlying :class:`~repro.core.scheduler.AdaptivePolicy`;
    ``fuse`` allows fusion decisions alongside coarsening; ``max_rounds``
    bounds how many swaps the driver may request in one run (adaptation
    should converge, not oscillate).
    """

    interval: float = 0.2
    ratio_target: float = 0.25
    min_instances: int = 64
    max_factor: int = 4096
    fuse: bool = True
    max_rounds: int = 4


class AdaptationDriver:
    """Background loop feeding instrumentation into the LLS policy.

    Parameters
    ----------
    config:
        The :class:`AdaptationConfig` thresholds.
    node:
        An :class:`~repro.core.runtime.ExecutionNode`; shorthand for
        ``stats_fn=node.instrumentation.stats``,
        ``program_fn=lambda: node.handle.current`` and
        ``apply_fn=node.request_replan``.
    stats_fn / program_fn / apply_fn:
        Explicit callables for composed setups (the cluster master).
        ``stats_fn()`` returns a ``{kernel: KernelStats}`` snapshot,
        ``program_fn()`` the current program version, and
        ``apply_fn(decisions)`` submits a batch (returning falsy when the
        target already shut down).

    :meth:`poll_once` is the whole decision step and is public so tests
    can drive adaptation deterministically without the timer thread.
    """

    def __init__(
        self,
        config: AdaptationConfig | None = None,
        *,
        node=None,
        stats_fn=None,
        program_fn=None,
        apply_fn=None,
        name: str = "adapt",
    ) -> None:
        self.config = config if config is not None else AdaptationConfig()
        if node is not None:
            stats_fn = stats_fn or node.instrumentation.stats
            program_fn = program_fn or (lambda: node.handle.current)
            apply_fn = apply_fn or node.request_replan
        if stats_fn is None or program_fn is None or apply_fn is None:
            raise TypeError(
                "AdaptationDriver needs a node or explicit "
                "stats_fn/program_fn/apply_fn"
            )
        self._stats_fn = stats_fn
        self._program_fn = program_fn
        self._apply_fn = apply_fn
        self.policy = AdaptivePolicy(
            ratio_target=self.config.ratio_target,
            min_instances=self.config.min_instances,
            max_factor=self.config.max_factor,
        )
        self.name = name
        self.rounds = 0  #: swap batches submitted so far
        self.decisions: list = []  #: every decision ever submitted
        self._last: dict[str, KernelStats] | None = None
        self._touched: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def poll_once(self) -> list:
        """One decision step: snapshot stats, diff against the previous
        snapshot, run the policy on the interval delta, submit anything
        new.  Returns the decisions submitted (empty most polls).

        Kernels already rewritten this run are left alone: the policy
        sees only post-swap deltas for them, but a second rewrite of the
        same kernel within a run adds little and risks oscillation —
        ``max_rounds`` applies across distinct kernels instead.
        """
        if self.rounds >= self.config.max_rounds:
            return []
        cur = self._stats_fn()
        delta = delta_stats(self._last, cur)
        self._last = cur
        if not delta:
            return []
        recs = self.policy.recommend(
            self._program_fn(), delta, fuse=self.config.fuse
        )
        fresh = [
            d for d in recs
            if not any(n in self._touched for n in decision_kernels(d))
        ]
        if not fresh:
            return []
        if not self._apply_fn(fresh):
            return []
        self.rounds += 1
        self.decisions.extend(fresh)
        for d in fresh:
            self._touched.update(decision_kernels(d))
        return fresh

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - advisory loop must not kill the run
                return
            if self.rounds >= self.config.max_rounds:
                return

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"{self.name}-driver"
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the polling thread (idempotent; safe as a teardown hook)."""
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=2.0)
