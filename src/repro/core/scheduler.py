"""The low-level scheduler (LLS): granularity control and kernel fusion.

Figure 4 of the paper shows the two knobs an execution node's LLS turns
to trade parallelism against per-instance overhead:

* **data granularity** (Age 1 → Age 2): make each instance fetch a
  coarser slice, reducing the number of instances — implemented by
  :func:`coarsen` (multiply a dimension's block size, wrap the body in a
  loop over the original sub-slices);
* **task granularity** (Age 2 → Age 3): combine kernels that form a
  pipeline, deferring (or eliding) the intermediate store — implemented
  by :func:`fuse`.

Applying both (Age 3 → Age 4) "renders the single kernel instance
effectively into a classical for-loop".

Both transformations are *program → program* rewrites: the analyzer,
runtime, graphs and simulator all operate on the transformed program
unchanged.  :class:`AdaptivePolicy` closes the loop the paper describes —
instrumentation showing a high dispatch/kernel-time ratio (K-means'
``assign``, table III) drives a coarsening recommendation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from .errors import SchedulerError
from .graph import final_graph
from .instrumentation import Instrumentation
from .kernels import (
    AgeExpr,
    Dim,
    FetchSpec,
    KernelContext,
    KernelDef,
    StoreSpec,
)
from .program import Program


# ----------------------------------------------------------------------
# Data-granularity reduction
# ----------------------------------------------------------------------
def _var_axis(dims: Sequence[Dim], var: str) -> int | None:
    """Axis where ``var`` appears (validated unique), or None."""
    axes = [i for i, d in enumerate(dims) if not d.is_all and d.var == var]
    if not axes:
        return None
    if len(axes) > 1:
        raise SchedulerError(
            f"index variable {var!r} appears in multiple dimensions of one "
            f"spec; coarsening is undefined"
        )
    return axes[0]


def coarsen(program: Program, kernel: str, var: str, factor: int) -> Program:
    """Multiply the block size of index variable ``var`` of ``kernel`` by
    ``factor``.

    The rewritten kernel's body loops over the original sub-blocks,
    slicing its coarse fetches and concatenating its sub-stores, so the
    observable field contents are identical — only the instance count
    (and thus dispatch overhead) changes.
    """
    if factor < 1:
        raise SchedulerError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return program
    k = program.kernels.get(kernel)
    if k is None:
        raise SchedulerError(f"unknown kernel {kernel!r}")
    if var not in k.index_vars:
        raise SchedulerError(
            f"kernel {kernel!r} has no index variable {var!r}"
        )
    for f in k.fetches:
        for d in f.dims:
            if not d.is_all and d.var == var and d.offset:
                raise SchedulerError(
                    f"kernel {kernel!r}: fetch {f.param!r} uses a stencil "
                    f"offset on {var!r}; coarsening stencil dimensions is "
                    f"not supported"
                )
    # Validate: every store must use var (otherwise the original program
    # already multi-stores the same region across var instances).
    for s in k.stores:
        if _var_axis(s.dims, var) is None and s.dims:
            raise SchedulerError(
                f"kernel {kernel!r}: store to {s.field!r} does not use "
                f"{var!r}; cannot coarsen"
            )

    fetch_axis = {
        f.param: _var_axis(f.dims, var) for f in k.fetches
    }
    fetch_block = {
        f.param: (f.dims[fetch_axis[f.param]].block
                  if fetch_axis[f.param] is not None else None)
        for f in k.fetches
    }
    fetch_scalar = {f.param: f.scalar for f in k.fetches}
    store_axis = {
        s.emit_key: _var_axis(s.dims, var) for s in k.stores
    }
    store_ndim = {s.emit_key: len(s.dims) for s in k.stores}
    inner_body = k.body

    def coarse_dims(dims: tuple[Dim, ...]) -> tuple[Dim, ...]:
        out = []
        for d in dims:
            if not d.is_all and d.var == var:
                out.append(Dim.of(var, d.block * factor))
            else:
                out.append(d)
        return tuple(out)

    new_fetches = tuple(
        FetchSpec(f.param, f.field, f.age, coarse_dims(f.dims),
                  scalar=False if fetch_axis[f.param] is not None
                  else f.scalar)
        for f in k.fetches
    )
    new_stores = tuple(
        StoreSpec(s.field, s.age, coarse_dims(s.dims), s.key)
        for s in k.stores
    )

    def coarse_body(ctx: KernelContext) -> None:
        # Number of original sub-blocks inside this coarse instance,
        # derived from the longest coarsened fetch.
        n_sub = 0
        for param, axis in fetch_axis.items():
            if axis is None:
                continue
            arr = np.asarray(ctx.fetched[param])
            b = fetch_block[param]
            n_sub = max(n_sub, math.ceil(arr.shape[axis] / b))
        if n_sub == 0:
            n_sub = factor
        collected: dict[str, list[Any]] = {}
        base = ctx.index.get(var, 0) * factor
        for j in range(n_sub):
            sub_fetched: dict[str, Any] = {}
            for param, axis in fetch_axis.items():
                value = ctx.fetched[param]
                if axis is None:
                    sub_fetched[param] = value
                    continue
                arr = np.asarray(value)
                b = fetch_block[param]
                sl = [slice(None)] * arr.ndim
                sl[axis] = slice(j * b, (j + 1) * b)
                sub = arr[tuple(sl)].copy()
                if fetch_scalar[param] and sub.size == 1:
                    sub_fetched[param] = sub.reshape(()).item()
                else:
                    sub_fetched[param] = sub
            sub_index = dict(ctx.index)
            sub_index[var] = base + j
            sub_ctx = KernelContext(
                age=ctx.age, index=sub_index, fetched=sub_fetched,
                timers=ctx.timers, node=ctx.node,
            )
            inner_body(sub_ctx)
            for key, value in sub_ctx.emitted.items():
                collected.setdefault(key, []).append(value)
        for key, values in collected.items():
            if len(values) != n_sub:
                raise SchedulerError(
                    f"coarsened kernel {kernel!r}: store {key!r} emitted by "
                    f"{len(values)}/{n_sub} sub-instances; conditional "
                    f"stores cannot be coarsened"
                )
            axis = store_axis.get(key)
            ndim = store_ndim.get(key, 1)
            arrs = []
            for v in values:
                a = np.asarray(v)
                if a.ndim < max(ndim, 1):
                    a = a.reshape((1,) * (max(ndim, 1) - a.ndim) + a.shape)
                arrs.append(a)
            ctx.emit(key, np.concatenate(arrs, axis=axis or 0))

    coarse = KernelDef(
        name=k.name,
        body=coarse_body,
        fetches=new_fetches,
        stores=new_stores,
        has_age=k.has_age,
        index_vars=k.index_vars,
        domain=k.domain,
        cost_hint=k.cost_hint * factor,
        age_limit=k.age_limit,
    )
    return program.replace_kernel(coarse)


# ----------------------------------------------------------------------
# Task-granularity reduction (pipeline fusion)
# ----------------------------------------------------------------------
def _pipe_candidates(
    program: Program, first: KernelDef, second: KernelDef
) -> list[tuple[StoreSpec, FetchSpec]]:
    """(store of first, fetch of second) pairs forming a same-age pipe."""
    pairs = []
    for s in first.stores:
        for f in second.fetches:
            if f.field != s.field:
                continue
            if s.age.literal is not None or f.age.literal is not None:
                continue
            if s.age.offset != f.age.offset:
                continue
            if len(s.dims) != len(f.dims):
                continue
            if any(
                (ds.is_all != df.is_all) or
                (not ds.is_all and (ds.block != df.block or df.offset))
                for ds, df in zip(s.dims, f.dims)
            ):
                continue
            pairs.append((s, f))
    return pairs


def fuse(
    program: Program,
    first: str,
    second: str,
    *,
    elide: bool | None = None,
    name: str | None = None,
) -> Program:
    """Fuse a producer/consumer pipeline into a single kernel.

    Requirements: ``second`` fetches a field ``first`` stores with the
    same age expression and identical index pattern (figure 4's Age 3
    decision is exactly this for ``mul2``→``plus5``).

    ``elide`` controls whether the intermediate store is skipped: default
    is to elide when no *other* kernel fetches the pipe field (the paper:
    "if the print kernel was not present, storing to the intermediate
    field could be circumvented in its entirety").
    """
    k1 = program.kernels.get(first)
    k2 = program.kernels.get(second)
    if k1 is None or k2 is None:
        raise SchedulerError(f"unknown kernel in fuse({first!r}, {second!r})")
    if k1.has_age != k2.has_age:
        raise SchedulerError("cannot fuse kernels with differing age use")
    pipes = _pipe_candidates(program, k1, k2)
    if not pipes:
        raise SchedulerError(
            f"kernels {first!r} and {second!r} do not form a same-age "
            f"pipeline with matching index patterns"
        )
    pipe_store, pipe_fetch = pipes[0]
    pipe_field = pipe_store.field

    other_consumers = [
        c for c in program.consumers_of(pipe_field) if c.name != second
    ]
    extra_pipe_fetches = [
        f for f in k2.fetches
        if f.field == pipe_field and f is not pipe_fetch
    ]
    can_elide = not other_consumers and not extra_pipe_fetches
    if elide is None:
        elide = can_elide
    elif elide and not can_elide:
        raise SchedulerError(
            f"cannot elide {pipe_field!r}: other consumers exist"
        )

    # Unify index variables: the pipe's matching dims identify second's
    # variables with first's; remaining second variables keep their names
    # (renamed on collision).
    rename: dict[str, str] = {}
    for ds, df in zip(pipe_store.dims, pipe_fetch.dims):
        if not ds.is_all:
            rename[df.var] = ds.var
    taken = set(k1.index_vars)
    for v in k2.index_vars:
        if v in rename:
            continue
        nv = v
        while nv in taken:
            nv = nv + "_2"
        rename[v] = nv
        taken.add(nv)

    def remap_dims(dims: tuple[Dim, ...]) -> tuple[Dim, ...]:
        return tuple(
            d if d.is_all else Dim.of(rename[d.var], d.block) for d in dims
        )

    param_clash = {f.param for f in k1.fetches} & {
        f.param for f in k2.fetches if f is not pipe_fetch
    }
    if param_clash:
        raise SchedulerError(
            f"cannot fuse: fetch param collision {sorted(param_clash)}"
        )
    fused_fetches = tuple(k1.fetches) + tuple(
        FetchSpec(f.param, f.field, f.age, remap_dims(f.dims), f.scalar)
        for f in k2.fetches if f is not pipe_fetch
    )
    k1_stores = tuple(
        s for s in k1.stores if not (elide and s is pipe_store)
    )
    k2_stores = tuple(
        StoreSpec(s.field, s.age, remap_dims(s.dims), s.key)
        for s in k2.stores
    )
    clash = {s.emit_key for s in k1_stores} & {s.emit_key for s in k2_stores}
    if clash:
        raise SchedulerError(
            f"cannot fuse: store key collision {sorted(clash)}"
        )

    index_vars = tuple(k1.index_vars) + tuple(
        rename[v] for v in k2.index_vars if rename[v] not in k1.index_vars
    )
    body1, body2 = k1.body, k2.body
    pipe_key = pipe_store.emit_key
    pipe_param = pipe_fetch.param
    pipe_scalar = pipe_fetch.scalar
    inv_rename = {v: u for u, v in rename.items()}

    def fused_body(ctx: KernelContext) -> None:
        ctx1 = KernelContext(
            age=ctx.age, index=ctx.index, fetched=ctx.fetched,
            timers=ctx.timers, node=ctx.node,
        )
        body1(ctx1)
        if pipe_key not in ctx1.emitted:
            raise SchedulerError(
                f"fused pipeline: {first!r} did not emit {pipe_key!r}"
            )
        pipe_value = ctx1.emitted[pipe_key]
        if pipe_scalar:
            arr = np.asarray(pipe_value)
            if arr.size == 1:
                pipe_value = arr.reshape(()).item()
        fetched2 = {pipe_param: pipe_value}
        for f in k2.fetches:
            if f is not pipe_fetch:
                fetched2[f.param] = ctx.fetched[f.param]
        index2 = {
            inv_rename.get(v, v): i for v, i in ctx.index.items()
        }
        ctx2 = KernelContext(
            age=ctx.age, index=index2, fetched=fetched2,
            timers=ctx.timers, node=ctx.node,
        )
        body2(ctx2)
        for key, value in ctx1.emitted.items():
            if elide and key == pipe_key:
                continue
            ctx.emit(key, value)
        for key, value in ctx2.emitted.items():
            ctx.emit(key, value)

    limits = [
        lim for lim in (k1.age_limit, k2.age_limit) if lim is not None
    ]
    fused = KernelDef(
        name=name or f"{first}+{second}",
        body=fused_body,
        fetches=fused_fetches,
        stores=k1_stores + k2_stores,
        has_age=k1.has_age,
        index_vars=index_vars,
        domain=dict(k1.domain or {}) or None,
        cost_hint=k1.cost_hint + k2.cost_hint,
        age_limit=min(limits) if limits else None,
    )
    out = program.without_kernels(first, second).with_kernel(fused)
    if elide:
        # Drop the pipe field when nothing references it any more.
        if not out.consumers_of(pipe_field) and not out.producers_of(
            pipe_field
        ):
            fields = {
                n: f for n, f in out.fields.items() if n != pipe_field
            }
            rebuilt = Program.build(
                fields.values(), out.kernels.values(), out.timers, out.name
            )
            rebuilt.output_handler = out.output_handler
            out = rebuilt
    return out


def fusable_pairs(program: Program) -> list[tuple[str, str]]:
    """Pipeline pairs the LLS could fuse, read off the final graph:
    same-age edges whose endpoints have matching index patterns and no
    competing consumers of the pipe field."""
    g = final_graph(program)
    out = []
    for u, v, attrs in g.edges():
        if u == v or attrs.get("age_delta") != 0:
            continue
        k1, k2 = program.kernels[u], program.kernels[v]
        if k1.has_age != k2.has_age:
            continue
        if _pipe_candidates(program, k1, k2):
            out.append((u, v))
    return out


# ----------------------------------------------------------------------
# Failure recovery: re-enqueueing in-flight instances
# ----------------------------------------------------------------------
def reenqueue(node, instances) -> int:
    """Re-enqueue a failed node's in-flight kernel instances onto a
    replacement node's ready queue; returns how many were enqueued.

    ``instances`` are the units frozen or abandoned at the dead node's
    fail-stop boundary (never started, so never stored).  Instances whose
    kernel the replacement does not own are skipped.  Duplication with
    the replacement's own analyzer-driven dispatch is harmless: dispatch
    is keyed per (kernel, age, index) in the analyzer, and a recovery
    node skip-stores already-complete regions, so a doubly enqueued
    instance at worst re-runs an idempotent body.
    """
    n = 0
    for inst in instances:
        if inst.kernel.name not in node.program.kernels:
            continue
        node._inc()
        node.ready.push(inst)
        n += 1
    return n


# ----------------------------------------------------------------------
# Adaptive policy
# ----------------------------------------------------------------------
#: Largest factor :meth:`GranularityDecision.apply` accepts.  Decisions
#: come from instrumentation arithmetic; a factor beyond this is a
#: corrupted or nonsensical measurement, not a plausible plan.
MAX_DECISION_FACTOR = 1 << 20


@dataclass(frozen=True)
class GranularityDecision:
    """One LLS decision: coarsen ``kernel``'s ``var`` by ``factor``."""

    kernel: str
    var: str
    factor: int

    def apply(self, program: Program) -> Program:
        """Apply this decision to a program (returns the rewrite).

        Validates the factor before rewriting: the policy only ever
        produces power-of-two factors in ``[1, MAX_DECISION_FACTOR]``,
        so anything else reaching apply means the decision was built by
        hand (or corrupted in transit) and is rejected with a
        :class:`SchedulerError` rather than silently producing an
        unexpected decomposition.  Note :func:`coarsen` itself accepts
        any factor ≥ 1 — the restriction is on *decisions*, the values
        that flow through the online adaptation path.
        """
        f = self.factor
        if (
            not isinstance(f, int)
            or isinstance(f, bool)
            or f < 1
            or f > MAX_DECISION_FACTOR
        ):
            raise SchedulerError(
                f"GranularityDecision({self.kernel!r}, {self.var!r}): "
                f"factor {f!r} out of range; expected an int in "
                f"[1, {MAX_DECISION_FACTOR}]"
            )
        if f & (f - 1):
            raise SchedulerError(
                f"GranularityDecision({self.kernel!r}, {self.var!r}): "
                f"factor {f} is not a power of two"
            )
        return coarsen(program, self.kernel, self.var, self.factor)


@dataclass(frozen=True)
class FusionDecision:
    """One LLS decision: fuse the ``first``→``second`` pipeline."""

    first: str
    second: str

    def apply(self, program: Program) -> Program:
        """Apply this decision to a program (returns the rewrite)."""
        return fuse(program, self.first, self.second)


def decision_kernels(decision) -> tuple[str, ...]:
    """The kernel names a decision rewrites (removes/replaces)."""
    if isinstance(decision, FusionDecision):
        return (decision.first, decision.second)
    return (decision.kernel,)


def apply_decisions(program: Program, decisions: Sequence) -> Program:
    """Apply a batch of LLS decisions in order.  Also runs inside worker
    processes: a live swap ships the (picklable) decisions over the pipe
    and each worker re-derives the identical rewritten program."""
    for d in decisions:
        program = d.apply(program)
    return program


def coarsenable_vars(kernel: KernelDef) -> list[str]:
    """Index variables :func:`coarsen` can legally operate on.

    A variable qualifies when it is actually bound by at least one fetch
    or store dimension (a kernel whose only real parallel axis is the
    age dimension has none — coarsening it would change nothing but the
    loop wrapper), no fetch uses a stencil offset on it, and every
    dimensioned store uses it (coarsen's own preconditions).
    """
    out: list[str] = []
    for var in kernel.index_vars:
        bound = False
        ok = True
        for f in kernel.fetches:
            for d in f.dims:
                if d.is_all or d.var != var:
                    continue
                bound = True
                if d.offset:
                    ok = False
        for s in kernel.stores:
            try:
                axis = _var_axis(s.dims, var)
            except SchedulerError:
                ok = False
                continue
            if axis is None:
                if s.dims:
                    ok = False
            else:
                bound = True
        if ok and bound:
            out.append(var)
    return out


class AdaptivePolicy:
    """Instrumentation-driven granularity adaptation.

    A kernel whose dispatch overhead exceeds ``ratio_target`` of its
    total per-instance cost gets its first index variable coarsened by
    the power-of-two factor that brings the expected ratio back to the
    target: with per-instance dispatch ``d`` and kernel time ``t``, a
    factor ``f`` yields ratio ``d / (d + f·t)``.
    """

    def __init__(
        self,
        ratio_target: float = 0.25,
        min_instances: int = 64,
        max_factor: int = 4096,
    ) -> None:
        if not 0 < ratio_target < 1:
            raise SchedulerError("ratio_target must be in (0, 1)")
        self.ratio_target = ratio_target
        self.min_instances = min_instances
        self.max_factor = max_factor

    def recommend(
        self,
        program: Program,
        instrumentation,
        *,
        fuse: bool = False,
    ) -> list:
        """LLS decisions for kernels whose dispatch ratio is too high.

        ``instrumentation`` is either an :class:`Instrumentation`
        collector or a plain ``{kernel: KernelStats}`` mapping (the
        online driver passes interval deltas so decisions react to
        *recent* behaviour, not the whole-run average).

        With ``fuse=True`` the policy also recommends fusing
        :func:`fusable_pairs` whose endpoints both pay high dispatch
        overhead — fusing halves the per-item instance count, attacking
        the same overhead coarsening does but across the task axis
        (figure 4's Age 2 → Age 3 step).  A kernel recommended for
        fusion is not simultaneously recommended for coarsening (the
        fused kernel can be coarsened by a later round).
        """
        stats = (
            instrumentation.stats()
            if hasattr(instrumentation, "stats")
            else dict(instrumentation)
        )
        out: list = []
        fused: set[str] = set()
        if fuse:
            for u, v in fusable_pairs(program):
                if u in fused or v in fused:
                    continue
                su, sv = stats.get(u), stats.get(v)
                if su is None or sv is None:
                    continue
                if min(su.instances, sv.instances) < self.min_instances:
                    continue
                if max(su.dispatch_ratio,
                       sv.dispatch_ratio) <= self.ratio_target:
                    continue
                if not program.kernels[u].has_age:
                    continue
                out.append(FusionDecision(u, v))
                fused.update((u, v))
        for name, st in sorted(stats.items()):
            k = program.kernels.get(name)
            if k is None or name in fused:
                continue
            cvars = coarsenable_vars(k)
            if not cvars:
                # e.g. the age dimension is the kernel's only real
                # parallel axis: nothing coarsen() could legally block.
                continue
            if st.instances < self.min_instances:
                continue
            if st.dispatch_ratio <= self.ratio_target:
                continue
            d = st.mean_dispatch_us
            t = max(st.mean_kernel_us, 1e-3)
            needed = d * (1 - self.ratio_target) / (self.ratio_target * t)
            factor = 1
            while factor < needed and factor < self.max_factor:
                factor *= 2
            if factor > 1:
                out.append(GranularityDecision(name, cvars[0], factor))
        return out

    def apply(
        self,
        program: Program,
        decisions: Sequence,
    ) -> Program:
        """Apply a list of decisions in order; returns the rewritten program."""
        return apply_decisions(program, decisions)
