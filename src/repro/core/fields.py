"""Multi-dimensional, aging, write-once fields.

Fields are P2G's central data abstraction (paper, section III): globally
visible multi-dimensional arrays with *write-once* semantics per element
and per *age*.  Aging adds a virtual dimension that lets cyclic programs
(e.g. the ``mul2``/``plus5`` loop of figure 5 or K-means' assign/refine
loop) keep write-once semantics: storing to the same position is legal as
long as the age increases.

Fields support *implicit resizing* (section V-C): a store beyond the
current extent grows the field, and the new extent propagates to every
age.  The runtime turns resizes into events so the dependency analyzer
can dispatch the additional kernel instances the larger extent implies.

The backing arrays are NumPy (the reproduction's stand-in for blitz++),
with a parallel boolean *written* mask per age used both to enforce
write-once semantics and to answer the analyzer's completeness queries.

Two storage flavours exist:

* :class:`Field` / :class:`FieldStore` — process-private NumPy arrays,
  used by the default ``threads`` execution backend.
* :class:`SharedField` / :class:`SharedFieldStore` — the per-age payload
  lives in a POSIX ``multiprocessing.shared_memory`` segment, so worker
  *processes* (the ``processes`` execution backend) fetch and store
  zero-copy views of the same physical pages.  The parent process owns
  the segment lifecycle (creation at dispatch, unlink at GC/shutdown)
  and keeps the write-once masks and counters private; workers only
  read/write payload bytes.  Shared fields require a declared shape —
  implicit resizing would need cross-process reallocation.
"""

from __future__ import annotations

import math
import secrets
import threading
from dataclasses import dataclass, field as dc_field
from multiprocessing import shared_memory
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .errors import (
    AgeError,
    CollectedAgeError,
    DefinitionError,
    ExtentError,
    WriteOnceViolation,
)

#: Kernel-language type name -> NumPy dtype.  Matches the scalar types the
#: paper's C-like kernel language exposes.
DTYPES: Mapping[str, np.dtype] = {
    "int8": np.dtype(np.int8),
    "uint8": np.dtype(np.uint8),
    "int16": np.dtype(np.int16),
    "uint16": np.dtype(np.uint16),
    "int32": np.dtype(np.int32),
    "uint32": np.dtype(np.uint32),
    "int64": np.dtype(np.int64),
    "uint64": np.dtype(np.uint64),
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

IndexExpr = tuple  # normalized tuple of slice objects, one per dimension


@dataclass(frozen=True)
class FieldDef:
    """Static definition of a field (name, element type, dimensionality).

    Corresponds to a field-definition line in the kernel language, e.g.
    ``int32[] m_data age;`` -> ``FieldDef("m_data", "int32", 1, aging=True)``.

    Parameters
    ----------
    name:
        Global field name; unique within a program.
    dtype:
        One of the kernel-language scalar type names in :data:`DTYPES`.
    ndim:
        Number of (non-age) dimensions.
    aging:
        Whether the field carries the age dimension.  Non-aging fields
        behave like aging fields restricted to age 0.
    shape:
        Optional declared extent.  An undeclared field grows by implicit
        resizing, which leaves "the whole field" momentarily ambiguous
        while element-wise writers are still extending it — harmless for
        fields established by a single whole-field store (figure 5's
        ``init``), but racy for a field grown one element at a time and
        fetched whole (K-means' ``distances``).  Declaring the shape
        fixes the extent up front, making whole-field completeness
        exact and deterministic.
    """

    name: str
    dtype: str = "int32"
    ndim: int = 1
    aging: bool = True
    shape: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise DefinitionError(
                f"field {self.name!r}: unknown dtype {self.dtype!r}; "
                f"expected one of {sorted(DTYPES)}"
            )
        if self.ndim < 1:
            raise DefinitionError(
                f"field {self.name!r}: ndim must be >= 1, got {self.ndim}"
            )
        if self.shape is not None:
            object.__setattr__(self, "shape", tuple(self.shape))
            if len(self.shape) != self.ndim:
                raise DefinitionError(
                    f"field {self.name!r}: shape {self.shape} does not "
                    f"match ndim {self.ndim}"
                )
            if any(n < 0 for n in self.shape):
                raise DefinitionError(
                    f"field {self.name!r}: negative extent in {self.shape}"
                )

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype backing this field's elements."""
        return DTYPES[self.dtype]


def normalize_index(index: Any, ndim: int) -> IndexExpr:
    """Normalize a user-facing index into a tuple of ``slice`` objects.

    Accepts a scalar int (1-d), a slice, or a tuple mixing ints and
    slices.  Integers become unit slices.  Slices must have explicit,
    non-negative ``start``/``stop`` and step 1 (``None`` start means 0).

    Raises :class:`ExtentError` for negative indices, wrong arity, or
    stepped slices — none of which the P2G model defines.
    """
    if not isinstance(index, tuple):
        index = (index,)
    if len(index) != ndim:
        raise ExtentError(
            f"index {index!r} has {len(index)} dimension(s); field has {ndim}"
        )
    out = []
    for dim, part in enumerate(index):
        if isinstance(part, (int, np.integer)):
            if part < 0:
                raise ExtentError(f"negative index {part} in dimension {dim}")
            out.append(slice(int(part), int(part) + 1))
        elif isinstance(part, slice):
            start = 0 if part.start is None else int(part.start)
            if part.stop is None:
                raise ExtentError(
                    f"open-ended slice in dimension {dim}; P2G slices must "
                    f"have explicit stops (use fetch-all for whole fields)"
                )
            stop = int(part.stop)
            step = 1 if part.step is None else int(part.step)
            if step != 1:
                raise ExtentError(f"stepped slice in dimension {dim}")
            if start < 0 or stop < start:
                raise ExtentError(
                    f"invalid slice [{start}:{stop}] in dimension {dim}"
                )
            out.append(slice(start, stop))
        else:
            raise ExtentError(
                f"unsupported index component {part!r} in dimension {dim}"
            )
    return tuple(out)


def index_shape(index: IndexExpr) -> tuple[int, ...]:
    """Shape of the region selected by a normalized index."""
    return tuple(s.stop - s.start for s in index)


@dataclass
class ResizeInfo:
    """Describes an implicit resize triggered by a store."""

    field: str
    old_extent: tuple[int, ...]
    new_extent: tuple[int, ...]


class _AgeSlot:
    """Backing storage for a single age of a field."""

    __slots__ = ("data", "written", "store_count", "collected")

    def __init__(self, extent: tuple[int, ...], dtype: np.dtype) -> None:
        self.data = np.zeros(extent, dtype=dtype)
        self.written = np.zeros(extent, dtype=bool)
        self.store_count = 0
        self.collected = False

    def grow(self, extent: tuple[int, ...]) -> None:
        """Reallocate to a larger extent, preserving data and masks."""
        if extent == self.data.shape:
            return
        data = np.zeros(extent, dtype=self.data.dtype)
        written = np.zeros(extent, dtype=bool)
        old = tuple(slice(0, n) for n in self.data.shape)
        data[old] = self.data
        written[old] = self.written
        self.data = data
        self.written = written

    def free(self) -> None:
        """Release the slot's storage (GC); arrays become empty."""
        self.data = np.zeros((0,) * self.data.ndim, dtype=self.data.dtype)
        self.written = np.zeros((0,) * self.written.ndim, dtype=bool)


def segment_name(run_id: str, field: str, age: int) -> str:
    """Deterministic shared-memory segment name for ``field`` at ``age``.

    Both sides of the process backend derive the same name independently:
    the parent when it creates the segment at dispatch time, the worker
    when it attaches for a fetch/store — no registry round-trip needed.
    """
    return f"p2g{run_id}_{field}_{age}"


class _SharedAgeSlot(_AgeSlot):
    """An age slot whose payload lives in a shared-memory segment.

    The ``written`` mask and counters stay process-private (only the
    owning runtime's analyzer consults them); only the payload bytes are
    shared with worker processes.
    """

    __slots__ = ("shm",)

    def __init__(
        self, name: str, extent: tuple[int, ...], dtype: np.dtype
    ) -> None:
        nbytes = max(1, int(np.prod(extent)) * dtype.itemsize)
        # POSIX shm is zero-filled on creation, matching np.zeros.
        self.shm = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes
        )
        self.data = np.ndarray(extent, dtype=dtype, buffer=self.shm.buf)
        self.written = np.zeros(extent, dtype=bool)
        self.store_count = 0
        self.collected = False

    def grow(self, extent: tuple[int, ...]) -> None:
        if extent == self.data.shape:
            return
        raise ExtentError(
            "shared-memory fields cannot grow; declare the field shape"
        )

    def free(self) -> None:
        self.data = np.zeros((0,) * self.data.ndim, dtype=self.data.dtype)
        self.written = np.zeros((0,) * self.written.ndim, dtype=bool)
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def unlink(self) -> None:
        """Remove the segment name but keep the mapping readable (used at
        shutdown so ``RunResult.fields`` stays fetchable)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


class Field:
    """A live field instance: per-age NumPy storage plus write-once masks.

    Thread safety: metadata mutations (masks, counters, extent) take the
    field's lock; bulk payload copies happen *outside* the critical
    section wherever write-once semantics make that safe (a complete
    region is immutable, and stores to a fixed-shape field touch disjoint
    elements).  The lock is a plain ``Lock`` — no method re-enters.
    """

    def __init__(self, fdef: FieldDef) -> None:
        self.fdef = fdef
        self._lock = threading.Lock()
        self._extent: tuple[int, ...] = (
            fdef.shape if fdef.shape is not None else (0,) * fdef.ndim
        )
        self._ages: dict[int, _AgeSlot] = {}
        self._max_stored_age = -1
        #: total elements ever written (across ages); instrumentation.
        self.elements_written = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The field's global name."""
        return self.fdef.name

    @property
    def ndim(self) -> int:
        """Number of (non-age) dimensions."""
        return self.fdef.ndim

    @property
    def extent(self) -> tuple[int, ...]:
        """Current global extent (shared by all ages, grows monotonically)."""
        return self._extent

    @property
    def max_stored_age(self) -> int:
        """Highest age that has received at least one store (-1 if none)."""
        return self._max_stored_age

    def ages(self) -> list[int]:
        """Sorted list of ages holding (non-collected) data."""
        with self._lock:
            return sorted(a for a, s in self._ages.items() if not s.collected)

    def age_touched(self, age: int) -> bool:
        """Whether any store has hit this age."""
        with self._lock:
            slot = self._ages.get(age)
            return slot is not None and slot.store_count > 0

    def live_bytes(self) -> int:
        """Bytes held by non-collected ages (data + masks)."""
        with self._lock:
            return sum(
                s.data.nbytes + s.written.nbytes
                for s in self._ages.values()
                if not s.collected
            )

    # ------------------------------------------------------------------
    # Stores (write-once, implicit resize)
    # ------------------------------------------------------------------
    def _check_age(self, age: int) -> None:
        if age < 0:
            raise AgeError(f"field {self.name!r}: negative age {age}")
        if not self.fdef.aging and age != 0:
            raise AgeError(
                f"field {self.name!r} is not aging; only age 0 is valid "
                f"(got {age})"
            )

    def _new_slot(self, age: int) -> _AgeSlot:
        """Allocate backing storage for one age (hook for shared memory)."""
        return _AgeSlot(self._extent, self.fdef.np_dtype)

    def _slot(self, age: int, create: bool) -> _AgeSlot | None:
        slot = self._ages.get(age)
        if slot is None:
            if not create:
                return None
            slot = self._new_slot(age)
            self._ages[age] = slot
        elif slot.collected:
            raise CollectedAgeError(self.name, age)
        elif slot.data.shape != self._extent:
            slot.grow(self._extent)
        return slot

    def _raise_write_once(self, age: int, idx: IndexExpr, region) -> None:
        flat = np.argwhere(region)[0]
        offending = tuple(int(s.start + o) for s, o in zip(idx, flat))
        raise WriteOnceViolation(self.name, age, offending)

    def _commit_written(
        self, age: int, slot: _AgeSlot, idx: IndexExpr, count: int
    ) -> None:
        """Publish a completed write: mask + counters (lock held)."""
        if slot.collected:
            raise CollectedAgeError(self.name, age)
        region = slot.written[idx]
        if region.any():
            self._raise_write_once(age, idx, region)
        slot.written[idx] = True
        slot.store_count += count
        self.elements_written += count
        if age > self._max_stored_age:
            self._max_stored_age = age

    def store(self, age: int, index: Any, value: Any) -> ResizeInfo | None:
        """Store ``value`` into ``self[age][index]``.

        Enforces write-once semantics; grows the field (implicit resize)
        when the index reaches past the current extent.  Returns a
        :class:`ResizeInfo` when a resize occurred, else ``None``.

        For fixed-shape fields the payload copy happens outside the lock
        (legal stores touch disjoint elements); completeness only becomes
        visible once the mask commits, so a consumer can never observe a
        half-copied region.  Growable fields copy under the lock because
        a concurrent resize swaps the backing array.
        """
        self._check_age(age)
        idx = normalize_index(index, self.ndim)
        arr = np.asarray(value, dtype=self.fdef.np_dtype)
        shape = index_shape(idx)
        count = math.prod(shape)
        # Allow scalar broadcast into a unit region; otherwise shapes must
        # match exactly (trailing unit dims tolerated for 1-element stores).
        if arr.shape != shape:
            try:
                arr = np.broadcast_to(arr, shape)
            except ValueError:
                raise ExtentError(
                    f"field {self.name!r}: value shape {arr.shape} does not "
                    f"match store region {shape}"
                ) from None
        fixed = self.fdef.shape is not None
        with self._lock:
            resize = None
            needed = tuple(
                max(cur, s.stop) for cur, s in zip(self._extent, idx)
            )
            if needed != self._extent:
                if fixed:
                    raise ExtentError(
                        f"field {self.name!r}: store region {idx} exceeds "
                        f"the declared shape {self.fdef.shape}"
                    )
                old = self._extent
                self._extent = needed
                resize = ResizeInfo(self.name, old, needed)
            slot = self._slot(age, create=True)
            assert slot is not None
            region = slot.written[idx]
            if region.any():
                self._raise_write_once(age, idx, region)
            if not fixed:
                # Growable: a concurrent resize may swap slot.data, so the
                # copy must stay inside the critical section.
                slot.data[idx] = arr
        if fixed:
            slot.data[idx] = arr
        with self._lock:
            self._commit_written(age, slot, idx, count)
            return resize

    def mark_written(self, age: int, index: Any) -> None:
        """Metadata-only store: record that a region was written without
        copying any payload.

        This is the parent-process half of the ``processes`` execution
        backend's store protocol — the worker has already written the
        payload bytes directly into the shared-memory segment; the parent
        applies write-once enforcement, the completeness mask and the
        counters when the worker's store report arrives.
        """
        self._check_age(age)
        idx = normalize_index(index, self.ndim)
        if any(s.stop > n for s, n in zip(idx, self._extent)):
            raise ExtentError(
                f"field {self.name!r}: store region {idx} exceeds "
                f"extent {self._extent}"
            )
        count = math.prod(index_shape(idx))
        with self._lock:
            slot = self._slot(age, create=True)
            assert slot is not None
            self._commit_written(age, slot, idx, count)

    def mark_written_many(
        self, age: int, regions: Sequence[Any]
    ) -> None:
        """Batched :meth:`mark_written` — one age check, one lock
        acquisition and one slot resolution for a whole run of store
        reports (the parent-side half of batched dispatch on the
        ``processes`` backend, where one worker reply carries every
        store of a same-kernel batch).  Write-once enforcement stays
        per region."""
        self._check_age(age)
        idxs = []
        for index in regions:
            idx = normalize_index(index, self.ndim)
            if any(s.stop > n for s, n in zip(idx, self._extent)):
                raise ExtentError(
                    f"field {self.name!r}: store region {idx} exceeds "
                    f"extent {self._extent}"
                )
            idxs.append(idx)
        with self._lock:
            slot = self._slot(age, create=True)
            assert slot is not None
            for idx in idxs:
                self._commit_written(
                    age, slot, idx, math.prod(index_shape(idx))
                )

    # ------------------------------------------------------------------
    # Fetches and completeness
    # ------------------------------------------------------------------
    def fetch(self, age: int, index: Any | None = None) -> np.ndarray:
        """Fetch a copy of ``self[age][index]`` (whole field if ``index``
        is ``None``).

        The caller is responsible for only fetching complete regions (the
        dependency analyzer guarantees this for dispatched instances); an
        incomplete fetch raises :class:`ExtentError` to surface scheduler
        bugs rather than silently returning zeros.
        """
        self._check_age(age)
        with self._lock:
            slot = self._ages.get(age)
            if slot is not None and slot.collected:
                raise CollectedAgeError(self.name, age)
            if index is None:
                idx = tuple(slice(0, n) for n in self._extent)
            else:
                idx = normalize_index(index, self.ndim)
                if any(s.stop > n for s, n in zip(idx, self._extent)):
                    raise ExtentError(
                        f"field {self.name!r}: fetch region {idx} exceeds "
                        f"extent {self._extent}"
                    )
            if slot is not None and slot.data.shape != self._extent:
                slot.grow(self._extent)
            if slot is None or not slot.written[idx].all():
                raise ExtentError(
                    f"field {self.name!r}: fetch of incomplete region "
                    f"age={age} index={idx}"
                )
            data = slot.data
        # The copy happens outside the lock: the region is complete, and
        # write-once semantics make complete regions immutable (concurrent
        # stores touch other elements; grow() swaps in a new array without
        # mutating the one referenced here).
        return data[idx].copy()

    def peek(self, age: int, index: Any | None = None) -> np.ndarray | None:
        """Like :meth:`fetch` but returns ``None`` for incomplete regions."""
        try:
            return self.fetch(age, index)
        except (ExtentError, CollectedAgeError):
            return None

    def is_complete(self, age: int, index: Any | None = None) -> bool:
        """Whether every element of the region is written at ``age``.

        ``index=None`` means the whole field at its *current* extent; the
        region must be non-empty (an untouched field is never complete).
        """
        if age < 0 or (not self.fdef.aging and age != 0):
            return False
        with self._lock:
            slot = self._ages.get(age)
            if slot is None or slot.collected:
                return False
            if index is None:
                if any(n == 0 for n in self._extent):
                    return False
                # Write-once makes store_count an exact element count, so
                # whole-field completeness is an O(1) comparison — vital
                # when millions of store events each probe a whole-field
                # fetch (K-means' refine).
                total = 1
                for n in self._extent:
                    total *= n
                return slot.store_count == total
            else:
                try:
                    idx = normalize_index(index, self.ndim)
                except ExtentError:
                    return False
                if any(s.stop > n for s, n in zip(idx, self._extent)):
                    return False
                if any(s.stop == s.start for s in idx):
                    return False
            if slot.data.shape != self._extent:
                slot.grow(self._extent)
            return bool(slot.written[idx].all())

    def written_count(self, age: int) -> int:
        """Number of elements written at ``age``."""
        with self._lock:
            slot = self._ages.get(age)
            return 0 if slot is None else slot.store_count

    # ------------------------------------------------------------------
    # Garbage collection (section IX: reuse buffers / collect old ages)
    # ------------------------------------------------------------------
    def _collect_age_locked(self, age: int) -> int:
        slot = self._ages.get(age)
        if slot is None or slot.collected:
            return 0
        freed = slot.data.nbytes + slot.written.nbytes
        slot.free()
        slot.collected = True
        return freed

    def collect_age(self, age: int) -> int:
        """Free the storage of ``age``; returns bytes reclaimed.

        Subsequent fetches of the age raise :class:`CollectedAgeError`.
        Idempotent; collecting an age with no storage is a no-op.
        """
        with self._lock:
            return self._collect_age_locked(age)

    def collect_below(self, min_live_age: int) -> int:
        """Collect every age strictly below ``min_live_age``."""
        with self._lock:
            return sum(
                self._collect_age_locked(a)
                for a in list(self._ages)
                if a < min_live_age
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Field({self.name!r}, dtype={self.fdef.dtype}, "
            f"extent={self._extent}, ages={self.ages()})"
        )


class LocalField:
    """A kernel-local growable array (``local int32[] values;``).

    Local fields live only for the duration of a kernel instance and have
    ordinary (not write-once) semantics; they exist so kernel bodies can
    build up a value of initially unknown extent before storing it to a
    global field, which is how implicit resizing enters the program
    (figure 5's ``init`` kernel).
    """

    def __init__(self, dtype: str = "int32", ndim: int = 1) -> None:
        if dtype not in DTYPES:
            raise DefinitionError(f"unknown dtype {dtype!r}")
        self._dtype = DTYPES[dtype]
        self._ndim = ndim
        self._data = np.zeros((0,) * ndim, dtype=self._dtype)

    @property
    def data(self) -> np.ndarray:
        """The local field's backing array (what a store of it writes)."""
        return self._data

    def put(self, value: Any, *index: int) -> None:
        """``put(values, v, i, ...)`` — store value at index, growing."""
        if len(index) != self._ndim:
            raise ExtentError(
                f"local field put: got {len(index)} indices, need {self._ndim}"
            )
        if any(i < 0 for i in index):
            raise ExtentError(f"negative index {index}")
        needed = tuple(
            max(cur, i + 1) for cur, i in zip(self._data.shape, index)
        )
        if needed != self._data.shape:
            data = np.zeros(needed, dtype=self._dtype)
            old = tuple(slice(0, n) for n in self._data.shape)
            data[old] = self._data
            self._data = data
        self._data[index] = value

    def get(self, *index: int) -> Any:
        """``get(values, i, ...)`` — read one element."""
        return self._data[tuple(index)]

    def extent(self, dim: int = 0) -> int:
        """``extent(values, dim)`` — size along a dimension."""
        return self._data.shape[dim]

    def from_array(self, arr: Any) -> "LocalField":
        """Replace contents wholesale (used when a fetch targets a local)."""
        self._data = np.asarray(arr, dtype=self._dtype)
        return self


class FieldStore:
    """All live fields of a running program, by name."""

    def __init__(self, defs: Iterable[FieldDef] = ()) -> None:
        self._fields: dict[str, Field] = {}
        for fdef in defs:
            self.add(fdef)

    def _make_field(self, fdef: FieldDef) -> Field:
        """Field construction hook (overridden by the shared-memory store)."""
        return Field(fdef)

    def add(self, fdef: FieldDef) -> Field:
        """Create and register a new field; rejects duplicates."""
        if fdef.name in self._fields:
            raise DefinitionError(f"duplicate field {fdef.name!r}")
        f = self._make_field(fdef)
        self._fields[fdef.name] = f
        return f

    def __getitem__(self, name: str) -> Field:
        try:
            return self._fields[name]
        except KeyError:
            raise DefinitionError(f"unknown field {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self):
        return iter(self._fields.values())

    def names(self) -> list[str]:
        """Sorted field names."""
        return sorted(self._fields)

    def live_bytes(self) -> int:
        """Bytes held by all fields' non-collected ages."""
        return sum(f.live_bytes() for f in self._fields.values())

    def collect_below(self, min_live_age: int, fields=None) -> int:
        """GC every aging field below the given age; returns bytes freed.

        ``fields`` (an iterable of field names) scopes the collection —
        the per-session retirement path frees only one tenant's fields,
        never a co-resident session's live ages.
        """
        names = None if fields is None else set(fields)
        return sum(
            f.collect_below(min_live_age)
            for f in self._fields.values()
            if f.fdef.aging and (names is None or f.name in names)
        )


class SharedField(Field):
    """A field whose per-age payload lives in shared-memory segments.

    Used by the ``processes`` execution backend.  The parent runtime
    creates every segment (at dispatch time, before a worker could touch
    it) and owns unlink; workers attach by the deterministic
    :func:`segment_name` and read/write zero-copy views.  Requires a
    declared shape — shared payloads cannot grow.
    """

    def __init__(self, fdef: FieldDef, run_id: str) -> None:
        if fdef.shape is None:
            raise DefinitionError(
                f"field {fdef.name!r}: shared-memory fields require a "
                f"declared shape (implicit resizing cannot cross process "
                f"boundaries); declare the extent or use the threads "
                f"backend"
            )
        super().__init__(fdef)
        self.run_id = run_id

    def _new_slot(self, age: int) -> _AgeSlot:
        return _SharedAgeSlot(
            segment_name(self.run_id, self.name, age),
            self._extent,
            self.fdef.np_dtype,
        )

    def ensure_age(self, age: int) -> None:
        """Create the segment for ``age`` if it does not exist yet (the
        parent calls this before dispatching a storing instance, so the
        worker's attach can never race segment creation)."""
        self._check_age(age)
        with self._lock:
            self._slot(age, create=True)

    def release_segments(self) -> None:
        """Unlink every live segment (names freed, mappings kept so the
        parent can still fetch results).  Idempotent; called at run
        teardown."""
        with self._lock:
            for slot in self._ages.values():
                if isinstance(slot, _SharedAgeSlot) and not slot.collected:
                    slot.unlink()


class SharedFieldStore(FieldStore):
    """A :class:`FieldStore` backed by shared memory (process backend).

    ``run_id`` namespaces the segment names so concurrent runs (or a
    crashed predecessor's leftovers) can never collide.
    """

    def __init__(
        self, defs: Iterable[FieldDef] = (), run_id: str | None = None
    ) -> None:
        self.run_id = run_id if run_id is not None else secrets.token_hex(4)
        super().__init__(defs)

    def _make_field(self, fdef: FieldDef) -> Field:
        return SharedField(fdef, self.run_id)

    def release(self) -> None:
        """Unlink all segments (teardown; mappings stay readable)."""
        for f in self:
            if isinstance(f, SharedField):
                f.release_segments()
