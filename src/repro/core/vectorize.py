"""Vectorized kernel backend: batch compilation of known native blocks.

The paper's C++ runtime dispatches kernel instances at near-zero cost;
this Python runtime pays a full scheduler->backend->callable round trip
per instance — at CIF geometry that is 1584 Python calls per frame for
the luma DCT alone.  Batched dispatch (the ready queue surfacing *runs*
of same-kernel/same-age instances, see
:meth:`~repro.core.runtime.ReadyQueue.pop_batch`) amortizes the
per-call overhead; this module removes the per-instance *body* calls
too, by compiling a kernel's native block into a NumPy implementation
over a whole batch.

The mechanism is pattern matching, not tracing: a workload tags its
kernel body with :func:`tag_vectorizable` naming one of the known
patterns (the DCT/quant macro-block pipeline, the K-means distance and
assignment kernels, elementwise integer affine maps).  At program-build
time :func:`vectorize_program` matches each tagged body against the
pattern table and attaches a ``batch_body`` to the
:class:`~repro.core.kernels.KernelDef`; kernels with no tag — or whose
structure no longer matches (e.g. after an LLS coarsen rewrote the
fetch dims) — keep ``batch_body=None`` and run the scalar path
per instance.  The escape hatches:

* ``--no-vectorize`` (or ``vectorize=False`` on a workload builder)
  skips the compilation step entirely;
* a ``batch_body`` may raise :class:`VectorizeFallback` at run time
  (e.g. the batch's block shape is not the expected 8x8) and the
  executing backend silently re-runs the batch through the scalar body;
* LLS replan rewrites construct fresh :class:`KernelDef` objects with
  the default ``batch_body=None``, so post-swap epochs revert to the
  scalar path automatically — a batch never spans an epoch anyway
  (batches are formed by kernel-definition *identity*).

Byte-identity is a hard requirement, exactly as for the LLS rewrites:
every pattern reproduces the scalar body's arithmetic bit for bit
(:func:`repro.media.dct.dct2_blocks` deliberately keeps its per-block
loop under ``method="matrix"`` for this reason), and the property tests
in ``tests/core/test_batch.py`` enforce it across backends.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from .errors import DefinitionError
from .kernels import BodyFn, KernelDef

__all__ = [
    "BatchKernelContext",
    "VectorizeFallback",
    "batch_fetch_plan",
    "tag_vectorizable",
    "vectorize_program",
    "vectorizable_pattern",
]

#: Attribute carrying a body's ``(pattern_name, params)`` tag.
_TAG_ATTR = "__p2g_vector__"


class VectorizeFallback(Exception):
    """Raised by a ``batch_body`` when this particular batch cannot be
    handled (shape drift, unexpected dtype); the backend re-runs the
    batch through the scalar body instead of failing the run."""


class BatchKernelContext:
    """Execution context handed to a vectorized ``batch_body``.

    Attributes
    ----------
    age:
        The batch's common age (batches never mix ages).
    indices:
        Per-instance index maps (``{var: value}``), batch order.
    fetched:
        Per-fetch-param values: a stacked ``(N, *region_shape)`` array
        for region fetches (one leading axis over the batch), or the
        single shared array for whole-field fetches (every instance of
        the batch sees the same bytes; the param name is listed in
        ``shared``).
    shared:
        The fetch params delivered un-stacked because they are
        whole-field.
    """

    __slots__ = ("age", "indices", "fetched", "shared", "_emitted")

    def __init__(
        self,
        age: int | None,
        indices: Sequence[Mapping[str, int]],
        fetched: Mapping[str, Any],
        shared: frozenset[str] = frozenset(),
    ) -> None:
        self.age = age
        self.indices = list(indices)
        self.fetched = dict(fetched)
        self.shared = shared
        self._emitted: dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, param: str) -> Any:
        return self.fetched[param]

    def emit(self, key: str, values: Any) -> None:
        """Provide the batch's values for the store spec whose
        ``emit_key`` is ``key``: an array (or sequence) whose leading
        axis runs over the batch — ``values[i]`` is what instance ``i``'s
        scalar body would have emitted."""
        if key in self._emitted:
            raise DefinitionError(
                f"batch body emitted {key!r} twice in one batch"
            )
        self._emitted[key] = values

    @property
    def emitted(self) -> dict[str, Any]:
        """Per-key batch emissions."""
        return self._emitted


# ----------------------------------------------------------------------
# Tagging and the pattern table
# ----------------------------------------------------------------------
def tag_vectorizable(body: BodyFn, pattern: str, **params: Any) -> BodyFn:
    """Tag a kernel body as an instance of a known vectorizable pattern.

    The tag is inert until :func:`vectorize_program` runs; an unknown
    pattern name fails there, not here, so tagging never breaks a
    program that skips vectorization.
    """
    setattr(body, _TAG_ATTR, (pattern, params))
    return body


#: pattern name -> builder(kernel, params) -> batch_body | None.
_PATTERNS: dict[str, Callable[[KernelDef, dict], Any]] = {}


def vectorizable_pattern(name: str):
    """Register a pattern builder under ``name`` (decorator).

    A builder receives the tagged :class:`KernelDef` and the tag's
    params and returns a batch callable, or ``None`` when the kernel's
    current structure does not match the pattern (wrong fetch/store
    arity, store produces out-of-band outputs, ...).
    """

    def register(builder):
        _PATTERNS[name] = builder
        return builder

    return register


def vectorize_program(program) -> list[str]:
    """Attach ``batch_body`` implementations to every tagged kernel of
    ``program`` whose structure matches its pattern; returns the names
    of the kernels vectorized.  Safe to call on untagged programs
    (no-op) and idempotent."""
    vectorized: list[str] = []
    for kernel in program.kernels.values():
        tag = getattr(kernel.body, _TAG_ATTR, None)
        if tag is None:
            continue
        pattern, params = tag
        builder = _PATTERNS.get(pattern)
        if builder is None:
            raise DefinitionError(
                f"kernel {kernel.name!r} is tagged with unknown "
                f"vectorization pattern {pattern!r}; known: "
                f"{sorted(_PATTERNS)}"
            )
        batch_body = builder(kernel, params)
        if batch_body is not None:
            kernel.batch_body = batch_body
            vectorized.append(kernel.name)
    return vectorized


# ----------------------------------------------------------------------
# Batch assembly shared by the execution backends
# ----------------------------------------------------------------------
def batch_fetch_plan(
    kernel: KernelDef,
    age: int | None,
    imaps: Sequence[Mapping[str, int]],
    extent_of: Callable[[str], tuple[int, ...]],
):
    """Resolve every fetch of a uniform batch to concrete regions.

    Returns ``[(spec, field_age, regions)]`` — ``regions`` is ``None``
    for whole-field fetches and a per-instance region list otherwise —
    or ``None`` when the batch is not vectorizable as one stacked call:
    ragged regions (the trailing block of a non-divisible extent) or
    empty shrink-boundary regions make per-instance shapes diverge, so
    the caller must take the scalar path.
    """
    plan = []
    for f in kernel.fetches:
        extent = extent_of(f.field)
        f_age = f.age.resolve(age)
        if f.whole_field():
            plan.append((f, f_age, None))
            continue
        regions = [f.region(imap, extent) for imap in imaps]
        shape0 = tuple(s.stop - s.start for s in regions[0])
        for r in regions:
            shape = tuple(s.stop - s.start for s in r)
            if shape != shape0 or any(n <= 0 for n in shape):
                return None
        plan.append((f, f_age, regions))
    return plan


# ----------------------------------------------------------------------
# The pattern table
# ----------------------------------------------------------------------
@vectorizable_pattern("dct_quant_8x8")
def _build_dct_quant(kernel: KernelDef, params: dict):
    """The MJPEG macro-block pipeline: level-shift, 2-D DCT, quantize.

    Scalar body (``repro.workloads.mjpeg``)::

        block -> dct2_blocks(block - 128.0, method) -> quantize(qtable)

    ``dct2_blocks`` already accepts ``(..., 8, 8)`` stacks and keeps its
    arithmetic per-block-identical under every method, and ``quantize``
    is elementwise, so one stacked call over ``(N, 8, 8)`` is byte-
    identical to N scalar calls.
    """
    if len(kernel.fetches) != 1 or len(kernel.stores) != 1:
        return None
    fetch = kernel.fetches[0]
    if fetch.whole_field():
        return None
    key = kernel.stores[0].emit_key
    qtable = params["qtable"]
    method = params["method"]

    def batch_body(bctx: BatchKernelContext) -> None:
        from ..media.dct import dct2_blocks
        from ..media.quant import quantize

        blocks = bctx.fetched[fetch.param]
        if blocks.shape[-2:] != (8, 8):
            raise VectorizeFallback  # block geometry drifted
        coeffs = dct2_blocks(
            blocks.astype(np.float64) - 128.0, method=method
        )
        bctx.emit(key, quantize(coeffs, qtable))

    return batch_body


@vectorizable_pattern("kmeans_pair_distance")
def _build_kmeans_pair(kernel: KernelDef, params: dict):
    """The pair-granularity K-means ``assign``: one Euclidean distance
    per (point, centroid) instance, computed for the whole batch as a
    row-wise reduction (NumPy reduces each row with the same pairwise
    summation a 1-D sum uses, so the bits match the scalar body)."""
    if len(kernel.fetches) != 2 or len(kernel.stores) != 1:
        return None
    point, centroid = kernel.fetches
    if point.whole_field() or centroid.whole_field():
        return None
    key = kernel.stores[0].emit_key

    def batch_body(bctx: BatchKernelContext) -> None:
        n = len(bctx)
        p = bctx.fetched[point.param].reshape(n, -1)
        c = bctx.fetched[centroid.param].reshape(n, -1)
        bctx.emit(key, np.sqrt(np.sum((p - c) ** 2, axis=1)))

    return batch_body


@vectorizable_pattern("kmeans_point_assign")
def _build_kmeans_point(kernel: KernelDef, params: dict):
    """The point-granularity K-means ``assign``: nearest centroid per
    point.  The centroids fetch is whole-field (shared across the
    batch); distances reduce over the trailing axis exactly as the
    scalar ``np.linalg.norm(..., axis=1)`` does per point."""
    if len(kernel.fetches) != 2 or len(kernel.stores) != 1:
        return None
    point, cents = kernel.fetches
    if point.whole_field() or not cents.whole_field():
        return None
    key = kernel.stores[0].emit_key

    def batch_body(bctx: BatchKernelContext) -> None:
        n = len(bctx)
        p = bctx.fetched[point.param].reshape(n, 1, -1)
        c = bctx.fetched[cents.param]
        d = np.linalg.norm(c[None, :, :] - p, axis=2)
        bctx.emit(key, np.argmin(d, axis=1))

    return batch_body


@vectorizable_pattern("affine_int")
def _build_affine_int(kernel: KernelDef, params: dict):
    """Elementwise integer affine map ``v -> v*mul + add (% modulo)`` —
    the figure-5 ``mul2``/``plus5`` kernels.  Exercises the smallest
    possible native block, where dispatch overhead dominates by orders
    of magnitude (table II's pattern)."""
    if len(kernel.fetches) != 1 or len(kernel.stores) != 1:
        return None
    fetch = kernel.fetches[0]
    if fetch.whole_field():
        return None
    key = kernel.stores[0].emit_key
    mul = int(params.get("mul", 1))
    add = int(params.get("add", 0))
    modulo = params.get("modulo")

    def batch_body(bctx: BatchKernelContext) -> None:
        v = bctx.fetched[fetch.param].reshape(len(bctx))
        v = v * mul + add
        if modulo is not None:
            v = v % modulo
        bctx.emit(key, v)

    return batch_body


@vectorizable_pattern("box_downscale")
def _build_box_downscale(kernel: KernelDef, params: dict):
    """Integer box-filter downscale of a fetched region — the operator
    scenarios' mosaic tile scaler and the transcode resize stage.

    ``repro.media.box_downscale`` accumulates in uint32 and divides with
    integer rounding, identically for ``(h, w)`` and ``(N, h, w)``
    inputs, so the stacked call is byte-identical to N scalar calls.
    """
    if len(kernel.fetches) != 1 or len(kernel.stores) != 1:
        return None
    fetch = kernel.fetches[0]
    if fetch.whole_field():
        return None
    key = kernel.stores[0].emit_key
    factor = int(params["factor"])

    def batch_body(bctx: BatchKernelContext) -> None:
        from ..media.yuv import box_downscale

        blocks = bctx.fetched[fetch.param]
        if blocks.shape[-1] % factor or blocks.shape[-2] % factor:
            raise VectorizeFallback  # block geometry drifted
        bctx.emit(key, box_downscale(blocks, factor))

    return batch_body


@vectorizable_pattern("idct_8x8")
def _build_idct_8x8(kernel: KernelDef, params: dict):
    """Inverse DCT + level shift of an 8x8 coefficient block back to
    uint8 pixels — the transcode chain's decode stage.  The scalar body
    routes through the same stacked :func:`repro.media.dct.idct2_blocks`
    call (on a ``(1, 8, 8)`` view), so both paths perform the identical
    batched matmul per slice."""
    if len(kernel.fetches) != 1 or len(kernel.stores) != 1:
        return None
    fetch = kernel.fetches[0]
    if fetch.whole_field():
        return None
    key = kernel.stores[0].emit_key

    def batch_body(bctx: BatchKernelContext) -> None:
        from ..media.dct import idct2_blocks

        coeffs = bctx.fetched[fetch.param]
        if coeffs.shape[-2:] != (8, 8):
            raise VectorizeFallback
        pixels = idct2_blocks(coeffs) + 128.0
        bctx.emit(
            key, np.clip(np.rint(pixels), 0, 255).astype(np.uint8)
        )

    return batch_body


@vectorizable_pattern("absdiff_region_stats")
def _build_absdiff_stats(kernel: KernelDef, params: dict):
    """Windowed motion statistics over a region pair: sum of absolute
    differences and sum of squared differences between the same region
    at consecutive ages.  int64 accumulation makes the stacked
    reduction bit-exact against the scalar body."""
    if len(kernel.fetches) != 2 or len(kernel.stores) != 1:
        return None
    cur, prev = kernel.fetches
    if cur.whole_field() or prev.whole_field():
        return None
    key = kernel.stores[0].emit_key

    def batch_body(bctx: BatchKernelContext) -> None:
        a = bctx.fetched[cur.param].astype(np.int64)
        b = bctx.fetched[prev.param].astype(np.int64)
        d = a - b
        axes = tuple(range(1, d.ndim))
        sad = np.abs(d).sum(axis=axes)
        ssd = (d * d).sum(axis=axes)
        bctx.emit(key, np.stack([sad, ssd], axis=1))

    return batch_body


@vectorizable_pattern("grid_composite")
def _build_grid_composite(kernel: KernelDef, params: dict):
    """Tile assembly for the mosaic composite: each out plane is a
    ``grid x grid`` arrangement of whole-field input tiles, stitched
    with two ``np.concatenate`` passes — exactly what the scalar body's
    ``assemble_grid`` does, so the bytes match by construction.

    ``layout`` maps each emit key to its tile fetch params in row-major
    order.  The composite runs one instance per age, so batches are
    length 1; the pattern still matters because it keeps the whole
    merge kernel on the batched dispatch path.
    """
    grid = int(params["grid"])
    layout: dict = params["layout"]
    if any(not f.whole_field() for f in kernel.fetches):
        return None
    if set(layout) != {s.emit_key for s in kernel.stores}:
        return None
    have = {f.param for f in kernel.fetches}
    if any(p not in have for tiles in layout.values() for p in tiles):
        return None

    def batch_body(bctx: BatchKernelContext) -> None:
        n = len(bctx)
        for key, tile_params in layout.items():
            tiles = [bctx.fetched[p] for p in tile_params]
            if len(tiles) != grid * grid:
                raise VectorizeFallback
            rows = [
                np.concatenate(tiles[r * grid : (r + 1) * grid], axis=-1)
                for r in range(grid)
            ]
            full = np.concatenate(rows, axis=-2)
            bctx.emit(key, np.stack([full] * n))

    return batch_body
