"""Program: a validated bundle of field and kernel definitions.

A :class:`Program` is the unit the rest of the system operates on — the
runtime executes it, :mod:`repro.core.graph` derives its implicit static
dependency graphs, the LLS rewrites it, and the HLS partitions it.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Iterable, Mapping

from .errors import DefinitionError, SemanticError
from .fields import FieldDef
from .kernels import KernelDef

#: Signature of a program output handler:
#: ``handler(kernel_name, age, index, key, value)``.
OutputHandler = Callable[[str, "int | None", tuple, str, Any], None]


@dataclass
class Program:
    """Field definitions + kernel definitions + timers, validated.

    Parameters
    ----------
    fields:
        The program's global fields.
    kernels:
        The program's kernel definitions.
    timers:
        Names of global deadline timers (``timer t1;``).
    name:
        Cosmetic program name used in graph dumps and logs.
    """

    fields: dict[str, FieldDef] = dc_field(default_factory=dict)
    kernels: dict[str, KernelDef] = dc_field(default_factory=dict)
    timers: tuple[str, ...] = ()
    name: str = "program"
    #: Receiver for kernel bodies' out-of-band ``ctx.output`` results
    #: (``handler(kernel, age, index, key, value)``); always invoked in
    #: the parent process, whichever execution backend ran the body.
    output_handler: OutputHandler | None = dc_field(
        default=None, repr=False, compare=False
    )

    def set_output_handler(self, handler: OutputHandler | None) -> None:
        """Register the receiver for ``ctx.output`` results."""
        self.output_handler = handler

    @classmethod
    def build(
        cls,
        fields: Iterable[FieldDef],
        kernels: Iterable[KernelDef],
        timers: Iterable[str] = (),
        name: str = "program",
        output_handler: "OutputHandler | None" = None,
    ) -> "Program":
        """Assemble and validate a program from definition iterables.

        ``output_handler``, when given, is installed as the receiver of
        kernel bodies' ``ctx.output`` results — a convenience for
        generated programs (e.g. the operator compiler) whose sinks
        deliver out-of-band, so callers need not remember the separate
        :meth:`set_output_handler` step.
        """
        fmap: dict[str, FieldDef] = {}
        for f in fields:
            if f.name in fmap:
                raise DefinitionError(f"duplicate field {f.name!r}")
            fmap[f.name] = f
        kmap: dict[str, KernelDef] = {}
        for k in kernels:
            if k.name in kmap:
                raise DefinitionError(f"duplicate kernel {k.name!r}")
            kmap[k.name] = k
        prog = cls(fmap, kmap, tuple(timers), name)
        prog.validate()
        if output_handler is not None:
            prog.set_output_handler(output_handler)
        return prog

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Cross-checks between kernels and fields.

        * every fetched/stored field is declared;
        * fetch/store dims arity matches the field's dimensionality
          (empty dims = whole field);
        * an aged kernel with fetches has at least one age-variable fetch
          (otherwise its set of ages would be unbounded with identical
          inputs, which write-once semantics make meaningless);
        * field names and kernel names do not collide (they share the
          graph's vertex namespace).
        """
        overlap = set(self.fields) & set(self.kernels)
        if overlap:
            raise DefinitionError(
                f"names used for both a field and a kernel: {sorted(overlap)}"
            )
        for k in self.kernels.values():
            for f in k.fetches:
                if f.field not in self.fields:
                    raise DefinitionError(
                        f"kernel {k.name!r} fetches unknown field {f.field!r}"
                    )
                ndim = self.fields[f.field].ndim
                if f.dims and len(f.dims) != ndim:
                    raise DefinitionError(
                        f"kernel {k.name!r}: fetch {f.param!r} has "
                        f"{len(f.dims)} dims; field {f.field!r} has {ndim}"
                    )
            for s in k.stores:
                if s.field not in self.fields:
                    raise DefinitionError(
                        f"kernel {k.name!r} stores to unknown field "
                        f"{s.field!r}"
                    )
                ndim = self.fields[s.field].ndim
                if s.dims and len(s.dims) != ndim:
                    raise DefinitionError(
                        f"kernel {k.name!r}: store to {s.field!r} has "
                        f"{len(s.dims)} dims; field has {ndim}"
                    )
            if k.has_age and k.fetches:
                if not any(f.age.literal is None for f in k.fetches):
                    raise SemanticError(
                        f"kernel {k.name!r} declares an age but every fetch "
                        f"uses a literal age; its age domain is unbounded"
                    )

    # ------------------------------------------------------------------
    def producers_of(self, field: str) -> list[KernelDef]:
        """Kernels that store to ``field``."""
        return [
            k for k in self.kernels.values() if field in k.stored_fields()
        ]

    def consumers_of(self, field: str) -> list[KernelDef]:
        """Kernels that fetch from ``field``."""
        return [
            k for k in self.kernels.values() if field in k.fetched_fields()
        ]

    def sources(self) -> list[KernelDef]:
        """Kernels with no fetches (dispatch is not store-driven)."""
        return [k for k in self.kernels.values() if k.is_source]

    def _rebuild(self, kernels: dict[str, KernelDef]) -> "Program":
        out = Program.build(
            self.fields.values(), kernels.values(), self.timers, self.name
        )
        out.output_handler = self.output_handler
        return out

    def replace_kernel(self, kernel: KernelDef) -> "Program":
        """Functional update: new Program with one kernel replaced."""
        kernels = dict(self.kernels)
        kernels[kernel.name] = kernel
        return self._rebuild(kernels)

    def without_kernels(self, *names: str) -> "Program":
        """Functional update: a new Program without the named kernels."""
        return self._rebuild(
            {n: k for n, k in self.kernels.items() if n not in names}
        )

    def with_kernel(self, kernel: KernelDef) -> "Program":
        """Functional update: a new Program with one kernel added."""
        if kernel.name in self.kernels:
            raise DefinitionError(f"kernel {kernel.name!r} already defined")
        kernels = dict(self.kernels)
        kernels[kernel.name] = kernel
        return self._rebuild(kernels)

    def describe(self) -> str:
        """Kernel-language-style rendering of the whole program."""
        lines = [f"program {self.name}:"]
        for f in self.fields.values():
            age = " age" if f.aging else ""
            dims = "[]" * f.ndim
            lines.append(f"  {f.dtype}{dims} {f.name}{age};")
        for t in self.timers:
            lines.append(f"  timer {t};")
        for k in self.kernels.values():
            lines.append("")
            lines.extend("  " + ln for ln in k.describe().splitlines())
        return "\n".join(lines)
