"""Implicit static dependency graphs and the DC-DAG (figures 2–4).

Three graph views are derived from a :class:`~repro.core.program.Program`:

* the **intermediate implicit static dependency graph** (figure 2) —
  bipartite kernels-and-fields graph read straight off the fetch/store
  statements;
* the **final implicit static dependency graph** (figure 3) — field
  vertices merged away, leaving kernel→kernel edges labelled by the
  fields that connect them; this is the HLS's partitioning input;
* the **dynamically created DAG (DC-DAG)** (figure 4) — the cyclic final
  graph unrolled over ages, which write-once semantics guarantee is
  acyclic; this is the LLS's working view.

A small self-contained digraph class keeps the core dependency-free;
``to_networkx`` bridges to the wider ecosystem when it is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Hashable, Iterable, Iterator, Mapping

from .errors import DefinitionError
from .instrumentation import Instrumentation
from .kernels import AgeExpr
from .program import Program


class Digraph:
    """Minimal directed graph with node/edge attributes."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, dict[str, Any]] = {}
        self._succ: dict[Hashable, dict[Hashable, dict[str, Any]]] = {}
        self._pred: dict[Hashable, dict[Hashable, dict[str, Any]]] = {}

    # -- construction ---------------------------------------------------
    def add_node(self, node: Hashable, **attrs: Any) -> None:
        """Add (or update the attributes of) a node."""
        if node not in self._nodes:
            self._nodes[node] = {}
            self._succ[node] = {}
            self._pred[node] = {}
        self._nodes[node].update(attrs)

    def add_edge(self, u: Hashable, v: Hashable, **attrs: Any) -> None:
        """Add (or update the attributes of) a directed edge."""
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._succ[u][v] = {}
            self._pred[v][u] = {}
        self._succ[u][v].update(attrs)
        self._pred[v][u] = self._succ[u][v]

    # -- queries ---------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> list[Hashable]:
        """All node ids."""
        return list(self._nodes)

    def node(self, node: Hashable) -> dict[str, Any]:
        """A node's attribute dict (mutable)."""
        return self._nodes[node]

    def edges(self) -> list[tuple[Hashable, Hashable, dict[str, Any]]]:
        """All edges as (u, v, attrs) triples."""
        return [
            (u, v, attrs)
            for u, targets in self._succ.items()
            for v, attrs in targets.items()
        ]

    def edge(self, u: Hashable, v: Hashable) -> dict[str, Any]:
        """The attribute dict of edge u -> v."""
        return self._succ[u][v]

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether edge u -> v exists."""
        return u in self._succ and v in self._succ[u]

    def successors(self, node: Hashable) -> list[Hashable]:
        """Targets of edges leaving ``node``."""
        return list(self._succ[node])

    def predecessors(self, node: Hashable) -> list[Hashable]:
        """Sources of edges entering ``node``."""
        return list(self._pred[node])

    def degree(self, node: Hashable) -> int:
        """Total degree (in + out) of ``node``."""
        return len(self._succ[node]) + len(self._pred[node])

    def n_edges(self) -> int:
        """Number of edges."""
        return sum(len(t) for t in self._succ.values())

    # -- algorithms -------------------------------------------------------
    def topological_sort(self) -> list[Hashable]:
        """Kahn's algorithm; raises :class:`DefinitionError` on a cycle."""
        indeg = {n: len(self._pred[n]) for n in self._nodes}
        ready = sorted(
            (n for n, d in indeg.items() if d == 0), key=repr
        )
        out: list[Hashable] = []
        while ready:
            n = ready.pop(0)
            out.append(n)
            for s in sorted(self._succ[n], key=repr):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(out) != len(self._nodes):
            raise DefinitionError("graph contains a cycle")
        return out

    def is_acyclic(self) -> bool:
        """Whether the graph has no directed cycle."""
        try:
            self.topological_sort()
            return True
        except DefinitionError:
            return False

    def find_cycles(self) -> list[list[Hashable]]:
        """Simple cycles via DFS back-edge walk (small graphs only)."""
        cycles: list[list[Hashable]] = []
        color: dict[Hashable, int] = {}
        stack: list[Hashable] = []

        def dfs(n: Hashable) -> None:
            color[n] = 1
            stack.append(n)
            for s in self._succ[n]:
                if color.get(s, 0) == 0:
                    dfs(s)
                elif color.get(s) == 1:
                    i = stack.index(s)
                    cycles.append(stack[i:] + [s])
            stack.pop()
            color[n] = 2

        for n in self._nodes:
            if color.get(n, 0) == 0:
                dfs(n)
        return cycles

    def weakly_connected_components(self) -> list[set[Hashable]]:
        """Connected components ignoring edge direction."""
        seen: set[Hashable] = set()
        comps: list[set[Hashable]] = []
        for start in self._nodes:
            if start in seen:
                continue
            comp = {start}
            frontier = [start]
            while frontier:
                n = frontier.pop()
                for m in list(self._succ[n]) + list(self._pred[n]):
                    if m not in comp:
                        comp.add(m)
                        frontier.append(m)
            seen |= comp
            comps.append(comp)
        return comps

    def subgraph(self, nodes: Iterable[Hashable]) -> "Digraph":
        """The induced subgraph on ``nodes`` (copies attributes)."""
        keep = set(nodes)
        g = Digraph()
        for n in keep:
            g.add_node(n, **self._nodes[n])
        for u, v, attrs in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, **attrs)
        return g

    # -- export -----------------------------------------------------------
    def to_dot(self, name: str = "g") -> str:
        """Graphviz DOT rendering (fields as boxes, kernels as ellipses)."""
        lines = [f"digraph {name} {{"]
        for n, attrs in self._nodes.items():
            shape = "box" if attrs.get("kind") == "field" else "ellipse"
            label = attrs.get("label", str(n))
            w = attrs.get("weight")
            if w is not None:
                label += f"\\n[{w:.3g}]"
            lines.append(f'  "{n}" [shape={shape}, label="{label}"];')
        for u, v, attrs in self.edges():
            lbl = attrs.get("label", "")
            extra = f' [label="{lbl}"]' if lbl else ""
            lines.append(f'  "{u}" -> "{v}"{extra};')
        lines.append("}")
        return "\n".join(lines)

    def to_networkx(self):  # pragma: no cover - thin bridge
        """Convert to a ``networkx.DiGraph`` (attributes preserved)."""
        import networkx as nx

        g = nx.DiGraph()
        for n, attrs in self._nodes.items():
            g.add_node(n, **attrs)
        for u, v, attrs in self.edges():
            g.add_edge(u, v, **attrs)
        return g


# ----------------------------------------------------------------------
# Paper graph views
# ----------------------------------------------------------------------
def intermediate_graph(program: Program) -> Digraph:
    """Figure 2: bipartite kernel/field graph from fetch/store statements."""
    g = Digraph()
    for fname in program.fields:
        g.add_node(fname, kind="field", label=fname)
    for k in program.kernels.values():
        g.add_node(k.name, kind="kernel", label=k.name)
        for s in k.stores:
            g.add_edge(k.name, s.field, label=f"store({s.age})")
        for f in k.fetches:
            g.add_edge(f.field, k.name, label=f"fetch({f.age})")
    return g


def final_graph(program: Program) -> Digraph:
    """Figure 3: field vertices merged into kernel→kernel edges.

    Each edge carries the connecting field names and the age offset of
    the store→fetch hop (0 = same age / pipeline, >0 = feedback across an
    iteration), which the HLS uses for partitioning and the LLS uses to
    recognize fusable pipelines.
    """
    g = Digraph()
    for k in program.kernels.values():
        g.add_node(k.name, kind="kernel", label=k.name)
    for k in program.kernels.values():
        for s in k.stores:
            for consumer in program.consumers_of(s.field):
                for f in consumer.fetches:
                    if f.field != s.field:
                        continue
                    if g.has_edge(k.name, consumer.name):
                        attrs = g.edge(k.name, consumer.name)
                        flds = attrs.setdefault("fields", [])
                        if s.field not in flds:
                            flds.append(s.field)
                        attrs["label"] = ",".join(flds)
                    else:
                        g.add_edge(
                            k.name,
                            consumer.name,
                            fields=[s.field],
                            label=s.field,
                            age_delta=_age_delta(s.age, f.age),
                        )
    return g


def _age_delta(store_age: AgeExpr, fetch_age: AgeExpr) -> int | None:
    """Kernel-age shift from producer to consumer along this field edge
    (``None`` when a literal age is involved and the shift is undefined)."""
    if store_age.literal is not None or fetch_age.literal is not None:
        return None
    return store_age.offset - fetch_age.offset


def dc_dag(program: Program, max_age: int) -> Digraph:
    """Figure 4: unroll the final graph over ages 0..max_age.

    Nodes are ``(kernel, age)`` pairs (ageless kernels get age ``None``
    rendered once).  Write-once semantics make this graph provably
    acyclic — asserted here and property-tested in the suite.
    """
    g = Digraph()
    ages = list(range(max_age + 1))
    for k in program.kernels.values():
        if k.has_age:
            for a in ages:
                g.add_node((k.name, a), kind="kernel",
                           label=f"{k.name}@{a}")
        else:
            g.add_node((k.name, None), kind="kernel", label=k.name)
    for producer in program.kernels.values():
        for s in producer.stores:
            for consumer in program.consumers_of(s.field):
                for f in consumer.fetches:
                    if f.field != s.field:
                        continue
                    for (cname, cage) in list(g.nodes()):
                        if cname != consumer.name:
                            continue
                        field_age = f.age.resolve(cage) if (
                            consumer.has_age or f.age.literal is not None
                        ) else None
                        if field_age is None or field_age < 0:
                            continue
                        if producer.has_age:
                            p_age = s.age.solve(field_age)
                            if p_age is None:
                                if s.age.matches_literal(field_age):
                                    # literal store: producer age unknown;
                                    # conservatively connect every age
                                    continue
                                else:
                                    continue
                            if p_age > max_age:
                                continue
                            pnode = (producer.name, p_age)
                        else:
                            if s.age.literal is not None and not \
                                    s.age.matches_literal(field_age):
                                continue
                            pnode = (producer.name, None)
                        cnode = (cname, cage)
                        if pnode in g and pnode != cnode:
                            g.add_edge(pnode, cnode, label=s.field)
    if not g.is_acyclic():  # pragma: no cover - guarded by construction
        raise DefinitionError(
            "DC-DAG contains a cycle; write-once semantics violated"
        )
    return g


def weighted_final_graph(
    program: Program, instrumentation: Instrumentation
) -> Digraph:
    """Final graph weighted with profiling data (section IV): node weight
    is total kernel time, edge weight approximates traffic by the
    producer's instance count."""
    g = final_graph(program)
    stats = instrumentation.stats()
    for n in g.nodes():
        st = stats.get(n)
        g.node(n)["weight"] = st.kernel_time if st else 0.0
        g.node(n)["instances"] = st.instances if st else 0
    for u, v, attrs in g.edges():
        st = stats.get(u)
        attrs["weight"] = float(st.instances) if st else 1.0
    return g


def ascii_graph(g: Digraph, title: str = "") -> str:
    """Plain-text adjacency rendering used by the figure benches."""
    lines = [title] if title else []
    for n in sorted(g.nodes(), key=repr):
        succ = sorted(g.successors(n), key=repr)
        attrs = g.node(n)
        tag = "[]" if attrs.get("kind") == "field" else "()"
        label = f"{tag[0]}{attrs.get('label', n)}{tag[1]}"
        if succ:
            tgt = ", ".join(str(g.node(s).get("label", s)) for s in succ)
            lines.append(f"  {label} -> {tgt}")
        else:
            lines.append(f"  {label}")
    return "\n".join(lines)
