"""Timers and deadline expressions (paper, section V-B).

The kernel language lets a program declare a global ``timer t1;`` which
kernel bodies can poll (``t1 + 100ms`` has it expired?) and update
(``t1 = now``).  A deadline miss typically steers the kernel down an
alternate code path that stores to a *different* field, creating new
dependencies and behaviour — e.g. an encoder that skips a frame whose
playback deadline has passed.

The clock is injectable so the discrete-event simulator and the tests
can drive timers deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

ClockFn = Callable[[], float]


class Timer:
    """A global, resettable program timer.

    All expressions are phrased in milliseconds to match the kernel
    language (``t1 + 100ms``).
    """

    def __init__(self, name: str, clock: ClockFn | None = None) -> None:
        self.name = name
        self._clock: ClockFn = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._mark = self._clock()
        #: Deadline checks that observed expiry (each ``expired`` poll
        #: returning True counts one miss — a kernel that keeps polling
        #: a blown deadline keeps steering down its fallback branch, and
        #: the count reflects every such steering decision).
        self.misses = 0

    def now(self) -> float:
        """Current clock value in seconds (whatever the clock defines)."""
        return self._clock()

    def reset(self) -> None:
        """``t1 = now`` — restart the timer."""
        with self._lock:
            self._mark = self._clock()

    def elapsed_ms(self) -> float:
        """Milliseconds since the last reset."""
        with self._lock:
            return (self._clock() - self._mark) * 1000.0

    def expired(self, deadline_ms: float) -> bool:
        """``t1 + <deadline_ms>`` — True when the deadline has passed."""
        missed = self.elapsed_ms() > deadline_ms
        if missed:
            with self._lock:
                self.misses += 1
        return missed

    def remaining_ms(self, deadline_ms: float) -> float:
        """Milliseconds until the deadline (negative when missed)."""
        return deadline_ms - self.elapsed_ms()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name!r}, elapsed={self.elapsed_ms():.1f}ms)"


class TimerSet:
    """The program's timers by name, built from ``Program.timers``."""

    def __init__(
        self, names: tuple[str, ...] = (), clock: ClockFn | None = None
    ) -> None:
        self._clock = clock
        self._timers = {n: Timer(n, clock) for n in names}

    def __getitem__(self, name: str) -> Timer:
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def as_mapping(self) -> dict[str, Timer]:
        """Timers by name (the mapping handed to kernel contexts)."""
        return dict(self._timers)

    def reset_all(self) -> None:
        """Restart every timer (``t = now`` across the program)."""
        for t in self._timers.values():
            t.reset()

    def total_misses(self) -> int:
        """Deadline misses observed across every timer."""
        return sum(t.misses for t in self._timers.values())
