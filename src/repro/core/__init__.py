"""P2G core: fields, kernels, dependency analysis, runtime, LLS.

This subpackage implements the paper's primary contribution — the P2G
programming and execution model — independent of any particular workload
or transport.  See DESIGN.md for the module map.
"""

from .analyzer import DependencyAnalyzer
from .deadlines import Timer, TimerSet
from .errors import (
    AgeError,
    CollectedAgeError,
    DeadlockError,
    DefinitionError,
    ExtentError,
    FieldError,
    KernelBodyError,
    KernelError,
    LanguageError,
    LexError,
    P2GError,
    ParseError,
    PartitionError,
    RuntimeStateError,
    SchedulerError,
    SemanticError,
    TopologyError,
    TransportError,
    WriteOnceViolation,
)
from .events import (
    Event,
    EventBus,
    InstanceDoneEvent,
    ResizeEvent,
    StoreEvent,
)
from .fields import (
    DTYPES,
    Field,
    FieldDef,
    FieldStore,
    LocalField,
    normalize_index,
)
from .graph import (
    Digraph,
    ascii_graph,
    dc_dag,
    final_graph,
    intermediate_graph,
    weighted_final_graph,
)
from .instrumentation import Instrumentation, KernelStats
from .kernels import (
    AgeExpr,
    Dim,
    FetchSpec,
    KernelContext,
    KernelDef,
    KernelInstance,
    StoreSpec,
    make_kernel,
)
from .program import Program
from .runtime import (
    ExecutionNode,
    ReadyQueue,
    RunResult,
    WorkCounter,
    run_program,
)
from .scheduler import (
    AdaptivePolicy,
    GranularityDecision,
    coarsen,
    fusable_pairs,
    fuse,
)

__all__ = [
    "AdaptivePolicy",
    "AgeError",
    "AgeExpr",
    "CollectedAgeError",
    "DTYPES",
    "DeadlockError",
    "DefinitionError",
    "DependencyAnalyzer",
    "Digraph",
    "Dim",
    "Event",
    "EventBus",
    "ExecutionNode",
    "ExtentError",
    "FetchSpec",
    "Field",
    "FieldDef",
    "FieldError",
    "FieldStore",
    "GranularityDecision",
    "Instrumentation",
    "InstanceDoneEvent",
    "KernelBodyError",
    "KernelContext",
    "KernelDef",
    "KernelError",
    "KernelInstance",
    "KernelStats",
    "LanguageError",
    "LexError",
    "LocalField",
    "P2GError",
    "ParseError",
    "PartitionError",
    "Program",
    "ReadyQueue",
    "ResizeEvent",
    "RunResult",
    "RuntimeStateError",
    "SchedulerError",
    "SemanticError",
    "StoreEvent",
    "StoreSpec",
    "Timer",
    "TimerSet",
    "TopologyError",
    "TransportError",
    "WorkCounter",
    "WriteOnceViolation",
    "ascii_graph",
    "coarsen",
    "dc_dag",
    "final_graph",
    "fusable_pairs",
    "fuse",
    "intermediate_graph",
    "make_kernel",
    "normalize_index",
    "run_program",
    "weighted_final_graph",
]
