"""Events and the publish–subscribe bus.

P2G's prototype is "a push-based system using event subscriptions on
field operations" (section VI-B).  Kernel instances produce
:class:`StoreEvent`/:class:`ResizeEvent` on their store statements; the
dependency analyzer subscribes to the fields it cares about and reacts by
dispatching newly runnable instances.

The same :class:`EventBus` abstraction carries the distributed layer's
"event-based, distributed publish-subscribe model" (section IV): topology
reports, instrumentation feeds and inter-node field traffic all travel as
topic-addressed events.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from .fields import IndexExpr
from .kernels import KernelInstance


@dataclass(frozen=True)
class Event:
    """Base class for runtime events."""


@dataclass(frozen=True)
class StoreEvent(Event):
    """A region of a field was written at some age."""

    field: str
    age: int
    region: IndexExpr  # normalized tuple of slices


@dataclass(frozen=True)
class ResizeEvent(Event):
    """A store implicitly grew a field's extent."""

    field: str
    old_extent: tuple[int, ...]
    new_extent: tuple[int, ...]


@dataclass(frozen=True)
class InstanceDoneEvent(Event):
    """A kernel instance finished executing.

    ``stored_any`` drives source self-advancement: an aged source kernel
    whose instance stored nothing has reached end-of-stream and is not
    re-dispatched for the next age.
    """

    instance: KernelInstance
    stored_any: bool
    kernel_time: float = 0.0
    dispatch_time: float = 0.0


@dataclass(frozen=True)
class ReplanEvent(Event):
    """Ask the analyzer thread to re-bind the node to a rewritten
    program (online LLS adaptation).

    ``decisions`` is a tuple of LLS decisions
    (:class:`~repro.core.scheduler.GranularityDecision` /
    :class:`~repro.core.scheduler.FusionDecision`).  The analyzer applies
    them at a safe age boundary — the *swap epoch* — of its own choosing,
    unless ``epoch`` pins one (the distributed commit path, where the
    kernel's owner already chose the epoch and the other nodes only
    update their producer maps).  ``remote`` marks that producers-only
    flavour.

    ``token`` is the :class:`WorkToken` the enqueuer acquired so a run
    cannot be declared idle while the swap is in flight; the analyzer
    releases it once the event is retired.
    """

    decisions: tuple
    epoch: int | None = None
    remote: bool = False
    token: "WorkToken | None" = dc_field(
        default=None, compare=False, repr=False
    )


@dataclass(frozen=True)
class ShutdownEvent(Event):
    """Sentinel asking the analyzer thread to exit."""


class WorkToken:
    """One unit of outstanding work on a quiescence counter, released
    at most once.

    The runtime detects completion by a shared counter reaching zero
    (inc-before-dec makes zero stable — see
    :class:`~repro.core.runtime.WorkCounter`).  Several subsystems pin
    the counter above zero across a window in which work is owned by no
    dispatchable instance: the recovery manager while a dead node's
    kernels have no owner, the analyzer while a replan swap is in
    flight, a stream driver until its last frame has been offered, and
    the cluster across startup and membership migrations.  Each of those
    windows used to hand-roll the same held-flag + lock + idempotent
    decrement; this class is that pattern, once.

    Construction increments the counter immediately; :meth:`release`
    decrements it exactly once no matter how many paths call it (normal
    teardown, error unwind, signal handlers).  Usable as a context
    manager for strictly scoped windows.
    """

    __slots__ = ("_counter", "_lock", "_held", "label")

    def __init__(self, counter, label: str = "") -> None:
        self._counter = counter
        self._lock = threading.Lock()
        self._held = False
        self.label = label
        counter.inc()
        self._held = True

    @property
    def held(self) -> bool:
        """Whether the token still pins the counter."""
        with self._lock:
            return self._held

    def release(self) -> bool:
        """Decrement the counter if this token still holds it.

        Idempotent and thread-safe; returns ``True`` only for the one
        call that actually released.
        """
        with self._lock:
            if not self._held:
                return False
            self._held = False
        self._counter.dec()
        return True

    def __enter__(self) -> "WorkToken":
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False


class EventBus:
    """Minimal thread-safe topic-based publish–subscribe bus.

    Subscribers are callables invoked synchronously on the publisher's
    thread (delivery ordering per topic follows publish ordering).  Used
    directly by the distributed layer; the execution node's internal
    event path uses a plain queue for throughput but exposes mirrored
    events on a bus for instrumentation subscribers.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subs: dict[str, list[Callable[[str, Any], None]]] = {}
        self._seq = 0

    def subscribe(
        self, topic: str, handler: Callable[[str, Any], None]
    ) -> Callable[[], None]:
        """Register ``handler`` for ``topic``; returns an unsubscribe
        callable.  Topic ``"*"`` receives every event."""
        with self._lock:
            self._subs.setdefault(topic, []).append(handler)

        def unsubscribe() -> None:
            with self._lock:
                handlers = self._subs.get(topic, [])
                if handler in handlers:
                    handlers.remove(handler)

        return unsubscribe

    def publish(self, topic: str, payload: Any) -> int:
        """Deliver ``payload`` to subscribers of ``topic`` and ``"*"``.
        Returns the number of handlers invoked."""
        with self._lock:
            handlers = list(self._subs.get(topic, ()))
            handlers += list(self._subs.get("*", ()))
            self._seq += 1
        for h in handlers:
            h(topic, payload)
        return len(handlers)

    def topics(self) -> list[str]:
        """Topics that currently have at least one subscriber."""
        with self._lock:
            return sorted(t for t, hs in self._subs.items() if hs)
