"""Events and the publish–subscribe bus.

P2G's prototype is "a push-based system using event subscriptions on
field operations" (section VI-B).  Kernel instances produce
:class:`StoreEvent`/:class:`ResizeEvent` on their store statements; the
dependency analyzer subscribes to the fields it cares about and reacts by
dispatching newly runnable instances.

The same :class:`EventBus` abstraction carries the distributed layer's
"event-based, distributed publish-subscribe model" (section IV): topology
reports, instrumentation feeds and inter-node field traffic all travel as
topic-addressed events.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from .fields import IndexExpr
from .kernels import KernelInstance


@dataclass(frozen=True)
class Event:
    """Base class for runtime events."""


@dataclass(frozen=True)
class StoreEvent(Event):
    """A region of a field was written at some age."""

    field: str
    age: int
    region: IndexExpr  # normalized tuple of slices


@dataclass(frozen=True)
class ResizeEvent(Event):
    """A store implicitly grew a field's extent."""

    field: str
    old_extent: tuple[int, ...]
    new_extent: tuple[int, ...]


@dataclass(frozen=True)
class InstanceDoneEvent(Event):
    """A kernel instance finished executing.

    ``stored_any`` drives source self-advancement: an aged source kernel
    whose instance stored nothing has reached end-of-stream and is not
    re-dispatched for the next age.
    """

    instance: KernelInstance
    stored_any: bool
    kernel_time: float = 0.0
    dispatch_time: float = 0.0


@dataclass(frozen=True)
class ReplanEvent(Event):
    """Ask the analyzer thread to re-bind the node to a rewritten
    program (online LLS adaptation).

    ``decisions`` is a tuple of LLS decisions
    (:class:`~repro.core.scheduler.GranularityDecision` /
    :class:`~repro.core.scheduler.FusionDecision`).  The analyzer applies
    them at a safe age boundary — the *swap epoch* — of its own choosing,
    unless ``epoch`` pins one (the distributed commit path, where the
    kernel's owner already chose the epoch and the other nodes only
    update their producer maps).  ``remote`` marks that producers-only
    flavour.

    Like every event, a queued replan counts as outstanding work on the
    quiescence counter, so it doubles as the quiescence token that keeps
    the run alive while a swap is in flight.
    """

    decisions: tuple
    epoch: int | None = None
    remote: bool = False


@dataclass(frozen=True)
class ShutdownEvent(Event):
    """Sentinel asking the analyzer thread to exit."""


class EventBus:
    """Minimal thread-safe topic-based publish–subscribe bus.

    Subscribers are callables invoked synchronously on the publisher's
    thread (delivery ordering per topic follows publish ordering).  Used
    directly by the distributed layer; the execution node's internal
    event path uses a plain queue for throughput but exposes mirrored
    events on a bus for instrumentation subscribers.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subs: dict[str, list[Callable[[str, Any], None]]] = {}
        self._seq = 0

    def subscribe(
        self, topic: str, handler: Callable[[str, Any], None]
    ) -> Callable[[], None]:
        """Register ``handler`` for ``topic``; returns an unsubscribe
        callable.  Topic ``"*"`` receives every event."""
        with self._lock:
            self._subs.setdefault(topic, []).append(handler)

        def unsubscribe() -> None:
            with self._lock:
                handlers = self._subs.get(topic, [])
                if handler in handlers:
                    handlers.remove(handler)

        return unsubscribe

    def publish(self, topic: str, payload: Any) -> int:
        """Deliver ``payload`` to subscribers of ``topic`` and ``"*"``.
        Returns the number of handlers invoked."""
        with self._lock:
            handlers = list(self._subs.get(topic, ()))
            handlers += list(self._subs.get("*", ()))
            self._seq += 1
        for h in handlers:
            h(topic, payload)
        return len(handlers)

    def topics(self) -> list[str]:
        """Topics that currently have at least one subscriber."""
        with self._lock:
            return sorted(t for t, hs in self._subs.items() if hs)
