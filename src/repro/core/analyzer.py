"""The dependency analyzer.

Implements section VI-B of the paper: "When receiving such a storage
event, the runtime finds all *new* valid combinations of age and index
variables that can be processed as a result of the store statement, and
puts these in a per-kernel ready queue."

The analyzer is deliberately single-threaded (the prototype runs it in a
dedicated thread); all of its mutable state — the dispatched-instance
set, per-kernel pending ages, dispatch counters — is touched only from
that thread, so it needs no locks of its own.  Field completeness checks
go through the fields' own locks.

Algorithm sketch
----------------
For every store event on field ``F`` at age ``α`` covering region ``R``:

1. For each (kernel ``K``, fetch ``f``) with ``f.field == F``, derive the
   candidate *kernel ages*: solving ``f``'s age expression for ``α`` when
   it references the age variable, or rechecking every *pending* age when
   it is a literal match (a literal-age fetch alone cannot bound the age
   domain; program validation guarantees a variable-age fetch exists).
2. For each candidate age, enumerate candidate index combinations —
   variables bound by ``f`` are restricted to the block range overlapping
   ``R``; other variables range over the full instance count implied by
   current field extents.
3. A combination is dispatched when it has never been dispatched before
   (write-once ⇒ dispatch-once) and *every* fetch of ``K`` is complete
   for the resolved age/region.

Pending ages are pruned once every combination at current extents has
been dispatched; any event that could make new combinations runnable
(a store or resize) re-adds the age, so pruning never loses instances.

Online re-binding (epochs)
--------------------------
The LLS may rewrite the program *mid-run* (coarsen / fuse — see
:mod:`.scheduler` and :mod:`.adaptation`).  The analyzer then holds a
list of **program versions**, each owning a half-open age interval
``[epoch, next_epoch)``: every candidate kernel age is matched against
the version that owns it, so instances at ages below a swap epoch keep
the old decomposition while ages at or above it use the rewritten one.
The swap epoch for a rewritten kernel is always past its highest
dispatched age (dispatch happens only on this thread, so that bound is
race-free), which preserves dispatch-once: no age ever mixes two
decompositions of the same kernel.  Because both rewrites are
byte-identical on field contents, the write-once fields — and therefore
the run's observable output — are unchanged by a swap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .errors import SchedulerError
from .events import InstanceDoneEvent, ResizeEvent, StoreEvent
from .fields import FieldStore
from .kernels import FetchSpec, KernelDef, KernelInstance, StoreSpec
from .program import Program
from .scheduler import FusionDecision, decision_kernels


@dataclass(frozen=True)
class ReplanRecord:
    """One applied mid-run re-binding: the swap epoch, the decisions that
    took effect, and the ones the analyzer refused (unknown/ageless
    kernels, invalid factors).  ``remote`` marks a producers-only update
    for kernels owned by another node."""

    epoch: int
    decisions: tuple
    skipped: tuple = ()
    remote: bool = False


class _VersionView:
    """One program version plus the derived lookup maps the analyzer
    needs per version: field → consuming (kernel, fetch) pairs and
    field → producing (kernel, store) pairs."""

    __slots__ = ("epoch", "program", "fetchers", "producers")

    def __init__(
        self,
        epoch: int,
        program: Program,
        producer_kernels: Iterable[KernelDef] | None = None,
    ) -> None:
        self.epoch = epoch
        self.program = program
        self.fetchers: dict[str, list[tuple[KernelDef, FetchSpec]]] = {}
        for k in program.kernels.values():
            for f in k.fetches:
                self.fetchers.setdefault(f.field, []).append((k, f))
        self.producers: dict[str, list[tuple[KernelDef, StoreSpec]]] = {}
        src = (
            producer_kernels
            if producer_kernels is not None
            else program.kernels.values()
        )
        for k in src:
            for s in k.stores:
                self.producers.setdefault(s.field, []).append((k, s))


class DependencyAnalyzer:
    """Turns field store/resize events into newly runnable instances."""

    def __init__(
        self,
        program: Program,
        fields: FieldStore,
        max_age: int | None = None,
        producers: Iterable[KernelDef] | None = None,
        handle=None,
    ) -> None:
        self.program = program
        self.fields = fields
        self.max_age = max_age
        #: optional ProgramHandle mirror kept in sync on re-binding (the
        #: node's backends and recovery logic read the handle; the
        #: analyzer is duck-typed against it to avoid an import cycle).
        self._handle = handle
        self._dispatched: set = set()
        #: kernel name -> candidate ages not yet fully dispatched
        self._pending: dict[str, set[int]] = {
            k: set() for k in program.kernels
        }
        #: (kernel, age) -> number of instances dispatched
        self._count: dict[tuple[str, int | None], int] = {}
        #: kernel name -> highest age ever dispatched (swap-epoch floor)
        self._max_disp: dict[str, int] = {}
        #: Full-program mirror for distributed runs: ``producers`` names
        #: kernels that may live on other nodes; replan decisions are
        #: replayed onto it so the premature-completeness guard sees the
        #: rewritten producer shapes for ages ≥ the swap epoch.
        self._dep_program: Program | None = None
        producer_kernels = None
        if producers is not None:
            producer_kernels = list(producers)
            try:
                self._dep_program = Program.build(
                    program.fields.values(),
                    producer_kernels,
                    program.timers,
                    name=f"{program.name}#producers",
                )
                producer_kernels = list(self._dep_program.kernels.values())
            except Exception:
                # Unusual producer sets (tests) may not form a valid
                # program; the static map still works, remote re-binding
                # just keeps the original defs (conservative).
                self._dep_program = None
        self._views: list[_VersionView] = [
            _VersionView(0, program, producer_kernels)
        ]
        #: instrumentation: store events processed / candidates examined
        self.events_processed = 0
        self.candidates_examined = 0

    # ------------------------------------------------------------------
    def _extent_of(self, field: str) -> tuple[int, ...]:
        return self.fields[field].extent

    def _age_ok(self, age: int | None, kernel: KernelDef | None = None) -> bool:
        if age is None:
            return True
        if self.max_age is not None and age > self.max_age:
            return False
        if (
            kernel is not None
            and kernel.age_limit is not None
            and age > kernel.age_limit
        ):
            return False
        return True

    def _domain_combos(self, kernel: KernelDef) -> Iterable[tuple[int, ...]]:
        if not kernel.index_vars:
            return [()]
        counts = dict(kernel.domain or {})
        ranges = [range(counts.get(v, 1)) for v in kernel.index_vars]
        return itertools.product(*ranges)

    # ------------------------------------------------------------------
    # Program versions
    # ------------------------------------------------------------------
    @property
    def current_program(self) -> Program:
        """The newest program version (owns all ages ≥ its epoch)."""
        return self._views[-1].program

    @property
    def current_epoch(self) -> int:
        """Epoch of the newest program version (0 before any swap)."""
        return self._views[-1].epoch

    def _version_for_age(self, age: int | None) -> _VersionView:
        """The version owning ``age`` (ageless work stays on the base)."""
        if age is None:
            return self._views[0]
        for v in reversed(self._views):
            if v.epoch <= age:
                return v
        return self._views[0]

    def kernel_for_age(self, name: str, age: int | None) -> KernelDef | None:
        """The definition of ``name`` in the version owning ``age``."""
        return self._version_for_age(age).program.kernels.get(name)

    def apply_replan(self, decisions: Sequence) -> ReplanRecord | None:
        """Re-bind to a rewritten program at a safe age boundary.

        Applies every valid decision to the current version, picks the
        swap epoch as one past the highest age any rewritten kernel has
        been dispatched at (so no already-dispatched age changes its
        decomposition), and registers the new version.  Runs on the
        analyzer thread, where all dispatch bookkeeping lives, so the
        epoch computation cannot race a dispatch.

        Decisions naming unknown or ageless kernels, source kernels
        (their self-advance and domain decomposition are tied to the
        definition that started the stream), or failing their own
        validation are skipped and reported on the record.
        """
        cur = self._views[-1]
        prog = cur.program
        applied: list = []
        skipped: list = []
        affected: list[str] = []
        for d in decisions:
            names = decision_kernels(d)
            ks = [prog.kernels.get(n) for n in names]
            if any(k is None for k in ks):
                skipped.append(d)
                continue
            if any(not k.has_age or k.is_source for k in ks):
                skipped.append(d)
                continue
            try:
                prog = d.apply(prog)
            except SchedulerError:
                skipped.append(d)
                continue
            applied.append(d)
            affected.extend(names)
        if not applied:
            return None
        epoch = cur.epoch
        for name in affected:
            epoch = max(epoch, self._max_disp.get(name, -1) + 1)
        self._register(epoch, prog, applied)
        return ReplanRecord(
            epoch=epoch, decisions=tuple(applied), skipped=tuple(skipped)
        )

    def apply_remote(
        self, decisions: Sequence, epoch: int | None
    ) -> ReplanRecord | None:
        """Adopt another node's rewrite for producer bookkeeping only.

        The local program is unchanged — this node does not own the
        rewritten kernels — but the premature-completeness guard's
        producer map is advanced to the rewritten definitions for ages ≥
        the owner's committed epoch (clamped to local monotonicity)."""
        if self._dep_program is None:
            return None
        prog = self._views[-1].program
        remote = [
            d for d in decisions
            if not any(n in prog.kernels for n in decision_kernels(d))
        ]
        if not remote:
            return None
        eff = max(epoch if epoch is not None else 0, self._views[-1].epoch)
        self._register(eff, prog, remote)
        return ReplanRecord(epoch=eff, decisions=tuple(remote), remote=True)

    def _register(self, epoch: int, program: Program, applied) -> None:
        prev = self._views[-1]
        producer_kernels = None
        if self._dep_program is not None:
            dep = self._dep_program
            for d in applied:
                try:
                    dep = d.apply(dep)
                except SchedulerError:
                    pass  # unknown in the full set: keep old defs
            self._dep_program = dep
            producer_kernels = list(dep.kernels.values())
        self._views.append(_VersionView(epoch, program, producer_kernels))
        # Fusion renames kernels: give the new names pending slots and
        # migrate pending ages the new version now owns; ages below the
        # epoch stay pending under the old names (old-version dispatch).
        removed = [n for n in prev.program.kernels if n not in program.kernels]
        added = [n for n in program.kernels if n not in prev.program.kernels]
        moved: set[int] = set()
        for n in removed:
            ages = self._pending.get(n, set())
            self._pending[n] = {a for a in ages if a < epoch}
            moved |= {a for a in ages if a >= epoch}
        for n in added:
            self._pending.setdefault(n, set()).update(moved)
        if self._handle is not None:
            self._handle.register(epoch, program)

    # ------------------------------------------------------------------
    def initial_instances(self) -> list[KernelInstance]:
        """Instances runnable before any store: run-once kernels and the
        age-0 instances of aged source kernels."""
        out: list[KernelInstance] = []
        for k in self._views[0].program.kernels.values():
            if not k.is_source:
                continue
            age = 0 if k.has_age else None
            k = self.kernel_for_age(k.name, age) or k
            if not k.is_source or not self._age_ok(age, k):
                continue
            for combo in self._domain_combos(k):
                inst = KernelInstance(k, age, combo)
                if inst.key not in self._dispatched:
                    self._dispatched.add(inst.key)
                    self._bump(k.name, age)
                    out.append(inst)
        return out

    # ------------------------------------------------------------------
    def on_store(self, ev: StoreEvent) -> list[KernelInstance]:
        """React to a store event: dispatch every newly satisfiable instance."""
        self.events_processed += 1
        out: list[KernelInstance] = []
        base = self._views[0]
        for v in self._views:
            for kernel, fetch in v.fetchers.get(ev.field, ()):
                ages: list[int | None]
                if kernel.has_age:
                    if fetch.age.literal is None:
                        a = fetch.age.solve(ev.age)
                        if a is None or not self._age_ok(a, kernel):
                            continue
                        if self._version_for_age(a) is not v:
                            continue
                        self._pending[kernel.name].add(a)
                        ages = [a]
                    elif fetch.age.matches_literal(ev.age):
                        ages = [
                            a for a in sorted(self._pending[kernel.name])
                            if self._version_for_age(a) is v
                        ]
                    else:
                        continue
                else:
                    # Ageless kernels never change across versions; the
                    # base view processes them once.
                    if v is not base or not fetch.age.matches_literal(ev.age):
                        continue
                    ages = [None]
                for age in ages:
                    restrict = self._restrict_from_region(fetch, ev)
                    out.extend(self._collect(kernel, age, restrict))
                    self._maybe_prune(kernel, age)
        return out

    def on_resize(self, ev: ResizeEvent) -> list[KernelInstance]:
        """A resize may raise instance counts; recheck pending ages of
        every consumer of the field (and ageless consumers)."""
        self.events_processed += 1
        out: list[KernelInstance] = []
        base = self._views[0]
        for v in self._views:
            for kernel, _fetch in v.fetchers.get(ev.field, ()):
                if kernel.has_age:
                    for age in sorted(self._pending[kernel.name]):
                        if self._version_for_age(age) is not v:
                            continue
                        out.extend(self._collect(kernel, age, None))
                        self._maybe_prune(kernel, age)
                elif v is base:
                    out.extend(self._collect(kernel, None, None))
        return out

    def on_done(self, ev: InstanceDoneEvent) -> list[KernelInstance]:
        """Self-advance aged source kernels: instance ``a`` finishing with
        at least one store schedules instance ``a + 1`` (section VII-B:
        "the read loop ends when the kernel stops storing")."""
        inst = ev.instance
        k = inst.kernel
        if not (k.is_source and k.has_age and ev.stored_any):
            return []
        assert inst.age is not None
        nxt_age = inst.age + 1
        cur = self.kernel_for_age(k.name, nxt_age)
        if cur is None or not self._age_ok(nxt_age, cur):
            return []
        if cur is k:
            nxt = KernelInstance(k, nxt_age, inst.index)
            if nxt.key in self._dispatched:
                return []
            self._dispatched.add(nxt.key)
            self._bump(k.name, nxt_age)
            return [nxt]
        # The source's definition changed at an epoch ≤ nxt_age; the old
        # instance's index no longer maps onto the new decomposition, so
        # advance the new definition's whole domain (dispatch-once makes
        # this idempotent across the old instances finishing).
        if not (cur.is_source and cur.has_age):
            return []
        out: list[KernelInstance] = []
        for combo in self._domain_combos(cur):
            nxt = KernelInstance(cur, nxt_age, combo)
            if nxt.key in self._dispatched:
                continue
            self._dispatched.add(nxt.key)
            self._bump(cur.name, nxt_age)
            out.append(nxt)
        return out

    # ------------------------------------------------------------------
    def _restrict_from_region(
        self, fetch: FetchSpec, ev: StoreEvent
    ) -> dict[str, range] | None:
        """Candidate index-variable ranges implied by the stored region."""
        if not fetch.vars():
            return None
        extent = self._extent_of(ev.field)
        restrict: dict[str, range] = {}
        for dim, region, n in zip(fetch.dims, ev.region, extent):
            if dim.is_all:
                continue
            cand = dim.candidates(region, n)
            if dim.var in restrict:
                prev = restrict[dim.var]
                lo = max(prev.start, cand.start)
                hi = min(prev.stop, cand.stop)
                cand = range(lo, max(lo, hi))
            restrict[dim.var] = cand
        return restrict

    def _collect(
        self,
        kernel: KernelDef,
        age: int | None,
        restrict: Mapping[str, range] | None,
    ) -> list[KernelInstance]:
        """Find every not-yet-dispatched, fully satisfied combination."""
        # Cheap global pre-check: every variable-free fetch (whole-field)
        # must be complete; shared across all index combinations.
        for f in kernel.fetches:
            if f.vars():
                continue
            f_age = f.age.resolve(age)
            if not self.fields[f.field].is_complete(f_age, None):
                return []
            if not self._covers_producers(f.field, f_age):
                return []
        counts = kernel.index_counts(self._extent_of)
        ranges = []
        for v in kernel.index_vars:
            n = counts.get(v, 0)
            r = range(n)
            if restrict and v in restrict:
                rr = restrict[v]
                r = range(max(0, rr.start), min(n, rr.stop))
            if len(r) == 0:
                return []
            ranges.append(r)
        out: list[KernelInstance] = []
        var_fetches = [f for f in kernel.fetches if f.vars()]
        for combo in itertools.product(*ranges):
            inst = KernelInstance(kernel, age, combo)
            if inst.key in self._dispatched:
                continue
            self.candidates_examined += 1
            imap = dict(zip(kernel.index_vars, combo))
            ok = True
            for f in var_fetches:
                f_age = f.age.resolve(age)
                field = self.fields[f.field]
                region = f.region(imap, field.extent)
                empty_dims = [
                    i for i, s in enumerate(region) if s.stop <= s.start
                ]
                if empty_dims:
                    # A shrink-boundary stencil outside the extent is an
                    # absent neighbour: trivially satisfied.  Any other
                    # empty dimension means the combination is invalid.
                    if all(
                        not f.dims[i].is_all
                        and f.dims[i].boundary == "shrink"
                        for i in empty_dims
                    ):
                        continue
                    ok = False
                    break
                if not field.is_complete(f_age, region):
                    ok = False
                    break
            if ok:
                self._dispatched.add(inst.key)
                self._bump(kernel.name, age)
                out.append(inst)
        return out

    def _covers_producers(self, field: str, f_age: int | None) -> bool:
        """Whether the field's current extent reaches every producer's
        index domain at ``f_age``.

        Guards whole-field fetches against *premature* completeness: a
        field grows store by store, so a producer that has committed only
        its first elements momentarily satisfies
        ``store_count == prod(extent)`` at the partial extent.  Normal
        runs win that race by timing; a node failure between producer
        instances freezes the extent small for the whole detection
        window and would fire the consumer on a fragment.

        Only plain unit-block, zero-offset var dims constrain the extent
        — blocked or stencil dims and whole-array emits size the field by
        payload, and a conditional var-dim store (none exist in the
        bundled workloads; the skip-the-emit idiom is how whole-array
        sources signal EOF) would be indistinguishable from one still
        outstanding.

        Versioned: each producer age is checked against the program
        version that owns it, so a producer coarsened at a swap epoch is
        judged by its rewritten (blocked) store dims from that epoch on.
        """
        extent = self._extent_of(field)
        base = self._views[0]
        for v in self._views:
            for kernel, spec in v.producers.get(field, ()):
                if kernel.has_age and not spec.age.is_literal:
                    if f_age is None:
                        continue
                    p_age = spec.age.solve(f_age)
                    if p_age is None or not self._age_ok(p_age, kernel):
                        continue
                    if self._version_for_age(p_age) is not v:
                        continue
                else:
                    concrete = spec.age.literal if spec.age.is_literal else 0
                    if concrete != (f_age if f_age is not None else 0):
                        continue
                    # Literal-age / ageless producers never change
                    # across versions; judge them once, on the base.
                    if v is not base:
                        continue
                counts: dict[str, int] | None = None
                for i, dim in enumerate(spec.dims):
                    if dim.is_all or dim.block != 1 or dim.offset != 0:
                        continue
                    if counts is None:
                        counts = kernel.index_counts(self._extent_of)
                    need = counts.get(dim.var, 0)
                    if need and i < len(extent) and extent[i] < need:
                        return False
        return True

    def _bump(self, kernel: str, age: int | None) -> None:
        self._count[(kernel, age)] = self._count.get((kernel, age), 0) + 1
        if age is not None and age > self._max_disp.get(kernel, -1):
            self._max_disp[kernel] = age

    def _maybe_prune(self, kernel: KernelDef, age: int | None) -> None:
        """Drop a pending age once every combination at current extents
        has been dispatched (safe: new combinations require new store or
        resize events, which re-add the age)."""
        if age is None or age not in self._pending[kernel.name]:
            return
        counts = kernel.index_counts(self._extent_of)
        total = 1
        for v in kernel.index_vars:
            total *= counts.get(v, 0)
        if total and self._count.get((kernel.name, age), 0) >= total:
            self._pending[kernel.name].discard(age)

    # ------------------------------------------------------------------
    def dispatched_count(self, kernel: str | None = None) -> int:
        """Total instances dispatched (optionally for one kernel)."""
        if kernel is None:
            return len(self._dispatched)
        return sum(c for (k, _a), c in self._count.items() if k == kernel)

    def min_pending_age(self, kernels=None) -> int | None:
        """Lowest age any kernel still has pending (GC lower bound).

        ``kernels`` (an iterable of kernel names) scopes the probe to
        one subgraph — the per-session retirement path passes a tenant's
        namespaced kernel set so another session's frontier never pins
        (or frees past) this one's ages.
        """
        if kernels is None:
            ages = [a for s in self._pending.values() for a in s]
        else:
            names = set(kernels)
            ages = [
                a
                for k, s in self._pending.items()
                if k in names
                for a in s
            ]
        return min(ages) if ages else None
