"""The dependency analyzer.

Implements section VI-B of the paper: "When receiving such a storage
event, the runtime finds all *new* valid combinations of age and index
variables that can be processed as a result of the store statement, and
puts these in a per-kernel ready queue."

The analyzer is deliberately single-threaded (the prototype runs it in a
dedicated thread); all of its mutable state — the dispatched-instance
set, per-kernel pending ages, dispatch counters — is touched only from
that thread, so it needs no locks of its own.  Field completeness checks
go through the fields' own locks.

Algorithm sketch
----------------
For every store event on field ``F`` at age ``α`` covering region ``R``:

1. For each (kernel ``K``, fetch ``f``) with ``f.field == F``, derive the
   candidate *kernel ages*: solving ``f``'s age expression for ``α`` when
   it references the age variable, or rechecking every *pending* age when
   it is a literal match (a literal-age fetch alone cannot bound the age
   domain; program validation guarantees a variable-age fetch exists).
2. For each candidate age, enumerate candidate index combinations —
   variables bound by ``f`` are restricted to the block range overlapping
   ``R``; other variables range over the full instance count implied by
   current field extents.
3. A combination is dispatched when it has never been dispatched before
   (write-once ⇒ dispatch-once) and *every* fetch of ``K`` is complete
   for the resolved age/region.

Pending ages are pruned once every combination at current extents has
been dispatched; any event that could make new combinations runnable
(a store or resize) re-adds the age, so pruning never loses instances.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

from .events import InstanceDoneEvent, ResizeEvent, StoreEvent
from .fields import FieldStore
from .kernels import FetchSpec, KernelDef, KernelInstance, StoreSpec
from .program import Program


class DependencyAnalyzer:
    """Turns field store/resize events into newly runnable instances."""

    def __init__(
        self,
        program: Program,
        fields: FieldStore,
        max_age: int | None = None,
        producers: Iterable[KernelDef] | None = None,
    ) -> None:
        self.program = program
        self.fields = fields
        self.max_age = max_age
        self._dispatched: set = set()
        #: kernel name -> candidate ages not yet fully dispatched
        self._pending: dict[str, set[int]] = {
            k: set() for k in program.kernels
        }
        #: (kernel, age) -> number of instances dispatched
        self._count: dict[tuple[str, int | None], int] = {}
        #: field name -> [(kernel, fetch spec)] consuming it
        self._fetchers: dict[str, list[tuple[KernelDef, FetchSpec]]] = {}
        for k in program.kernels.values():
            for f in k.fetches:
                self._fetchers.setdefault(f.field, []).append((k, f))
        #: field name -> [(kernel, store spec)] writing it.  Drawn from
        #: ``producers`` when given — in a cluster each node's program
        #: holds only its own kernels, but a field's writer may run on
        #: another node, and whole-field completeness must account for it.
        self._producers: dict[str, list[tuple[KernelDef, StoreSpec]]] = {}
        src = producers if producers is not None else program.kernels.values()
        for k in src:
            for s in k.stores:
                self._producers.setdefault(s.field, []).append((k, s))
        #: instrumentation: store events processed / candidates examined
        self.events_processed = 0
        self.candidates_examined = 0

    # ------------------------------------------------------------------
    def _extent_of(self, field: str) -> tuple[int, ...]:
        return self.fields[field].extent

    def _age_ok(self, age: int | None, kernel: KernelDef | None = None) -> bool:
        if age is None:
            return True
        if self.max_age is not None and age > self.max_age:
            return False
        if (
            kernel is not None
            and kernel.age_limit is not None
            and age > kernel.age_limit
        ):
            return False
        return True

    def _domain_combos(self, kernel: KernelDef) -> Iterable[tuple[int, ...]]:
        if not kernel.index_vars:
            return [()]
        counts = dict(kernel.domain or {})
        ranges = [range(counts.get(v, 1)) for v in kernel.index_vars]
        return itertools.product(*ranges)

    # ------------------------------------------------------------------
    def initial_instances(self) -> list[KernelInstance]:
        """Instances runnable before any store: run-once kernels and the
        age-0 instances of aged source kernels."""
        out: list[KernelInstance] = []
        for k in self.program.kernels.values():
            if not k.is_source:
                continue
            age = 0 if k.has_age else None
            if not self._age_ok(age, k):
                continue
            for combo in self._domain_combos(k):
                inst = KernelInstance(k, age, combo)
                if inst.key not in self._dispatched:
                    self._dispatched.add(inst.key)
                    self._bump(k.name, age)
                    out.append(inst)
        return out

    # ------------------------------------------------------------------
    def on_store(self, ev: StoreEvent) -> list[KernelInstance]:
        """React to a store event: dispatch every newly satisfiable instance."""
        self.events_processed += 1
        out: list[KernelInstance] = []
        for kernel, fetch in self._fetchers.get(ev.field, ()):
            ages: list[int | None]
            if kernel.has_age:
                if fetch.age.literal is None:
                    a = fetch.age.solve(ev.age)
                    if a is None or not self._age_ok(a, kernel):
                        continue
                    self._pending[kernel.name].add(a)
                    ages = [a]
                elif fetch.age.matches_literal(ev.age):
                    ages = sorted(self._pending[kernel.name])
                else:
                    continue
            else:
                if not fetch.age.matches_literal(ev.age):
                    continue
                ages = [None]
            for age in ages:
                restrict = self._restrict_from_region(fetch, ev)
                out.extend(self._collect(kernel, age, restrict))
                self._maybe_prune(kernel, age)
        return out

    def on_resize(self, ev: ResizeEvent) -> list[KernelInstance]:
        """A resize may raise instance counts; recheck pending ages of
        every consumer of the field (and ageless consumers)."""
        self.events_processed += 1
        out: list[KernelInstance] = []
        for kernel, _fetch in self._fetchers.get(ev.field, ()):
            if kernel.has_age:
                for age in sorted(self._pending[kernel.name]):
                    out.extend(self._collect(kernel, age, None))
                    self._maybe_prune(kernel, age)
            else:
                out.extend(self._collect(kernel, None, None))
        return out

    def on_done(self, ev: InstanceDoneEvent) -> list[KernelInstance]:
        """Self-advance aged source kernels: instance ``a`` finishing with
        at least one store schedules instance ``a + 1`` (section VII-B:
        "the read loop ends when the kernel stops storing")."""
        inst = ev.instance
        k = inst.kernel
        if not (k.is_source and k.has_age and ev.stored_any):
            return []
        assert inst.age is not None
        nxt_age = inst.age + 1
        if not self._age_ok(nxt_age, k):
            return []
        nxt = KernelInstance(k, nxt_age, inst.index)
        if nxt.key in self._dispatched:
            return []
        self._dispatched.add(nxt.key)
        self._bump(k.name, nxt_age)
        return [nxt]

    # ------------------------------------------------------------------
    def _restrict_from_region(
        self, fetch: FetchSpec, ev: StoreEvent
    ) -> dict[str, range] | None:
        """Candidate index-variable ranges implied by the stored region."""
        if not fetch.vars():
            return None
        extent = self._extent_of(ev.field)
        restrict: dict[str, range] = {}
        for dim, region, n in zip(fetch.dims, ev.region, extent):
            if dim.is_all:
                continue
            cand = dim.candidates(region, n)
            if dim.var in restrict:
                prev = restrict[dim.var]
                lo = max(prev.start, cand.start)
                hi = min(prev.stop, cand.stop)
                cand = range(lo, max(lo, hi))
            restrict[dim.var] = cand
        return restrict

    def _collect(
        self,
        kernel: KernelDef,
        age: int | None,
        restrict: Mapping[str, range] | None,
    ) -> list[KernelInstance]:
        """Find every not-yet-dispatched, fully satisfied combination."""
        # Cheap global pre-check: every variable-free fetch (whole-field)
        # must be complete; shared across all index combinations.
        for f in kernel.fetches:
            if f.vars():
                continue
            f_age = f.age.resolve(age)
            if not self.fields[f.field].is_complete(f_age, None):
                return []
            if not self._covers_producers(f.field, f_age):
                return []
        counts = kernel.index_counts(self._extent_of)
        ranges = []
        for v in kernel.index_vars:
            n = counts.get(v, 0)
            r = range(n)
            if restrict and v in restrict:
                rr = restrict[v]
                r = range(max(0, rr.start), min(n, rr.stop))
            if len(r) == 0:
                return []
            ranges.append(r)
        out: list[KernelInstance] = []
        var_fetches = [f for f in kernel.fetches if f.vars()]
        for combo in itertools.product(*ranges):
            inst = KernelInstance(kernel, age, combo)
            if inst.key in self._dispatched:
                continue
            self.candidates_examined += 1
            imap = dict(zip(kernel.index_vars, combo))
            ok = True
            for f in var_fetches:
                f_age = f.age.resolve(age)
                field = self.fields[f.field]
                region = f.region(imap, field.extent)
                empty_dims = [
                    i for i, s in enumerate(region) if s.stop <= s.start
                ]
                if empty_dims:
                    # A shrink-boundary stencil outside the extent is an
                    # absent neighbour: trivially satisfied.  Any other
                    # empty dimension means the combination is invalid.
                    if all(
                        not f.dims[i].is_all
                        and f.dims[i].boundary == "shrink"
                        for i in empty_dims
                    ):
                        continue
                    ok = False
                    break
                if not field.is_complete(f_age, region):
                    ok = False
                    break
            if ok:
                self._dispatched.add(inst.key)
                self._bump(kernel.name, age)
                out.append(inst)
        return out

    def _covers_producers(self, field: str, f_age: int | None) -> bool:
        """Whether the field's current extent reaches every producer's
        index domain at ``f_age``.

        Guards whole-field fetches against *premature* completeness: a
        field grows store by store, so a producer that has committed only
        its first elements momentarily satisfies
        ``store_count == prod(extent)`` at the partial extent.  Normal
        runs win that race by timing; a node failure between producer
        instances freezes the extent small for the whole detection
        window and would fire the consumer on a fragment.

        Only plain unit-block, zero-offset var dims constrain the extent
        — blocked or stencil dims and whole-array emits size the field by
        payload, and a conditional var-dim store (none exist in the
        bundled workloads; the skip-the-emit idiom is how whole-array
        sources signal EOF) would be indistinguishable from one still
        outstanding.
        """
        extent = self._extent_of(field)
        for kernel, spec in self._producers.get(field, ()):
            if kernel.has_age and not spec.age.is_literal:
                if f_age is None:
                    continue
                p_age = spec.age.solve(f_age)
                if p_age is None or not self._age_ok(p_age, kernel):
                    continue
            else:
                concrete = spec.age.literal if spec.age.is_literal else 0
                if concrete != (f_age if f_age is not None else 0):
                    continue
            counts: dict[str, int] | None = None
            for i, dim in enumerate(spec.dims):
                if dim.is_all or dim.block != 1 or dim.offset != 0:
                    continue
                if counts is None:
                    counts = kernel.index_counts(self._extent_of)
                need = counts.get(dim.var, 0)
                if need and i < len(extent) and extent[i] < need:
                    return False
        return True

    def _bump(self, kernel: str, age: int | None) -> None:
        self._count[(kernel, age)] = self._count.get((kernel, age), 0) + 1

    def _maybe_prune(self, kernel: KernelDef, age: int | None) -> None:
        """Drop a pending age once every combination at current extents
        has been dispatched (safe: new combinations require new store or
        resize events, which re-add the age)."""
        if age is None or age not in self._pending[kernel.name]:
            return
        counts = kernel.index_counts(self._extent_of)
        total = 1
        for v in kernel.index_vars:
            total *= counts.get(v, 0)
        if total and self._count.get((kernel.name, age), 0) >= total:
            self._pending[kernel.name].discard(age)

    # ------------------------------------------------------------------
    def dispatched_count(self, kernel: str | None = None) -> int:
        """Total instances dispatched (optionally for one kernel)."""
        if kernel is None:
            return len(self._dispatched)
        return sum(c for (k, _a), c in self._count.items() if k == kernel)

    def min_pending_age(self) -> int | None:
        """Lowest age any kernel still has pending (GC lower bound)."""
        ages = [a for s in self._pending.values() for a in s]
        return min(ages) if ages else None
