"""Instrumentation: per-kernel instance counts and timing.

Reproduces the measurements behind tables II and III of the paper: for
every kernel definition, the number of instances dispatched, the mean
*dispatch time* (per-instance overhead the framework adds: dependency
matching, fetch slicing, field allocation/reallocation and store
processing) and the mean *kernel time* (time inside the native block).

The same data feeds the LLS's adaptive granularity policy (a high
dispatch/kernel ratio means the decomposition is too fine — the K-means
``assign`` kernel in table III) and, in the distributed layer, the HLS's
instrumentation-weighted repartitioning.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Mapping


@dataclass
class KernelStats:
    """Aggregated measurements for one kernel definition."""

    instances: int = 0
    dispatch_time: float = 0.0  #: total seconds of framework overhead
    kernel_time: float = 0.0  #: total seconds inside the native block
    ipc_time: float = 0.0  #: total seconds of cross-process transfer

    @property
    def mean_dispatch_us(self) -> float:
        """Mean dispatch overhead per instance, microseconds."""
        return 1e6 * self.dispatch_time / self.instances if self.instances else 0.0

    @property
    def mean_kernel_us(self) -> float:
        """Mean native-block time per instance, microseconds."""
        return 1e6 * self.kernel_time / self.instances if self.instances else 0.0

    @property
    def mean_ipc_us(self) -> float:
        """Mean cross-process transfer time per instance, microseconds.

        Zero on the ``threads`` backend, where no IPC happens.
        """
        return 1e6 * self.ipc_time / self.instances if self.instances else 0.0

    @property
    def dispatch_ratio(self) -> float:
        """dispatch / (dispatch + kernel) — the LLS's granularity signal."""
        total = self.dispatch_time + self.kernel_time
        return self.dispatch_time / total if total else 0.0

    def merged(self, other: "KernelStats") -> "KernelStats":
        """Sum of two stats records (cluster-wide merging)."""
        return KernelStats(
            self.instances + other.instances,
            self.dispatch_time + other.dispatch_time,
            self.kernel_time + other.kernel_time,
            self.ipc_time + other.ipc_time,
        )


def delta_stats(
    prev: Mapping[str, KernelStats] | None,
    cur: Mapping[str, KernelStats],
) -> dict[str, KernelStats]:
    """Per-kernel difference between two :meth:`Instrumentation.stats`
    snapshots (``cur - prev``), keeping only kernels that executed new
    instances in the interval.

    The online adaptation driver feeds these *interval* stats — not the
    whole-run averages — to :class:`~repro.core.scheduler.AdaptivePolicy`:
    after a coarsen swap the cumulative dispatch ratio still reflects the
    fine-grained prefix of the run, but the delta shows the rewritten
    kernel's true post-swap behaviour.
    """
    prev = prev or {}
    out: dict[str, KernelStats] = {}
    for name, s in cur.items():
        p = prev.get(name, KernelStats())
        n = s.instances - p.instances
        if n <= 0:
            continue
        out[name] = KernelStats(
            n,
            max(0.0, s.dispatch_time - p.dispatch_time),
            max(0.0, s.kernel_time - p.kernel_time),
            max(0.0, s.ipc_time - p.ipc_time),
        )
    return out


class Instrumentation:
    """Thread-safe collector of per-kernel stats for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[str, KernelStats] = {}
        self.analyzer_time = 0.0  #: seconds spent in the analyzer thread
        self.wall_time = 0.0  #: wall-clock duration of the run
        self._t0: float | None = None
        # Fault-tolerance counters (distributed runs): node failures
        # detected, re-execution retries launched, and the total seconds
        # spent in detection-to-replacement recovery.
        self.node_failures = 0
        self.recovery_retries = 0
        self.recovery_time = 0.0
        self.replayed_events = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the start of the run (wall-clock origin)."""
        self._t0 = time.perf_counter()

    def stop(self) -> None:
        """Freeze ``wall_time`` at the current clock."""
        if self._t0 is not None:
            self.wall_time = time.perf_counter() - self._t0

    def record(
        self,
        kernel: str,
        dispatch_time: float,
        kernel_time: float,
        ipc_time: float = 0.0,
    ) -> None:
        """Account one executed instance's dispatch and kernel seconds."""
        with self._lock:
            st = self._stats.setdefault(kernel, KernelStats())
            st.instances += 1
            st.dispatch_time += dispatch_time
            st.kernel_time += kernel_time
            st.ipc_time += ipc_time

    def record_batch(
        self,
        kernel: str,
        n: int,
        dispatch_time: float,
        kernel_time: float,
        ipc_time: float = 0.0,
    ) -> None:
        """Account one batched dispatch covering ``n`` instances: one
        lock acquisition, the batch's total seconds (so per-instance
        means like ``mean_dispatch_us`` stay comparable across batch
        sizes)."""
        with self._lock:
            st = self._stats.setdefault(kernel, KernelStats())
            st.instances += n
            st.dispatch_time += dispatch_time
            st.kernel_time += kernel_time
            st.ipc_time += ipc_time

    def add_analyzer_time(self, seconds: float) -> None:
        """Accumulate time spent inside the analyzer thread."""
        with self._lock:
            self.analyzer_time += seconds

    def record_failure(
        self, retries: int, recovery_s: float, replayed: int = 0
    ) -> None:
        """Account one node failure: the retry attempt number it took,
        the detection-to-replacement wall seconds, and the number of
        store/resize events replayed from the transport log."""
        with self._lock:
            self.node_failures += 1
            self.recovery_retries += retries
            self.recovery_time += recovery_s
            self.replayed_events += replayed

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, KernelStats]:
        """Snapshot of per-kernel stats."""
        with self._lock:
            return {
                k: KernelStats(
                    s.instances, s.dispatch_time, s.kernel_time, s.ipc_time
                )
                for k, s in self._stats.items()
            }

    def __getitem__(self, kernel: str) -> KernelStats:
        with self._lock:
            return self._stats.get(kernel, KernelStats())

    def total_instances(self) -> int:
        """Total instances recorded across all kernels."""
        with self._lock:
            return sum(s.instances for s in self._stats.values())

    def total_kernel_time(self) -> float:
        """Total native-block seconds across all kernels."""
        with self._lock:
            return sum(s.kernel_time for s in self._stats.values())

    def _scalars(self) -> tuple[float, float, int, int, float, int]:
        """Locked snapshot of the non-per-kernel accumulators."""
        with self._lock:
            return (
                self.analyzer_time,
                self.wall_time,
                self.node_failures,
                self.recovery_retries,
                self.recovery_time,
                self.replayed_events,
            )

    def merged(self, other: "Instrumentation") -> "Instrumentation":
        """A new collector holding the sum of both runs.

        Thread-safe against concurrent :meth:`record` /
        :meth:`add_analyzer_time` / :meth:`record_failure` on either
        operand: both per-kernel stats and the scalar accumulators are
        read as locked snapshots, so a merge taken mid-run is a
        consistent point-in-time view (the result itself is a fresh,
        unshared collector)."""
        out = Instrumentation()
        mine, theirs = self.stats(), other.stats()
        for k in set(mine) | set(theirs):
            s = mine.get(k, KernelStats()).merged(theirs.get(k, KernelStats()))
            out._stats[k] = s
        a, b = self._scalars(), other._scalars()
        out.analyzer_time = a[0] + b[0]
        out.wall_time = max(a[1], b[1])
        out.node_failures = a[2] + b[2]
        out.recovery_retries = a[3] + b[3]
        out.recovery_time = a[4] + b[4]
        out.replayed_events = a[5] + b[5]
        return out

    # ------------------------------------------------------------------
    def table(
        self, order: Iterable[str] | None = None, title: str | None = None
    ) -> str:
        """Render the paper's micro-benchmark table layout::

            Kernel         Instances  Dispatch Time  Kernel Time
            init                   1       69.00 us     18.00 us
        """
        stats = self.stats()
        names = list(order) if order is not None else sorted(stats)
        # The IPC column only appears when a process backend recorded
        # transfer time, so thread-mode tables keep the paper's layout.
        ipc = any(s.ipc_time > 0 for s in stats.values())
        lines = []
        if title:
            lines.append(title)
        header = (
            f"{'Kernel':<16}{'Instances':>12}{'Dispatch Time':>16}"
            f"{'Kernel Time':>16}"
        )
        if ipc:
            header += f"{'IPC Time':>16}"
        lines.append(header)
        for name in names:
            s = stats.get(name, KernelStats())
            row = (
                f"{name:<16}{s.instances:>12}"
                f"{s.mean_dispatch_us:>13.2f} us"
                f"{s.mean_kernel_us:>13.2f} us"
            )
            if ipc:
                row += f"{s.mean_ipc_us:>13.2f} us"
            lines.append(row)
        return "\n".join(lines)

    def as_rows(
        self, order: Iterable[str] | None = None
    ) -> list[tuple[str, int, float, float, float]]:
        """(kernel, instances, mean dispatch µs, mean kernel µs, mean
        IPC µs) rows.  The IPC column is 0.0 on the threads backend;
        consumers that predate it unpack with ``name, n, d, k, *_``."""
        stats = self.stats()
        names = list(order) if order is not None else sorted(stats)
        rows = []
        for n in names:
            s = stats.get(n, KernelStats())
            rows.append(
                (n, s.instances, s.mean_dispatch_us, s.mean_kernel_us,
                 s.mean_ipc_us)
            )
        return rows
