"""The execution-node runtime (paper, section VI-B).

Structure mirrors the prototype:

* kernel instances are executed by a pool of **worker threads** drawn
  from an age-ordered ready queue ("scheduled in an order that prefers
  the execution of kernel instances with a lower age value" — this is
  what keeps aging cycles such as ``mul2``/``plus5`` from starving other
  kernels);
* store/resize events produced by running instances are consumed by a
  **dedicated dependency-analyzer thread**, which pushes every newly
  satisfiable (age, index) combination onto the ready queue;
* the run terminates on *quiescence* — no queued events, no ready
  instances, no running instances — or on an external :meth:`stop`,
  a wall-clock timeout, or the ``max_age`` bound used to cut off
  non-terminating cyclic programs.

The counter protocol for quiescence: ``outstanding`` counts queued
events + ready instances + running instances.  Every producer increments
*before* the corresponding decrement can happen, so the counter reaching
zero is a stable property.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Any

import numpy as np

from ..obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    dump_flight,
    peak_rss_bytes,
)
from .analyzer import DependencyAnalyzer, ReplanRecord
from .backends import ExecutionBackend, resolve_backend
from .deadlines import TimerSet
from .errors import (
    KernelBodyError,
    RuntimeStateError,
    StallError,
    WriteOnceViolation,
)
from .events import (
    Event,
    InstanceDoneEvent,
    ReplanEvent,
    ResizeEvent,
    ShutdownEvent,
    StoreEvent,
    WorkToken,
)
from .fields import FieldStore, SharedFieldStore
from .instrumentation import Instrumentation
from .kernels import KernelContext, KernelInstance, coerce_store_value
from .program import Program
from .scheduler import FusionDecision, GranularityDecision


class ProgramHandle:
    """Swappable indirection over the program a node is executing.

    A node binds its analyzer, ready queue, and backend to this handle
    instead of a fixed :class:`~repro.core.program.Program`.  Each online
    re-binding (the LLS applying a coarsen/fuse decision mid-run)
    registers a new *(epoch, program)* version; ages below the epoch keep
    the previous version's decomposition, ages at or above it use the new
    one.  Registration happens on the analyzer thread; readers (backends,
    recovery, diagnostics) may be on any thread, so access is locked.
    """

    def __init__(self, program: Program) -> None:
        self._lock = threading.Lock()
        self._versions: list[tuple[int, Program]] = [(0, program)]

    @property
    def base(self) -> Program:
        """The version the run started with (owns ages before any swap)."""
        return self._versions[0][1]

    @property
    def current(self) -> Program:
        """The newest version (owns all ages ≥ :attr:`epoch`)."""
        with self._lock:
            return self._versions[-1][1]

    @property
    def epoch(self) -> int:
        """Epoch of the newest version (0 before any swap)."""
        with self._lock:
            return self._versions[-1][0]

    def register(self, epoch: int, program: Program) -> None:
        """Install a new version owning ages ≥ ``epoch`` (clamped to be
        monotonic: a version can never own ages an earlier one already
        claimed)."""
        with self._lock:
            epoch = max(epoch, self._versions[-1][0])
            self._versions.append((epoch, program))

    def versions(self) -> list[tuple[int, Program]]:
        """Snapshot of every ``(epoch, program)`` version, oldest first."""
        with self._lock:
            return list(self._versions)

    def version_for_age(self, age: int | None) -> Program:
        """The program owning ``age`` (``None`` — run-once work — stays
        on the base version)."""
        with self._lock:
            if age is None:
                return self._versions[0][1]
            for epoch, prog in reversed(self._versions):
                if epoch <= age:
                    return prog
            return self._versions[0][1]

    def kernel_for_age(self, name: str, age: int | None):
        """Definition of ``name`` in the version owning ``age`` (or
        ``None`` if that version no longer has the kernel)."""
        return self.version_for_age(age).kernels.get(name)


def _session_prefix(inst: KernelInstance) -> str:
    """Default session extractor for ``"fair"`` scheduling: the
    kernel-name prefix before the first ``"."`` (the multi-tenant
    namespace separator), or ``""`` for un-namespaced kernels."""
    name = inst.kernel.name
    i = name.find(".")
    return name[:i] if i > 0 else ""


class ReadyQueue:
    """Age-priority ready queue shared by the worker threads.

    Instances with lower age run first (``None`` ages — run-once
    kernels — sort before everything).  Ties break by insertion order,
    giving FIFO behaviour within an age.

    Alternative ``scheduling`` policies exist as ablation knobs for
    section VI-B's argument ("scheduled in an order that prefers the
    execution of kernel instances with a lower age value.  This ensures
    that no runnable kernel instance is starved by others that have no
    fetch statements"):

    * ``"age"`` (default) — the paper's policy;
    * ``"fifo"`` — insertion order (benign here because the serial
      analyzer enqueues in near-age order);
    * ``"lifo"`` — newest first (a work-stack, as many schedulers use):
      self-advancing source kernels race ahead of their consumers,
      ballooning the live field footprint — the starvation the paper's
      policy exists to prevent;
    * ``"fair"`` — multi-tenant deficit round-robin: instances are
      binned per *session* (``session_of(inst)``, by default the
      kernel-name prefix before the first ``"."``) with age priority
      *within* a session, and dispatch rotates across sessions so one
      hot tenant cannot starve the others.  ``session_weights`` maps a
      session to its quantum (pops per round-robin turn, default 1),
      letting a gold tier draw more dispatch slots than best-effort.

    Internally every policy runs on per-session heaps — the classic
    policies simply bin everything into the single ``""`` session, which
    degenerates to the original one-heap behaviour.  Sentinels live in a
    counter, not the heaps, and are only consumed once every heap is
    empty (the "sorts last" guarantee, now independent of session
    structure).
    """

    _SENTINEL = object()
    _POLICIES = ("age", "fifo", "lifo", "fair")

    def __init__(
        self,
        scheduling: str = "age",
        session_of=None,
        session_weights: "dict[str, int] | None" = None,
    ) -> None:
        if scheduling not in self._POLICIES:
            raise RuntimeStateError(
                f"unknown scheduling policy {scheduling!r}; "
                f"expected one of {self._POLICIES}"
            )
        if scheduling == "fair" and session_of is None:
            session_of = _session_prefix
        self._session_of = session_of if scheduling == "fair" else None
        self._quantum = {
            s: max(1, int(w)) for s, w in (session_weights or {}).items()
        }
        self._heaps: dict[str, list] = {}
        self._order: list[str] = []  # round-robin rotation of sessions
        self._rr = 0
        self._deficit: dict[str, int] = {}
        self._sentinels = 0
        self._depth = 0
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._age_counts: dict[int, int] = {}
        self._session_ages: dict[str, dict[int, int]] = {}
        self.scheduling = scheduling
        self.max_depth = 0  #: high-water mark (instrumentation)
        # Queue-wait accounting (enqueue -> dequeue seconds), aggregated
        # under the queue's own lock so the hot path pays no extra
        # synchronization; exported to the metrics registry at join().
        self.pushes = 0
        self.pops = 0
        self.wait_total = 0.0
        self.wait_max = 0.0

    def _heap_key(self, inst: KernelInstance) -> tuple[int, int]:
        seq = next(self._seq)
        if self.scheduling == "fifo":
            return (0, seq)
        if self.scheduling == "lifo":
            return (0, -seq)
        age = -1 if inst.age is None else inst.age
        return (age, seq)

    def _heap_for(self, session: str) -> list:
        heap = self._heaps.get(session)
        if heap is None:
            heap = self._heaps[session] = []
            self._order.append(session)
            self._deficit[session] = self._quantum.get(session, 1)
            self._session_ages[session] = {}
        return heap

    def push(self, inst: KernelInstance) -> None:
        """Enqueue a runnable instance (wakes one waiting worker)."""
        with self._cv:
            key, seq = self._heap_key(inst)
            session = self._session_of(inst) if self._session_of else ""
            heapq.heappush(
                self._heap_for(session),
                (key, seq, inst, time.perf_counter()),
            )
            real = -1 if inst.age is None else inst.age
            self._age_counts[real] = self._age_counts.get(real, 0) + 1
            ages = self._session_ages[session]
            ages[real] = ages.get(real, 0) + 1
            self._depth += 1
            self.pushes += 1
            self.max_depth = max(self.max_depth, self._depth)
            self._cv.notify()

    def push_sentinel(self, n: int = 1) -> None:
        """Wake ``n`` workers with an exit marker (always sorts last)."""
        with self._cv:
            self._sentinels += n
            self._cv.notify_all()

    def pop(self) -> KernelInstance | None:
        """Blocking pop; ``None`` means shut down."""
        return self.pop_timed()[0]

    def pop_timed(self) -> tuple[KernelInstance | None, float]:
        """Blocking pop returning ``(instance, queue_wait_seconds)``;
        ``(None, 0.0)`` means shut down."""
        with self._cv:
            while not (self._depth or self._sentinels):
                self._cv.wait()
            if not self._depth:
                self._sentinels -= 1
                return None, 0.0
            return self._pop_session_locked(self._pick_session_locked())

    def _pick_session_locked(self) -> str:
        """Choose the session to dispatch from (deficit round-robin).

        Caller holds the lock and has checked ``self._depth > 0``.  A
        session with remaining quantum and ready work wins; an exhausted
        one refills its deficit and yields the turn.  Two passes bound
        the scan: the first may only refill deficits, the second must
        then find a ready session.
        """
        order = self._order
        n = len(order)
        for _ in range(2 * n):
            s = order[self._rr % n]
            if not self._heaps[s]:
                self._rr += 1
                continue
            if self._deficit.get(s, 0) <= 0:
                self._deficit[s] = self._quantum.get(s, 1)
                self._rr += 1
                continue
            return s
        for s in order:  # pragma: no cover - defensive
            if self._heaps[s]:
                return s
        raise RuntimeStateError("ready queue depth/heap mismatch")

    def _pop_session_locked(
        self, session: str
    ) -> tuple[KernelInstance, float]:
        """Pop the head of one session's heap with full accounting;
        caller holds the lock and has checked the heap is non-empty."""
        _key, _seq, item, pushed = heapq.heappop(self._heaps[session])
        self._depth -= 1
        self._deficit[session] = self._deficit.get(session, 1) - 1
        real = -1 if item.age is None else item.age
        self._age_counts[real] -= 1
        if not self._age_counts[real]:
            del self._age_counts[real]
        ages = self._session_ages[session]
        ages[real] -= 1
        if not ages[real]:
            del ages[real]
        wait = time.perf_counter() - pushed
        self.pops += 1
        self.wait_total += wait
        if wait > self.wait_max:
            self.wait_max = wait
        return item, wait

    def pop_batch(
        self, max_n: int
    ) -> tuple[list[KernelInstance] | None, float]:
        """Blocking pop of a *run*: up to ``max_n`` ready instances of
        the same kernel definition and age, returning ``(batch,
        total_queue_wait_seconds)``; ``(None, 0.0)`` means shut down.

        The run is taken greedily from the head of the chosen session's
        heap, so batch formation respects the scheduling policy exactly
        — a batch is simply the instances the policy would have handed
        out next, whenever they happen to share a native block.  Under
        ``"fair"`` a batch never spans sessions (each member charges the
        session's deficit, so a large batch costs its tenant future
        turns).  Matching is by kernel-definition *identity* (``is``),
        which is strictly finer than name equality: a replan installs
        fresh definitions for the new epoch, so a batch can never mix
        pre- and post-swap decompositions even for ties within one age.
        Equal age keeps the GC/retirement live-age bookkeeping exact (a
        worker runs one age at a time).  Sentinels are consumed only
        when every heap is empty, so a shutdown marker is never consumed
        mid-batch.
        """
        with self._cv:
            while not (self._depth or self._sentinels):
                self._cv.wait()
            if not self._depth:
                self._sentinels -= 1
                return None, 0.0
            session = self._pick_session_locked()
            first, wait = self._pop_session_locked(session)
            batch = [first]
            heap = self._heaps[session]
            while (
                len(batch) < max_n
                and heap
                and heap[0][2].kernel is first.kernel
                and heap[0][2].age == first.age
            ):
                nxt, w = self._pop_session_locked(session)
                batch.append(nxt)
                wait += w
            return batch, wait

    def min_age(self, session: str | None = None) -> int | None:
        """Lowest age currently queued (for the GC live-age bound).

        With ``session`` the bound is scoped to that tenant's queued
        instances — the per-session retirement path must not see another
        session's frontier.
        """
        with self._lock:
            if session is None:
                counts = self._age_counts
            else:
                counts = self._session_ages.get(session, {})
            real = [a for a, c in counts.items() if c and a >= 0]
            return min(real) if real else None

    def drain(self) -> list:
        """Remove and return every queued instance (sentinels dropped).

        Used by the fail-stop wind-down of a distributed node: the
        returned instances are the node's abandoned work, and the caller
        retires their outstanding-work units so the cluster-wide counter
        stays consistent after the node dies.
        """
        with self._cv:
            items = [
                item
                for heap in self._heaps.values()
                for _key, _seq, item, _t in heap
            ]
            for heap in self._heaps.values():
                heap.clear()
            for ages in self._session_ages.values():
                ages.clear()
            self._age_counts.clear()
            self._depth = 0
            self._sentinels = 0
            return items

    def __len__(self) -> int:
        with self._lock:
            return self._depth + self._sentinels


class WorkCounter:
    """Counts outstanding work: queued events + ready instances + running
    instances.  Producers always increment before the matching decrement
    can occur, so reaching zero is stable and means quiescence.  Shared
    across nodes in a distributed run so quiescence is global."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._count = 0
        self._poked = False
        self._last_activity = time.monotonic()

    def inc(self, n: int = 1) -> None:
        """Add outstanding work units."""
        with self._cv:
            self._count += n
            self._last_activity = time.monotonic()

    def dec(self, n: int = 1) -> None:
        """Retire work units; reaching zero signals quiescence."""
        with self._cv:
            self._count -= n
            self._last_activity = time.monotonic()
            if self._count <= 0:
                self._cv.notify_all()

    def poke(self) -> None:
        """Wake all waiters without changing the count (stop/error)."""
        with self._cv:
            self._poked = True
            self._cv.notify_all()

    def value(self) -> int:
        """Current outstanding count (diagnostics only)."""
        with self._lock:
            return self._count

    def idle_for(self) -> float:
        """Seconds since the last inc/dec (stall-watchdog diagnostics)."""
        with self._lock:
            return time.monotonic() - self._last_activity

    def wait(
        self,
        timeout: float | None = None,
        stall_timeout: float | None = None,
    ) -> str:
        """Block until quiescent, poked, timed out, or stalled; returns
        ``"idle"``, ``"poked"``, ``"timeout"`` or ``"stalled"``.

        ``stall_timeout`` is the watchdog for a wedged run: with
        outstanding work but no inc/dec activity for that many seconds,
        the wait returns ``"stalled"`` instead of hanging forever (the
        latent failure mode of a node that stops draining its queue).
        Pick it larger than the longest single kernel body — a long
        in-flight instance touches the counter only when it retires.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                if self._poked:
                    return "poked"
                if self._count == 0:
                    return "idle"
                now = time.monotonic()
                waits = []
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return "timeout"
                    waits.append(remaining)
                if stall_timeout is not None:
                    stall_at = self._last_activity + stall_timeout
                    if now >= stall_at:
                        return "stalled"
                    waits.append(stall_at - now)
                self._cv.wait(min(waits) if waits else None)


@dataclass
class RunResult:
    """Outcome of :meth:`ExecutionNode.run`."""

    reason: str  #: "idle" | "stopped" | "timeout"
    wall_time: float
    instrumentation: Instrumentation
    fields: FieldStore
    ready_high_water: int = 0
    gc_bytes: int = 0
    backend: str = "threads"  #: execution backend that ran the program
    metrics: "MetricsRegistry | None" = None  #: the node's registry
    tracer: "Tracer | None" = None  #: the tracer the run recorded into
    #: Mid-run LLS re-bindings applied, in order (empty when static).
    replans: list = dc_field(default_factory=list)
    #: :class:`~repro.stream.StreamReport` when the run was driven by a
    #: live source (``run_program(stream=...)``); ``None`` for batch runs.
    stream: Any = None
    #: :class:`~repro.obs.Telemetry` bundle when the run was launched
    #: with ``telemetry=...``; ``None`` otherwise.
    telemetry: Any = None

    @property
    def stats(self):
        """Per-kernel stats snapshot (shorthand for instrumentation.stats())."""
        return self.instrumentation.stats()


class ExecutionNode:
    """A P2G execution node for multi-core machines.

    Parameters
    ----------
    program:
        The (possibly LLS-transformed) program to execute.
    workers:
        Number of worker threads (the paper sweeps 1–8).  The dependency
        analyzer always runs in its own additional thread, exactly as in
        the prototype.
    max_age:
        Upper bound on instance ages; bounds non-terminating cyclic
        programs (``mul2``/``plus5``) and iteration-limited runs
        (K-means "is not run until convergence, but with 10 iterations").
    gc_fields:
        Enable garbage collection of old field ages (section IX).
    keep_ages:
        How many ages behind the oldest live consumer to retain when GC
        is on.
    name:
        Node name (used by the distributed layer and in logs).
    backend:
        Execution backend: ``"threads"`` (default — deterministic,
        GIL-bound), ``"processes"`` (true-parallel worker processes over
        shared-memory fields), or an
        :class:`~repro.core.backends.ExecutionBackend` instance.
    fields / counter / timers:
        Normally created internally; the distributed layer passes a
        shared :class:`~repro.core.fields.FieldStore`, a cluster-wide
        :class:`WorkCounter` (so quiescence is detected globally) and a
        shared :class:`TimerSet` when several nodes cooperate on one
        program.
    on_event:
        Optional tap invoked with every locally produced store/resize
        event — the hook the distributed transport uses to forward
        events to the other nodes' analyzers.
    recover:
        Recovery mode for replacement nodes in a fault-tolerant cluster
        run: stores into already-complete regions are skipped (the dead
        predecessor wrote identical bytes — write-once determinism)
        instead of raising :class:`WriteOnceViolation`, and the store
        event is still re-announced so nodes that missed the original
        delivery catch up.
    dependency_kernels:
        Kernel definitions the dependency analyzer should treat as the
        field producers (default: this program's kernels).  The
        distributed layer passes the *full* program's kernels so a node
        judging whole-field completeness accounts for writers partitioned
        onto other nodes.
    tracer:
        Optional :class:`~repro.obs.Tracer` recording per-instance
        lifecycle spans (queue wait, fetch, native block, store, IPC)
        plus analyzer and scheduler events.  Defaults to the shared
        disabled tracer; every instrumentation point is guarded by its
        ``enabled`` flag, so tracing off costs one attribute test.
    metrics:
        Optional shared :class:`~repro.obs.MetricsRegistry` (a cluster
        passes one registry to all of its nodes so counters aggregate
        cluster-wide); the node creates its own when omitted.
    batch:
        Maximum instances a worker claims per ready-queue pop (default
        1 — the classic per-instance path).  Values > 1 enable batched
        dispatch: runs of same-kernel/same-age instances execute as one
        backend call (one IPC message on the processes backend, one
        trace span, one metrics/instrumentation update), through the
        kernel's vectorized ``batch_body`` when one is attached and a
        pooled-context scalar loop otherwise.  Output is byte-identical
        either way.
    """

    #: Per-thread join bound during a stall/timeout teardown; threads
    #: still alive afterwards are daemonic and abandoned.
    _TEARDOWN_JOIN_TIMEOUT = 1.0

    def __init__(
        self,
        program: Program,
        workers: int = 1,
        *,
        max_age: int | None = None,
        gc_fields: bool = False,
        keep_ages: int = 1,
        name: str = "node0",
        clock=None,
        backend: "str | ExecutionBackend" = "threads",
        fields: FieldStore | None = None,
        counter: "WorkCounter | None" = None,
        timers: TimerSet | None = None,
        on_event=None,
        scheduling: str = "age",
        session_of=None,
        session_weights: "dict[str, int] | None" = None,
        recover: bool = False,
        dependency_kernels=None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        batch: int = 1,
        timeline=None,
    ) -> None:
        if workers < 1:
            raise RuntimeStateError("need at least one worker thread")
        if batch < 1:
            raise RuntimeStateError("batch size must be >= 1")
        self.program = program
        self.workers = workers
        self.batch = batch
        self.name = name
        self.max_age = max_age
        self.gc_fields = gc_fields
        self.keep_ages = keep_ages
        self.backend = resolve_backend(backend)
        self._owns_fields = fields is None
        self.fields = fields if fields is not None else (
            self.backend.create_fields(program)
        )
        self.timers = timers if timers is not None else TimerSet(
            program.timers, clock
        )
        #: Swappable program indirection: the analyzer registers every
        #: online re-binding here so backends/recovery/diagnostics can
        #: resolve the program version owning any given age.
        self.handle = ProgramHandle(program)
        self.analyzer = DependencyAnalyzer(
            program, self.fields, max_age, producers=dependency_kernels,
            handle=self.handle,
        )
        #: Applied mid-run re-bindings, in order (see :meth:`request_replan`).
        self.replans: list[ReplanRecord] = []
        #: Optional callback ``(node, record)`` fired on the analyzer
        #: thread after a *local* replan is applied — the distributed
        #: layer uses it to broadcast the committed epoch to peer nodes.
        self.on_replan = None
        self.instrumentation = Instrumentation()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Live memory observability: computed gauges evaluated at
        # snapshot time, so a streaming run's boundedness can be watched
        # without polling overhead on the hot path.  A cluster's nodes
        # share one registry and one field store, so re-registration just
        # rebinds the same callables.
        self.metrics.gauge_fn("fields.live_bytes", self.fields.live_bytes)
        self.metrics.gauge_fn("process.peak_rss_bytes", peak_rss_bytes)
        self._m_instances = self.metrics.counter("instances.executed")
        self._m_fetches = self.metrics.counter("fields.fetches")
        self._m_stores = self.metrics.counter("fields.stores")
        self._m_ready_wait = self.metrics.histogram("ready.wait_s")
        # Hot-path guards, read once: a disabled registry/tracer costs
        # one cached attribute test per instance instead of a lock per
        # counter bump (see obs/metrics.py and obs/tracing.py).
        self._metrics_on = getattr(self.metrics, "enabled", True)
        self._trace_on = self.tracer.enabled
        # Frame timeline (telemetry): same guard shape — one cached
        # reference, bound to None when telemetry is off, so every
        # hot-path site pays a single ``is not None`` test.
        self._timeline = (
            timeline if timeline is not None and timeline.enabled else None
        )
        self._queue_wait_by_worker: dict[int, float] = {}
        self.ready = ReadyQueue(scheduling, session_of, session_weights)
        #: The extractor the fair queue ended up with (None for classic
        #: policies): the per-session retirement path reuses it to scope
        #: the running-age probe to one tenant.
        self.session_of = self.ready._session_of
        self.on_event = on_event
        self._events: queue.SimpleQueue = queue.SimpleQueue()
        self._counter = counter if counter is not None else WorkCounter()
        self._stop = threading.Event()
        self._error: BaseException | None = None
        self._ran = False
        #: Recovery mode (a replacement node re-executing a dead node's
        #: kernels): a store whose region is already complete is skipped
        #: instead of raising WriteOnceViolation — write-once determinism
        #: guarantees the re-executed instance produced identical bytes.
        self.recover = recover
        self._dead = False
        self._inject_lock = threading.Lock()
        self._abandoned = 0  #: instances popped but never executed
        self._teardown_hooks: list = []
        self._threads: list[threading.Thread] = []
        self._running_ages: dict[int, int] = {}  # worker id -> age
        self._running_sessions: dict[int, str] = {}  # worker id -> session
        self._gc_bytes = 0
        self._max_back = max(
            (0,)
            + tuple(
                -f.age.offset
                for k in program.kernels.values()
                for f in k.fetches
                if f.age.literal is None and f.age.offset < 0
            )
        )

    # ------------------------------------------------------------------
    # Outstanding-work counter
    # ------------------------------------------------------------------
    def _inc(self, n: int = 1) -> None:
        self._counter.inc(n)

    def _dec(self, n: int = 1) -> None:
        self._counter.dec(n)

    def inject(self, ev: Event) -> None:
        """Enqueue an externally produced event (distributed layer:
        another node's store arriving over the transport).

        Dropped silently once the node has been wound down — a late
        delivery racing the fail-stop teardown must not re-increment the
        shared counter after the node's outstanding work was reclaimed.
        """
        with self._inject_lock:
            if self._dead:
                return
            self._inc()
            self._events.put(ev)

    @property
    def current_program(self) -> Program:
        """The newest program version behind :attr:`handle`."""
        return self.handle.current

    def request_replan(
        self, decisions, *, epoch: int | None = None, remote: bool = False
    ) -> bool:
        """Ask the analyzer thread to re-bind to a rewritten program.

        Queues a :class:`ReplanEvent` carrying the LLS ``decisions``; the
        analyzer applies them at a safe age boundary (see
        :meth:`DependencyAnalyzer.apply_replan`).  The queued event holds
        a :class:`~repro.core.events.WorkToken`, so a run cannot be
        declared idle while a swap is in flight.  Thread-safe; callable
        from the adaptation driver or a transport handler.  Returns
        ``False`` when the node has already wound down (or finished) and
        the request was dropped.

        ``remote`` marks a producers-only update for kernels owned by
        another node, pinned at that node's committed ``epoch``.
        """
        decisions = tuple(decisions)
        if not decisions:
            return False
        with self._inject_lock:
            if self._dead:
                return False
            token = WorkToken(self._counter, label=f"replan:{self.name}")
            self._events.put(ReplanEvent(decisions, epoch=epoch,
                                         remote=remote, token=token))
        return True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _execute(
        self,
        inst: KernelInstance,
        worker_id: int,
        ctx: KernelContext | None = None,
    ) -> None:
        kernel = inst.kernel
        t0 = time.perf_counter()
        imap = inst.index_map()
        fetched: dict[str, Any] = {}
        for f in kernel.fetches:
            field = self.fields[f.field]
            f_age = f.age.resolve(inst.age)
            if f.whole_field():
                value: Any = field.fetch(f_age, None)
            else:
                region = f.region(imap, field.extent)
                if any(s.stop <= s.start for s in region):
                    # absent shrink-boundary neighbour: empty array
                    shape = tuple(
                        max(0, s.stop - s.start) for s in region
                    )
                    value = np.zeros(shape, dtype=field.fdef.np_dtype)
                else:
                    value = field.fetch(f_age, region)
                if f.scalar and value.size == 1:
                    value = value.reshape(()).item()
            fetched[f.param] = value
        if ctx is None:
            ctx = KernelContext(
                age=inst.age,
                index=imap,
                fetched=fetched,
                timers=self.timers.as_mapping(),
                node=self,
            )
        else:
            # Batched dispatch pools one context per worker and rebinds
            # it between instances instead of allocating per call.
            ctx.reset(inst.age, imap, fetched)
        t1 = time.perf_counter()
        try:
            kernel.body(ctx)
        except Exception as exc:  # noqa: BLE001 - rewrapped with context
            raise KernelBodyError(kernel.name, inst.age, inst.index, exc)
        t2 = time.perf_counter()
        stored_any = False
        for s in kernel.stores:
            if s.emit_key not in ctx.emitted:
                continue
            value = ctx.emitted[s.emit_key]
            field = self.fields[s.field]
            s_age = s.age.resolve(inst.age)
            arr, spec = coerce_store_value(
                value, field.fdef.np_dtype, field.ndim, s
            )
            region = spec.region(imap, arr.shape)
            if self.recover and field.is_complete(s_age, region):
                # The dead predecessor already committed this region with
                # identical bytes (write-once determinism); skip the
                # payload write but re-announce the store so consumers
                # that missed the original delivery become runnable.
                stored_any = True
                self._post(StoreEvent(s.field, s_age, region))
                continue
            try:
                resize = field.store(s_age, region, arr)
            except WriteOnceViolation:
                if not self.recover:
                    raise
                # Recovery dispatches the dead node's in-flight work twice
                # on purpose (direct re-enqueue + replay-driven analyzer
                # rediscovery); when both copies run concurrently the
                # completeness check above races the other copy's commit.
                # Losing that race is the skip case arriving late: the
                # winner wrote the same bytes.
                stored_any = True
                self._post(StoreEvent(s.field, s_age, region))
                continue
            stored_any = True
            if resize is not None:
                self._post(ResizeEvent(s.field, resize.old_extent,
                                       resize.new_extent))
            self._post(StoreEvent(s.field, s_age, region))
        for key, value in ctx.outputs:
            self._deliver_output(kernel.name, inst.age, inst.index,
                                 key, value)
        t3 = time.perf_counter()
        self.instrumentation.record(
            kernel.name, (t1 - t0) + (t3 - t2), t2 - t1
        )
        self._account_instance(len(kernel.fetches), len(kernel.stores))
        tl = self._timeline
        if tl is not None and inst.age is not None:
            sess = self.session_of(inst) if self.session_of else ""
            tl.span(sess, inst.age, "store", t0, t1)
            tl.span(sess, inst.age, "compute", t1, t2)
            tl.span(sess, inst.age, "store", t2, t3)
        tr = self.tracer
        if tr.enabled:
            self._trace_instance(inst, worker_id, t0, t1, t2, t3)
        self._post(
            InstanceDoneEvent(
                inst, stored_any, kernel_time=t2 - t1,
                dispatch_time=(t1 - t0) + (t3 - t2),
            )
        )

    def _account_instance(self, n_fetches: int, n_stores: int) -> None:
        """Per-instance metric counters (both execution backends)."""
        if not self._metrics_on:
            return
        self._m_instances.inc()
        if n_fetches:
            self._m_fetches.inc(n_fetches)
        if n_stores:
            self._m_stores.inc(n_stores)

    def _account_batch(
        self, n: int, n_fetches: int, n_stores: int
    ) -> None:
        """One metrics update covering ``n`` batched instances."""
        if not self._metrics_on:
            return
        self._m_instances.inc(n)
        if n_fetches:
            self._m_fetches.inc(n_fetches)
        if n_stores:
            self._m_stores.inc(n_stores)

    def _execute_batch(self, batch: list, worker_id: int) -> None:
        """Run a same-kernel/same-age batch in the parent process.

        Tries the kernel's vectorized ``batch_body`` first (one NumPy
        call over the stacked fetches); batches it cannot handle —
        no ``batch_body``, ragged trailing regions, a runtime
        :class:`~repro.core.vectorize.VectorizeFallback` — run through
        the scalar body per instance with one pooled
        :class:`KernelContext`.  Either way every instance still posts
        its own store/done events, so the analyzer, stream credits and
        age retirement observe exactly the per-instance event stream.
        """
        kernel = batch[0].kernel
        if len(batch) > 1 and kernel.batch_body is not None:
            if self._execute_batch_vectorized(batch, worker_id):
                return
        ctx = KernelContext(
            timers=self.timers.as_mapping(), node=self
        )
        for inst in batch:
            self._execute(inst, worker_id, ctx=ctx)

    def _execute_batch_vectorized(
        self, batch: list, worker_id: int
    ) -> bool:
        """One stacked ``batch_body`` call for the whole batch; returns
        ``False`` when this batch must fall back to the scalar path."""
        from .vectorize import (
            BatchKernelContext,
            VectorizeFallback,
            batch_fetch_plan,
        )

        kernel = batch[0].kernel
        age = batch[0].age
        n = len(batch)
        t0 = time.perf_counter()
        imaps = [inst.index_map() for inst in batch]
        plan = batch_fetch_plan(
            kernel, age, imaps, lambda name: self.fields[name].extent
        )
        if plan is None:
            return False
        fetched: dict[str, Any] = {}
        shared: set[str] = set()
        for f, f_age, regions in plan:
            field = self.fields[f.field]
            if regions is None:
                fetched[f.param] = field.fetch(f_age, None)
                shared.add(f.param)
                continue
            shape = tuple(s.stop - s.start for s in regions[0])
            stack = np.empty((n,) + shape, dtype=field.fdef.np_dtype)
            for i, region in enumerate(regions):
                stack[i] = field.fetch(f_age, region)
            fetched[f.param] = stack
        bctx = BatchKernelContext(age, imaps, fetched,
                                  frozenset(shared))
        t1 = time.perf_counter()
        try:
            kernel.batch_body(bctx)
        except VectorizeFallback:
            return False
        except Exception as exc:  # noqa: BLE001 - rewrapped with context
            raise KernelBodyError(
                kernel.name, age, batch[0].index, exc
            )
        t2 = time.perf_counter()
        stored = [False] * n
        for s in kernel.stores:
            if s.emit_key not in bctx.emitted:
                continue
            values = bctx.emitted[s.emit_key]
            field = self.fields[s.field]
            s_age = s.age.resolve(age)
            for i, imap in enumerate(imaps):
                arr, spec = coerce_store_value(
                    values[i], field.fdef.np_dtype, field.ndim, s
                )
                region = spec.region(imap, arr.shape)
                stored[i] = True
                if self.recover and field.is_complete(s_age, region):
                    self._post(StoreEvent(s.field, s_age, region))
                    continue
                try:
                    resize = field.store(s_age, region, arr)
                except WriteOnceViolation:
                    if not self.recover:
                        raise
                    # Same race as the scalar path: the duplicate copy of
                    # this instance committed between the completeness
                    # check and our store — identical bytes, announce and
                    # move on.
                    self._post(StoreEvent(s.field, s_age, region))
                    continue
                if resize is not None:
                    self._post(ResizeEvent(s.field, resize.old_extent,
                                           resize.new_extent))
                self._post(StoreEvent(s.field, s_age, region))
        t3 = time.perf_counter()
        dispatch = (t1 - t0) + (t3 - t2)
        kernel_time = t2 - t1
        self.instrumentation.record_batch(
            kernel.name, n, dispatch, kernel_time
        )
        self._account_batch(
            n, n * len(kernel.fetches), n * len(kernel.stores)
        )
        tl = self._timeline
        if tl is not None and age is not None:
            sess = self.session_of(batch[0]) if self.session_of else ""
            tl.span(sess, age, "store", t0, t1)
            tl.span(sess, age, "compute", t1, t2)
            tl.span(sess, age, "store", t2, t3)
        if self._trace_on:
            thread = f"worker{worker_id}"
            wait = self._queue_wait_by_worker.get(worker_id, 0.0)
            self.tracer.complete(
                f"{kernel.name}[x{n}]", "kernel", self.name, thread,
                t0, t3,
                {
                    "age": age,
                    "batch": n,
                    "vectorized": True,
                    "queue_wait_us": round(wait * 1e6, 1),
                },
            )
        for i, inst in enumerate(batch):
            self._post(
                InstanceDoneEvent(
                    inst, stored[i], kernel_time=kernel_time / n,
                    dispatch_time=dispatch / n,
                )
            )
        return True

    def _trace_instance(
        self,
        inst: KernelInstance,
        worker_id: int,
        t0: float,
        t1: float,
        t2: float,
        t3: float,
    ) -> None:
        """Emit one instance's lifecycle spans: the enclosing kernel
        span plus fetch / native-block / store child phases, in the
        worker's lane.  Queue wait is attached as an argument (the
        instance sat in the ready queue, not on this worker's lane)."""
        tr = self.tracer
        thread = f"worker{worker_id}"
        wait = self._queue_wait_by_worker.get(worker_id, 0.0)
        args = {
            "age": inst.age,
            "index": list(inst.index),
            "queue_wait_us": round(wait * 1e6, 1),
        }
        tr.complete(inst.kernel.name, "kernel", self.name, thread,
                    t0, t3, args)
        tr.complete("fetch", "phase", self.name, thread, t0, t1)
        tr.complete("native", "phase", self.name, thread, t1, t2)
        tr.complete("store", "phase", self.name, thread, t2, t3)

    def _deliver_output(
        self, kernel: str, age, index, key: str, value: Any
    ) -> None:
        """Hand an out-of-band ``ctx.output`` value to the program's
        registered handler (always in the parent process)."""
        handler = self.program.output_handler
        if handler is None:
            raise RuntimeStateError(
                f"kernel {kernel!r} produced output {key!r} but the "
                f"program has no output handler; call "
                f"program.set_output_handler()"
            )
        handler(kernel, age, index, key, value)

    def _worker_loop(self, worker_id: int) -> None:
        if self.batch > 1:
            self._worker_loop_batched(worker_id)
            return
        while True:
            inst, wait = self.ready.pop_timed()
            if inst is None:
                return
            if self._metrics_on:
                self._m_ready_wait.observe(wait)
            if self._trace_on:
                self._queue_wait_by_worker[worker_id] = wait
            if self._timeline is not None and inst.age is not None:
                now = time.perf_counter()
                self._timeline.span(
                    self.session_of(inst) if self.session_of else "",
                    inst.age, "queue", now - wait, now,
                )
            if inst.age is not None:
                self._running_ages[worker_id] = inst.age
                if self.session_of is not None:
                    self._running_sessions[worker_id] = self.session_of(inst)
            try:
                if not self._stop.is_set():
                    self.backend.execute(inst, worker_id)
                else:
                    self._abandoned += 1
            except BaseException as exc:  # noqa: BLE001
                self._error = exc
                self._stop.set()
                self._counter.poke()
                return
            finally:
                self._running_ages.pop(worker_id, None)
                self._running_sessions.pop(worker_id, None)
                self._dec()

    def _worker_loop_batched(self, worker_id: int) -> None:
        """Batched variant of the worker loop: drains same-kernel runs
        from the ready queue and dispatches them as one backend call.
        Ready-queue wait is observed once per batch (the sum over its
        members), so ``ready.wait_s.count`` counts *dispatches*, not
        instances, in batched mode."""
        while True:
            batch, wait = self.ready.pop_batch(self.batch)
            if batch is None:
                return
            if self._metrics_on:
                self._m_ready_wait.observe(wait)
            if self._trace_on:
                self._queue_wait_by_worker[worker_id] = wait
            if self._timeline is not None and batch[0].age is not None:
                now = time.perf_counter()
                self._timeline.span(
                    self.session_of(batch[0]) if self.session_of else "",
                    batch[0].age, "queue", now - wait, now,
                )
            if batch[0].age is not None:
                self._running_ages[worker_id] = batch[0].age
                if self.session_of is not None:
                    self._running_sessions[worker_id] = self.session_of(
                        batch[0]
                    )
            try:
                if not self._stop.is_set():
                    self.backend.execute_batch(batch, worker_id)
                else:
                    self._abandoned += len(batch)
            except BaseException as exc:  # noqa: BLE001
                self._error = exc
                self._stop.set()
                self._counter.poke()
                return
            finally:
                self._running_ages.pop(worker_id, None)
                self._running_sessions.pop(worker_id, None)
                self._dec(len(batch))

    # ------------------------------------------------------------------
    # Analyzer side
    # ------------------------------------------------------------------
    def _post(self, ev: Event) -> None:
        self._inc()
        self._events.put(ev)
        if self.on_event is not None and isinstance(
            ev, (StoreEvent, ResizeEvent)
        ):
            self.on_event(self, ev)

    def _dispatch(self, instances) -> None:
        n = 0
        for inst in instances:
            self._inc()
            self.ready.push(inst)
            n += 1
        if n and self.tracer.enabled:
            self.tracer.instant(
                "dispatch", "scheduler", self.name, "analyzer",
                args={"count": n},
            )

    def _retire_event(self, ev: Event) -> None:
        """Retire one queued event's outstanding-work unit.

        Token-carrying events (replan swaps) release their own
        :class:`~repro.core.events.WorkToken`; everything else retires
        the generic per-event count.
        """
        token = getattr(ev, "token", None)
        if token is not None:
            token.release()
        else:
            self._dec()

    def _analyzer_loop(self) -> None:
        while True:
            ev = self._events.get()
            if isinstance(ev, ShutdownEvent):
                return
            t0 = time.perf_counter()
            try:
                if isinstance(ev, StoreEvent):
                    self._dispatch(self.analyzer.on_store(ev))
                elif isinstance(ev, ResizeEvent):
                    self._dispatch(self.analyzer.on_resize(ev))
                elif isinstance(ev, InstanceDoneEvent):
                    self._dispatch(self.analyzer.on_done(ev))
                    if self.gc_fields:
                        self._collect_garbage()
                elif isinstance(ev, ReplanEvent):
                    self._handle_replan(ev)
            except BaseException as exc:  # noqa: BLE001
                self._error = exc
                self._stop.set()
                self._counter.poke()
                return
            finally:
                t1 = time.perf_counter()
                self.instrumentation.add_analyzer_time(t1 - t0)
                tr = self.tracer
                if tr.enabled:
                    args = None
                    if isinstance(ev, StoreEvent):
                        args = {"field": ev.field, "age": ev.age}
                    elif isinstance(ev, ResizeEvent):
                        args = {"field": ev.field}
                    tr.complete(type(ev).__name__, "analyzer",
                                self.name, "analyzer", t0, t1, args)
                self._retire_event(ev)

    def _handle_replan(self, ev: ReplanEvent) -> None:
        """Apply a queued re-binding on the analyzer thread.

        Local replans rewrite this node's program (new version at the
        analyzer-chosen safe epoch), notify the backend so worker
        processes pick up the swap, and fire :attr:`on_replan`.  Remote
        replans only advance the producer bookkeeping for kernels owned
        by other nodes.  Either way the adaptation counters and a
        ``replan`` span record what happened.
        """
        t0 = time.perf_counter()
        if ev.remote:
            rec = self.analyzer.apply_remote(ev.decisions, ev.epoch)
        else:
            rec = self.analyzer.apply_replan(ev.decisions)
        if rec is None:
            return
        self.replans.append(rec)
        m = self.metrics
        m.counter("adapt.replans").inc()
        for d in rec.decisions:
            if isinstance(d, GranularityDecision):
                m.counter("adapt.coarsen").inc()
            elif isinstance(d, FusionDecision):
                m.counter("adapt.fuse").inc()
        m.gauge("adapt.epoch").set_max(rec.epoch)
        if not rec.remote:
            self.backend.on_replan(rec.decisions, rec.epoch)
        tr = self.tracer
        if tr.enabled:
            tr.complete(
                "replan", "adapt", self.name, "analyzer",
                t0, time.perf_counter(),
                args={
                    "epoch": rec.epoch,
                    "remote": rec.remote,
                    "decisions": [repr(d) for d in rec.decisions],
                    "skipped": [repr(d) for d in rec.skipped],
                },
            )
        if not rec.remote and self.on_replan is not None:
            self.on_replan(self, rec)

    def _collect_garbage(self) -> None:
        """Free field ages no pending/ready/running instance can reach."""
        live: list[int] = []
        p = self.analyzer.min_pending_age()
        if p is not None:
            live.append(p)
        q = self.ready.min_age()
        if q is not None:
            live.append(q)
        live.extend(self._running_ages.values())
        if not live:
            return
        min_live = min(live) - self._max_back - self.keep_ages
        if min_live > 0:
            self._gc_bytes += self.fields.collect_below(min_live)

    # ------------------------------------------------------------------
    # Driving a run
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Dispatch initial instances and start the analyzer and worker
        threads.  Separated from :meth:`join` so a cluster can start all
        nodes before any of them may observe global quiescence."""
        if self._ran:
            raise RuntimeStateError(
                "ExecutionNode may only run once; build a new node to re-run"
            )
        self._ran = True
        # The backend allocates its resources (the process backend forks
        # its workers) before any thread of this run exists.
        self.backend.start(self)
        self.instrumentation.start()
        self._t0 = time.perf_counter()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,), daemon=True,
                name=f"{self.name}-worker{i}",
            )
            for i in range(self.workers)
        ]
        self._analyzer_thread = threading.Thread(
            target=self._analyzer_loop, daemon=True,
            name=f"{self.name}-analyzer",
        )
        initial = self.analyzer.initial_instances()
        if initial:
            self._dispatch(initial)
        self._analyzer_thread.start()
        for t in self._threads:
            t.start()

    def add_teardown_hook(self, hook) -> None:
        """Register a callable invoked (once, exceptions swallowed) at
        the start of teardown — before worker threads are joined.  The
        fault-injection layer uses this to release workers it is holding
        captive, so a stalled node can still be torn down cleanly."""
        self._teardown_hooks.append(hook)

    def _run_teardown_hooks(self) -> None:
        hooks, self._teardown_hooks = self._teardown_hooks, []
        for hook in hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001 - teardown must not fail
                pass

    def backlog(self) -> int:
        """Queued events + ready instances (liveness heuristic for the
        heartbeat monitor; approximate — both queues move concurrently)."""
        return len(self.ready) + self._events.qsize()

    def wind_down(self) -> int:
        """Fail-stop this node and reclaim its outstanding work.

        The distributed recovery path calls this on a node declared dead:
        no further events are accepted (late transport deliveries are
        dropped), queued instances are abandoned instead of executed, and
        every abandoned unit retires its outstanding-work count so the
        cluster-wide quiescence counter stays consistent.  Blocks until
        the node's threads have exited; returns the number of abandoned
        instances (the work a replacement node must re-execute).

        Unlike :meth:`stop`, the shared counter is *not* poked — the
        other nodes of a cluster keep running.
        """
        with self._inject_lock:
            self._dead = True
        self._stop.set()
        self._run_teardown_hooks()
        if not self._ran:
            return 0
        self.ready.push_sentinel(self.workers)
        self._events.put(ShutdownEvent())
        for t in self._threads:
            t.join()
        self._analyzer_thread.join()
        # The analyzer may have dispatched instances after the workers
        # exited, and late events may sit behind the shutdown sentinel:
        # retire both so the counter reflects the abandoned work.
        leftovers = self.ready.drain()
        if leftovers:
            self._abandoned += len(leftovers)
            self._dec(len(leftovers))
        while True:
            try:
                ev = self._events.get_nowait()
            except queue.Empty:
                break
            if not isinstance(ev, ShutdownEvent):
                self._retire_event(ev)
        # Shm hygiene: a wound-down node that *owns* its shared store has
        # no join() coming to unlink the segment names — release here or
        # they outlive the process in /dev/shm.  Cluster nodes share an
        # externally provided store; its owner releases it.
        if self._owns_fields and isinstance(self.fields, SharedFieldStore):
            self.fields.release()
        return self._abandoned

    def join(
        self,
        timeout: float | None = None,
        stall_timeout: float | None = None,
    ) -> RunResult:
        """Wait for quiescence (or timeout/stop/stall), tear down the
        threads and return the result.  Raises the wrapped exception if
        any kernel body failed, or :class:`StallError` when the stall
        watchdog fired (outstanding work, no progress)."""
        if not self._ran:
            raise RuntimeStateError("join() before start()")
        outcome = self._counter.wait(timeout, stall_timeout)
        # Close the injection window before tearing down: a replan or
        # transport delivery landing after quiescence would enqueue
        # behind the shutdown sentinel and leak its counter token
        # (hanging any other waiter on a shared counter).
        with self._inject_lock:
            self._dead = True
        reason = "idle"
        if outcome == "timeout":
            reason = "timeout"
            self._stop.set()
        elif outcome == "stalled":
            self._stop.set()
        elif outcome == "poked" and self._error is None:
            reason = "stopped"
        # Tear down: workers exit on sentinel, analyzer on ShutdownEvent.
        # On a stall or timeout a worker may be stuck *inside* a kernel
        # body and never see its sentinel — bound the join so the
        # watchdog raises instead of trading one hang for another (the
        # stuck daemon thread is abandoned).
        self._run_teardown_hooks()
        self.ready.push_sentinel(self.workers)
        self._events.put(ShutdownEvent())
        limit = (
            None if outcome in ("idle", "poked")
            else self._TEARDOWN_JOIN_TIMEOUT
        )
        for t in self._threads:
            t.join(limit)
        self._analyzer_thread.join(limit)
        self.instrumentation.stop()
        self.backend.shutdown()
        if isinstance(self.fields, SharedFieldStore):
            # Unlink segment names; mappings stay readable so the
            # RunResult's fields can still be fetched.
            self.fields.release()
        self._export_metrics()
        if self._error is not None:
            raise self._error
        if outcome == "stalled":
            err = StallError(
                f"node {self.name!r}: no progress for {stall_timeout}s "
                f"with {self._counter.value()} outstanding work unit(s) "
                f"(backlog {self.backlog()}); a worker or the analyzer "
                f"stopped draining its queue",
                outstanding=self._counter.value(),
            )
            err.flight_path = dump_flight(
                self.tracer, reason=str(err),
                context={"node": self.name, "error": "StallError"},
            )
            raise err
        return RunResult(
            reason=reason,
            wall_time=time.perf_counter() - self._t0,
            instrumentation=self.instrumentation,
            fields=self.fields,
            ready_high_water=self.ready.max_depth,
            gc_bytes=self._gc_bytes,
            backend=self.backend.name,
            metrics=self.metrics,
            tracer=self.tracer if self.tracer.enabled else None,
            replans=list(self.replans),
        )

    def _export_metrics(self) -> None:
        """Export join-time aggregates into the metrics registry.

        Runs once per node (a node runs once).  Gauges describing
        *shared* resources (the cluster's field store, the shared timer
        set) use ``set_max`` so several nodes reporting the same object
        don't double-count it; per-node totals use counters, which sum
        across a shared registry.
        """
        m = self.metrics
        if not getattr(m, "enabled", True):
            return
        m.counter("ready.pushes").inc(self.ready.pushes)
        m.counter("ready.pops").inc(self.ready.pops)
        m.counter("instances.abandoned").inc(self._abandoned)
        m.counter("fields.gc_bytes").inc(self._gc_bytes)
        m.gauge("ready.depth.max").set_max(self.ready.max_depth)
        m.gauge("fields.bytes_live").set_max(self.fields.live_bytes())
        for name, timer in self.timers.as_mapping().items():
            m.gauge(f"deadline.misses.{name}").set_max(timer.misses)

    def run(
        self,
        timeout: float | None = None,
        stall_timeout: float | None = None,
    ) -> RunResult:
        """Execute the program to quiescence (:meth:`start` +
        :meth:`join`)."""
        self.start()
        return self.join(timeout, stall_timeout)

    def stop(self) -> None:
        """Ask a continuous program to stop; pending instances are
        abandoned and :meth:`run` returns with reason ``"stopped"``."""
        self._stop.set()
        self._counter.poke()


def run_program(
    program: Program,
    workers: int = 1,
    *,
    max_age: int | None = None,
    timeout: float | None = None,
    stall_timeout: float | None = None,
    gc_fields: bool = False,
    keep_ages: int = 1,
    backend: "str | ExecutionBackend" = "threads",
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    adapt=None,
    stream=None,
    batch: int = 1,
    telemetry=None,
) -> RunResult:
    """One-shot convenience: build an :class:`ExecutionNode` and run it.

    ``adapt`` turns on online LLS adaptation: ``True`` for the default
    :class:`~repro.core.adaptation.AdaptationConfig`, or a config
    instance to tune the policy thresholds.  An
    :class:`~repro.core.adaptation.AdaptationDriver` then watches the
    node's instrumentation in the background and applies coarsen/fuse
    re-bindings mid-run (see :meth:`ExecutionNode.request_replan`).

    ``stream`` turns the run into a live, unbounded pipeline: pass a
    :class:`~repro.stream.StreamBinding` (e.g. from
    :func:`~repro.workloads.build_mjpeg_stream`) or a pre-built
    :class:`~repro.stream.StreamDriver`.  A driver thread then paces
    frames from the binding's source into the running node under
    credit-based backpressure, retires drained ages so field memory
    stays bounded, and applies the configured QoS policy to late frames;
    the resulting :class:`~repro.stream.StreamReport` is attached to
    ``RunResult.stream``.

    ``batch`` > 1 turns on batched dispatch: workers drain runs of up
    to ``batch`` ready instances of the same kernel and age and hand
    them to the backend as one call (one IPC message on the process
    backend, one vectorized NumPy call when the kernel carries a
    ``batch_body``).  Results are byte-identical to ``batch=1``.

    ``telemetry`` turns on the live telemetry layer: ``True`` for the
    default :class:`~repro.obs.TelemetryConfig`, a config instance, or
    a pre-built :class:`~repro.obs.Telemetry` bundle.  The node then
    records per-frame stage timelines, streams periodic metric
    snapshots through the bundle's exporter (JSONL / Prometheus
    endpoint), and tracks per-session SLO burn rate; the bundle is
    attached to ``RunResult.telemetry``.
    """
    tel = _resolve_telemetry(telemetry)
    node = ExecutionNode(
        program,
        workers,
        max_age=max_age,
        gc_fields=gc_fields,
        keep_ages=keep_ages,
        backend=backend,
        tracer=tracer,
        metrics=metrics,
        batch=batch,
        timeline=tel.timeline if tel is not None else None,
    )
    if tel is not None:
        tel.attach_tracer(node.tracer)
        tel.exporter.add_source(node.name, node.metrics.snapshot)
    drivers: list = []
    if adapt:
        from .adaptation import AdaptationConfig, AdaptationDriver

        cfg = adapt if isinstance(adapt, AdaptationConfig) else (
            AdaptationConfig()
        )
        drivers.append(AdaptationDriver(cfg, node=node))
    sdriver = None
    if stream is not None:
        from ..stream import StreamDriver

        sdriver = stream if isinstance(stream, StreamDriver) else (
            StreamDriver(stream, node=node, telemetry=tel)
        )
        drivers.append(sdriver)
    if not drivers and tel is None:
        return node.run(timeout=timeout, stall_timeout=stall_timeout)
    for drv in drivers:
        node.add_teardown_hook(drv.stop)
    if tel is not None:
        tel.start()
    try:
        node.start()
        for drv in drivers:
            drv.start()
        result = node.join(timeout=timeout, stall_timeout=stall_timeout)
    finally:
        if tel is not None:
            tel.stop()
    if sdriver is not None:
        result.stream = sdriver.report()
    result.telemetry = tel
    return result


def _resolve_telemetry(telemetry):
    """``None``/falsy -> None; ``True`` -> default bundle; a config ->
    new bundle; a bundle -> itself (shared across cluster nodes)."""
    if not telemetry:
        return None
    from ..obs.telemetry import Telemetry, TelemetryConfig

    if isinstance(telemetry, Telemetry):
        return telemetry
    if isinstance(telemetry, TelemetryConfig):
        return Telemetry(telemetry)
    return Telemetry()
