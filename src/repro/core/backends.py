"""Execution backends: how kernel instances actually run.

The scheduler half of the runtime (ready queue, dependency analyzer,
quiescence counter) is backend-agnostic; a *backend* decides where a
popped kernel instance's body executes:

* :class:`ThreadBackend` — the paper-faithful default.  Bodies run on
  the node's worker threads.  Deterministic and zero-setup, but
  CPU-bound kernels serialize on the GIL, so scaling curves are flat.
* :class:`ProcessBackend` — true-parallel execution.  Each worker
  thread becomes a *proxy* that forwards ``(kernel, age, index)``
  tuples over a dedicated pipe to a long-lived worker process and
  blocks on the reply (releasing the GIL).  Field payloads live in
  ``multiprocessing.shared_memory`` segments
  (:class:`~repro.core.fields.SharedFieldStore`), so fetches and stores
  are zero-copy views of the same physical pages — only the tiny
  instance descriptor and store report cross the pipe.

The division of labour in the process backend keeps the P2G semantics
exactly where they were:

* the **parent** owns segment lifecycle (creates each age's segment at
  dispatch time, before any worker could touch it; unlinks at GC and
  teardown) and all write-once bookkeeping — a worker's store report is
  applied via :meth:`~repro.core.fields.Field.mark_written`, so
  violations raise in the parent just like on the threads backend;
* **workers** only read and write payload bytes through views attached
  by the deterministic :func:`~repro.core.fields.segment_name`, and
  ship out-of-band ``ctx.output`` values back for parent-side delivery.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .errors import KernelBodyError, RuntimeStateError, WorkerProcessError
from .events import InstanceDoneEvent, StoreEvent
from .fields import FieldStore, SharedFieldStore, segment_name
from .kernels import KernelContext, KernelInstance, coerce_store_value
from .program import Program
from .scheduler import apply_decisions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import ExecutionNode


class ExecutionBackend:
    """Interface a backend implements; the node drives the lifecycle."""

    name = "abstract"

    def create_fields(self, program: Program) -> FieldStore:
        """Build the field store flavour this backend needs."""
        raise NotImplementedError

    def start(self, node: "ExecutionNode") -> None:
        """Bind to the node and allocate execution resources.  Called
        from :meth:`ExecutionNode.start` *before* any thread spawns (the
        process backend must fork from a single-threaded parent)."""
        raise NotImplementedError

    def execute(self, inst: KernelInstance, worker_id: int) -> None:
        """Run one instance on behalf of worker ``worker_id`` and post
        its store/done events.  Called from the node's worker threads."""
        raise NotImplementedError

    def execute_batch(
        self, batch: list[KernelInstance], worker_id: int
    ) -> None:
        """Run a batch of instances of the *same* kernel definition and
        age (see :meth:`~repro.core.runtime.ReadyQueue.pop_batch`) on
        behalf of one worker.  Backends override this to amortize
        per-instance dispatch cost — one IPC round-trip, one trace
        span, one metrics update per batch; the default preserves
        semantics by degenerating to per-instance :meth:`execute`."""
        for inst in batch:
            self.execute(inst, worker_id)

    def on_replan(self, decisions, epoch: int) -> None:
        """The node re-bound to a rewritten program at ``epoch`` (online
        LLS adaptation).  Called on the analyzer thread *before* any
        instance of the new version is dispatched.  Backends executing in
        the parent process need nothing — the instance carries its own
        kernel definition — so the default is a no-op; the process
        backend forwards the decisions to its workers."""

    def on_retire(self, min_age: int, fields=None) -> None:
        """Every field age below ``min_age`` has been retired (streaming
        age retirement — see :mod:`repro.stream`).  The parent has
        already freed the backing storage; backends holding per-age
        resources elsewhere release them here.  In-parent backends need
        nothing (default no-op); the process backend tells its workers
        to drop their cached shared-memory views so the unlinked
        segments' pages actually return to the kernel.  ``fields`` (an
        iterable of field names, or ``None`` for all) scopes the drop —
        a multi-tenant retirer frees one session's ages while other
        sessions' same-numbered ages stay mapped."""

    def shutdown(self) -> None:
        """Release execution resources (idempotent)."""


class ThreadBackend(ExecutionBackend):
    """Run kernel bodies directly on the node's worker threads."""

    name = "threads"

    def create_fields(self, program: Program) -> FieldStore:
        return FieldStore(program.fields.values())

    def start(self, node: "ExecutionNode") -> None:
        self._node = node

    def execute(self, inst: KernelInstance, worker_id: int) -> None:
        self._node._execute(inst, worker_id)

    def execute_batch(
        self, batch: list[KernelInstance], worker_id: int
    ) -> None:
        self._node._execute_batch(batch, worker_id)

    def shutdown(self) -> None:
        pass


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
class _SegmentCache:
    """Per-worker cache of attached shared-memory views, keyed by
    ``(field, age)``.

    Ages retire monotonically, so eviction drops the lowest ages first.
    A view the kernel body still references cannot be unmapped
    (``close`` raises ``BufferError``); such entries are simply kept.
    """

    def __init__(
        self, run_id: str, shared_tracker: bool, limit: int = 128
    ) -> None:
        self.run_id = run_id
        self.shared_tracker = shared_tracker
        self.limit = limit
        self._entries: dict[tuple[str, int], tuple[Any, np.ndarray]] = {}

    def view(
        self,
        field: str,
        age: int,
        extent: tuple[int, ...],
        dtype: np.dtype,
    ) -> np.ndarray:
        entry = self._entries.get((field, age))
        if entry is not None:
            return entry[1]
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(
            name=segment_name(self.run_id, field, age)
        )
        # The parent owns the segment's lifetime.  With a fork-shared
        # resource tracker the attach's register is a set-level no-op
        # and the parent's unlink balances it; a worker with its *own*
        # tracker (spawn/forkserver) must undo the register, or its
        # tracker would unlink segments the parent still uses.
        if not self.shared_tracker:
            try:  # pragma: no cover - tracker internals
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        arr = np.ndarray(extent, dtype=dtype, buffer=shm.buf)
        self._entries[(field, age)] = (shm, arr)
        if len(self._entries) > self.limit:
            self._evict()
        return arr

    def _evict(self) -> None:
        for key in sorted(self._entries, key=lambda k: k[1]):
            if len(self._entries) <= self.limit:
                return
            shm, _arr = self._entries[key]
            try:
                shm.close()
            except BufferError:  # view still referenced; keep it
                continue
            del self._entries[key]

    def retire(self, min_age: int, fields=None) -> None:
        """Drop every cached view below ``min_age`` (the parent retired
        those ages and unlinked their segments; closing the worker-side
        mapping releases the last reference to the pages).  ``fields``
        scopes the drop to one session's field names (``None`` = all) —
        sessions share the numeric age space, so an unscoped drop would
        unmap co-resident tenants' live views."""
        names = None if fields is None else set(fields)
        for key in [
            k
            for k in self._entries
            if k[1] < min_age and (names is None or k[0] in names)
        ]:
            shm, _arr = self._entries[key]
            try:
                shm.close()
            except BufferError:  # pragma: no cover - body still holds it
                continue
            del self._entries[key]

    def close(self) -> None:
        for shm, _arr in self._entries.values():
            try:
                shm.close()
            except BufferError:
                pass
        self._entries.clear()


class _WorkerBodyError(Exception):
    """Worker-internal wrapper marking an exception as raised *inside*
    a kernel body (vs. the fetch/store machinery), so the reply can
    carry the ``in_body`` flag the parent uses to pick between
    :class:`KernelBodyError` and :class:`WorkerProcessError`."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


def _worker_run_instance(
    program, kernel, age, index, cache: _SegmentCache, ctx=None
):
    """Fetch, run and store one instance worker-side; returns
    ``(stores, outputs, dispatch_time, kernel_time)``.  ``ctx`` pools a
    :class:`KernelContext` across a batch (reset per instance) instead
    of allocating one per call."""
    t0 = time.perf_counter()
    imap = dict(zip(kernel.index_vars, index))
    fetched: dict[str, Any] = {}
    for f in kernel.fetches:
        fdef = program.fields[f.field]
        extent = fdef.shape
        assert extent is not None  # backend.start validated
        f_age = f.age.resolve(age)
        if f.whole_field():
            region = tuple(slice(0, n) for n in extent)
        else:
            region = f.region(imap, extent)
        if any(s.stop <= s.start for s in region):
            shape = tuple(max(0, s.stop - s.start) for s in region)
            value: Any = np.zeros(shape, dtype=fdef.np_dtype)
        else:
            view = cache.view(f.field, f_age, extent, fdef.np_dtype)
            value = view[region]
            value.flags.writeable = False
            if not f.whole_field() and f.scalar and value.size == 1:
                value = value.reshape(()).item()
        fetched[f.param] = value
    if ctx is None:
        ctx = KernelContext(age=age, index=imap, fetched=fetched)
    else:
        ctx.reset(age, imap, fetched)
    t1 = time.perf_counter()
    try:
        kernel.body(ctx)
    except Exception as exc:  # noqa: BLE001 - flagged for the parent
        raise _WorkerBodyError(exc) from exc
    t2 = time.perf_counter()
    stores: list[tuple] = []
    for s in kernel.stores:
        if s.emit_key not in ctx.emitted:
            continue
        fdef = program.fields[s.field]
        s_age = s.age.resolve(age)
        arr, spec = coerce_store_value(
            ctx.emitted[s.emit_key], fdef.np_dtype, fdef.ndim, s
        )
        region = spec.region(imap, arr.shape)
        assert fdef.shape is not None
        view = cache.view(s.field, s_age, fdef.shape, fdef.np_dtype)
        view[region] = arr
        stores.append(
            (s.field, s_age,
             tuple((sl.start, sl.stop) for sl in region))
        )
    t3 = time.perf_counter()
    return stores, ctx.outputs, (t1 - t0) + (t3 - t2), t2 - t1


def _worker_run_batch_vectorized(
    program, kernel, age, indices, cache: _SegmentCache
):
    """One stacked ``batch_body`` call worker-side, writing stores
    straight into the shared-memory views.  Returns
    ``(results, dispatch_time, kernel_time)`` with ``results`` in the
    parent protocol's per-instance shape, or ``None`` when this batch
    must take the scalar path (no uniform fetch plan, or the body
    raised :class:`~repro.core.vectorize.VectorizeFallback`)."""
    from .vectorize import (
        BatchKernelContext,
        VectorizeFallback,
        batch_fetch_plan,
    )

    t0 = time.perf_counter()
    imaps = [dict(zip(kernel.index_vars, index)) for index in indices]
    plan = batch_fetch_plan(
        kernel, age, imaps, lambda name: program.fields[name].shape
    )
    if plan is None:
        return None
    n = len(indices)
    fetched: dict[str, Any] = {}
    shared: set[str] = set()
    for f, f_age, regions in plan:
        fdef = program.fields[f.field]
        assert fdef.shape is not None
        view = cache.view(f.field, f_age, fdef.shape, fdef.np_dtype)
        if regions is None:
            whole = view[tuple(slice(0, m) for m in fdef.shape)]
            whole.flags.writeable = False
            fetched[f.param] = whole
            shared.add(f.param)
            continue
        shape = tuple(s.stop - s.start for s in regions[0])
        stack = np.empty((n,) + shape, dtype=fdef.np_dtype)
        for i, region in enumerate(regions):
            stack[i] = view[region]
        fetched[f.param] = stack
    bctx = BatchKernelContext(age, imaps, fetched, frozenset(shared))
    t1 = time.perf_counter()
    try:
        kernel.batch_body(bctx)
    except VectorizeFallback:
        return None
    except Exception as exc:  # noqa: BLE001 - flagged for the parent
        raise _WorkerBodyError(exc) from exc
    t2 = time.perf_counter()
    per_stores: list[list[tuple]] = [[] for _ in range(n)]
    for s in kernel.stores:
        if s.emit_key not in bctx.emitted:
            continue
        values = bctx.emitted[s.emit_key]
        fdef = program.fields[s.field]
        s_age = s.age.resolve(age)
        assert fdef.shape is not None
        view = cache.view(s.field, s_age, fdef.shape, fdef.np_dtype)
        # The batch contract (BatchKernelContext.emit) guarantees a
        # uniform leading batch axis, so dtype coercion and spec
        # resolution happen once for the stack, not per instance.
        first, spec = coerce_store_value(
            values[0], fdef.np_dtype, fdef.ndim, s
        )
        shape = first.shape
        stack = np.asarray(values, dtype=fdef.np_dtype)
        for i, imap in enumerate(imaps):
            region = spec.region(imap, shape)
            view[region] = stack[i].reshape(shape)
            per_stores[i].append(
                (s.field, s_age,
                 tuple((sl.start, sl.stop) for sl in region))
            )
    t3 = time.perf_counter()
    results = [(stores, []) for stores in per_stores]
    return results, (t1 - t0) + (t3 - t2), t2 - t1


def _worker_program_for(versions, age):
    """The program version owning ``age`` in a worker's version list
    (mirror of the parent's ProgramHandle resolution)."""
    if age is None:
        return versions[0][1]
    for epoch, prog in reversed(versions):
        if epoch <= age:
            return prog
    return versions[0][1]


def _worker_main(
    conn, program_source, run_id: str, shared_tracker: bool
) -> None:
    """Entry point of a worker process.

    Protocol: receive ``(kernel_name, age, index)`` tuples; reply
    ``("ok", stores, outputs, t_dispatch, t_kernel)`` where *stores* is
    ``[(field, age, ((start, stop), ...)), ...]``, or
    ``("err", in_body, type_name, message, traceback_text)``.  ``None``
    (or EOF) means shut down.

    A ``("__batch__", kernel_name, age, [index, ...])`` message carries
    a whole run of same-kernel/same-age instances in ONE round-trip
    (batched dispatch).  The worker runs the kernel's vectorized
    ``batch_body`` when it has one (falling back to a scalar loop with
    a pooled context otherwise) and replies
    ``("bok", [(stores_i, outputs_i), ...], t_dispatch, t_kernel)``
    with one entry per instance in batch order, or
    ``("berr", idx, in_body, type_name, message, traceback_text)``
    naming the first failing instance.

    A ``("__replan__", epoch, decisions)`` message (no reply) announces a
    live LLS swap: kernel bodies are closures and cannot cross the pipe,
    so the parent ships the *decisions* and the worker re-applies them to
    derive the identical rewritten program, versioned by epoch exactly
    like the parent's :class:`~repro.core.runtime.ProgramHandle`.  A
    failing re-apply kills the worker — the parent surfaces that as
    :class:`~repro.core.errors.WorkerProcessError` rather than let the
    pool silently diverge from the analyzer's program.

    A ``("__retire__", min_age)`` message (no reply, streaming age
    retirement) closes the worker's cached shared-memory views below
    ``min_age``; the retirement invariant guarantees no later instance
    will fetch those ages again.
    """
    program = (
        program_source() if callable(program_source) else program_source
    )
    versions: list[tuple] = [(0, program)]
    cache = _SegmentCache(run_id, shared_tracker)
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return
            if msg is None:
                return
            if msg[0] == "__replan__":
                _tag, epoch, decisions = msg
                versions.append(
                    (epoch, apply_decisions(versions[-1][1], decisions))
                )
                continue
            if msg[0] == "__retire__":
                cache.retire(msg[1], msg[2] if len(msg) > 2 else None)
                continue
            if msg[0] == "__batch__":
                _tag, kernel_name, age, indices = msg
                idx = 0
                try:
                    program = _worker_program_for(versions, age)
                    kernel = program.kernels[kernel_name]
                    batched = None
                    if kernel.batch_body is not None and len(indices) > 1:
                        batched = _worker_run_batch_vectorized(
                            program, kernel, age, indices, cache
                        )
                    if batched is not None:
                        results, t_disp, t_kern = batched
                    else:
                        results = []
                        t_disp = t_kern = 0.0
                        ctx = KernelContext()
                        for idx, index in enumerate(indices):
                            stores, outputs, d, k = _worker_run_instance(
                                program, kernel, age, index, cache, ctx
                            )
                            results.append((stores, outputs))
                            t_disp += d
                            t_kern += k
                    conn.send(("bok", results, t_disp, t_kern))
                except _WorkerBodyError as exc:
                    conn.send(
                        ("berr", idx, True, type(exc.cause).__name__,
                         str(exc.cause), traceback.format_exc())
                    )
                except Exception as exc:  # noqa: BLE001 - to parent
                    conn.send(
                        ("berr", idx, False, type(exc).__name__,
                         str(exc), traceback.format_exc())
                    )
                continue
            kernel_name, age, index = msg
            try:
                program = _worker_program_for(versions, age)
                kernel = program.kernels[kernel_name]
                stores, outputs, t_disp, t_kern = _worker_run_instance(
                    program, kernel, age, index, cache
                )
                conn.send(("ok", stores, outputs, t_disp, t_kern))
            except _WorkerBodyError as exc:
                conn.send(
                    ("err", True, type(exc.cause).__name__,
                     str(exc.cause), traceback.format_exc())
                )
            except Exception as exc:  # noqa: BLE001 - shipped to parent
                conn.send(
                    ("err", False, type(exc).__name__, str(exc),
                     traceback.format_exc())
                )
    finally:
        cache.close()
        conn.close()


class RemoteKernelError(Exception):
    """Re-raised parent-side stand-in for a worker-side exception; the
    message carries the remote type and traceback."""


class ProcessBackend(ExecutionBackend):
    """Run kernel bodies in a pool of long-lived worker processes.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (kernel bodies are usually closures, which only fork
        can ship); ``"spawn"``/``"forkserver"`` require
        ``program_factory``.
    program_factory:
        Picklable zero-argument callable rebuilding the program in the
        worker (needed for non-fork start methods, where the program —
        including kernel body closures — cannot be pickled).  The
        factory must reproduce the same kernel names and field shapes.
    """

    name = "processes"

    def __init__(
        self,
        start_method: str | None = None,
        program_factory: Callable[[], Program] | None = None,
    ) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.program_factory = program_factory
        self._procs: list[multiprocessing.Process] = []
        self._conns: list[Any] = []
        self._node: "ExecutionNode | None" = None
        # Control-message forwarding: an append-only list of ready-to-send
        # tuples — ("__replan__", epoch, decisions) from the analyzer
        # thread, ("__retire__", min_age) from the stream retirer — plus
        # a per-worker count of messages already sent down its pipe.
        # Each proxy thread forwards the unsent suffix on its *own* pipe
        # right before its next instance send, so control messages never
        # interleave with another thread's traffic (pipes are not
        # thread-safe) and always precede the first instance that needs
        # them.
        self._control: list[tuple] = []
        self._sent: list[int] = []

    def create_fields(self, program: Program) -> FieldStore:
        return SharedFieldStore(program.fields.values())

    # ------------------------------------------------------------------
    def start(self, node: "ExecutionNode") -> None:
        if not isinstance(node.fields, SharedFieldStore):
            raise RuntimeStateError(
                "the processes backend needs a SharedFieldStore; do not "
                "pass a plain FieldStore to ExecutionNode"
            )
        if node.program.timers:
            raise RuntimeStateError(
                "the processes backend does not support program timers "
                "(deadline clocks cannot cross process boundaries); use "
                "the threads backend"
            )
        self._node = node
        ctx = multiprocessing.get_context(self.start_method)
        if self.start_method != "fork" and self.program_factory is None:
            raise RuntimeStateError(
                f"start method {self.start_method!r} pickles worker "
                f"arguments; kernel bodies are closures, so a picklable "
                f"program_factory is required"
            )
        source: Any = (
            self.program_factory
            if self.program_factory is not None
            else node.program
        )
        run_id = node.fields.run_id
        shared_tracker = self.start_method == "fork"
        if shared_tracker:
            # Start the resource tracker *before* forking, so every
            # worker shares it and attach-side registers dedup against
            # the parent's create-side register.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        for i in range(node.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, source, run_id, shared_tracker),
                daemon=True,
                name=f"{node.name}-proc{i}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._sent.append(0)

    def on_replan(self, decisions, epoch: int) -> None:
        """Record a swap batch for lazy per-worker forwarding (the
        proxies drain it before their next instance send)."""
        self._control.append(("__replan__", epoch, tuple(decisions)))

    def on_retire(self, min_age: int, fields=None) -> None:
        """Record a retirement floor for lazy per-worker forwarding;
        workers close their cached segment views below it (scoped to
        ``fields`` when a multi-tenant retirer frees one session).  A
        worker that never executes again simply closes everything at
        shutdown instead."""
        self._control.append(
            ("__retire__", min_age,
             None if fields is None else tuple(sorted(fields)))
        )

    # ------------------------------------------------------------------
    def _forward_control(self, worker_id: int, conn) -> None:
        """Forward any control messages this worker has not seen yet.

        The list is append-only and CPython appends are atomic, so
        reading a suffix snapshot without a lock is safe; a message
        appended after the snapshot can only matter to instances
        dispatched after it, which a later execute() will precede."""
        sent = self._sent[worker_id]
        pending = self._control[sent:]
        if pending:
            for msg in pending:
                conn.send(msg)
            self._sent[worker_id] = sent + len(pending)

    def _recv_reply(self, worker_id: int, conn, proc, describe: str):
        """Block for a worker reply, surfacing worker death as
        :class:`WorkerProcessError` instead of hanging forever."""
        while not conn.poll(0.05):
            if not proc.is_alive() and not conn.poll(0):
                raise WorkerProcessError(
                    worker_id,
                    f"exited with code {proc.exitcode} while running "
                    f"{describe}",
                )
        try:
            return conn.recv()
        except EOFError:
            raise WorkerProcessError(
                worker_id,
                f"connection lost while running {describe}",
            ) from None

    def execute(self, inst: KernelInstance, worker_id: int) -> None:
        node = self._node
        assert node is not None
        kernel = inst.kernel
        conn = self._conns[worker_id]
        proc = self._procs[worker_id]
        self._forward_control(worker_id, conn)
        t0 = time.perf_counter()
        # Create every store target's segment now, so the worker's
        # attach can never race segment creation.
        for s in kernel.stores:
            node.fields[s.field].ensure_age(s.age.resolve(inst.age))
        t_send = time.perf_counter()
        conn.send((kernel.name, inst.age, inst.index))
        reply = self._recv_reply(
            worker_id, conn, proc,
            f"{kernel.name}(age={inst.age}, index={inst.index})",
        )
        t_recv = time.perf_counter()
        if reply[0] == "err":
            _tag, in_body, type_name, message, tb = reply
            cause = RemoteKernelError(f"{type_name}: {message}\n{tb}")
            if in_body:
                raise KernelBodyError(
                    kernel.name, inst.age, inst.index, cause
                )
            raise WorkerProcessError(worker_id, f"{type_name}: {message}")
        _tag, stores, outputs, t_dispatch, t_kernel = reply
        stored_any = False
        for fname, s_age, bounds in stores:
            region = tuple(slice(a, b) for a, b in bounds)
            # Payload bytes are already in the segment; apply write-once
            # enforcement + completeness metadata parent-side.
            node.fields[fname].mark_written(s_age, region)
            stored_any = True
            node._post(StoreEvent(fname, s_age, region))
        for key, value in outputs:
            node._deliver_output(
                kernel.name, inst.age, inst.index, key, value
            )
        t_done = time.perf_counter()
        dispatch = t_dispatch + (t_send - t0) + (t_done - t_recv)
        ipc = max(0.0, (t_recv - t_send) - t_dispatch - t_kernel)
        node.instrumentation.record(kernel.name, dispatch, t_kernel, ipc)
        node._account_instance(len(kernel.fetches), len(stores))
        tl = node._timeline
        if tl is not None and inst.age is not None:
            sess = node.session_of(inst) if node.session_of else ""
            # Worker-side clocks are not comparable across processes:
            # the ipc span is the parent-observed round trip, with the
            # remote kernel time carved out at its tail (the reply is
            # sent right after the body finishes) and the parent-side
            # store commit after it.
            tl.span(sess, inst.age, "ipc", t_send, t_recv)
            tl.span(sess, inst.age, "compute",
                    max(t_send, t_recv - t_kernel), t_recv)
            tl.span(sess, inst.age, "store", t_recv, t_done)
        tr = node.tracer
        if tr.enabled:
            # The fetch/native/store phases ran in the worker process on
            # its own clock, so the parent emits the enclosing kernel
            # span with the remote durations as arguments, plus the IPC
            # round-trip it *can* time (send -> reply, minus the remote
            # work) as a child span.
            thread = f"worker{worker_id}"
            wait = node._queue_wait_by_worker.get(worker_id, 0.0)
            tr.complete(
                kernel.name, "kernel", node.name, thread, t0, t_done,
                {
                    "age": inst.age,
                    "index": list(inst.index),
                    "queue_wait_us": round(wait * 1e6, 1),
                    "remote_dispatch_us": round(t_dispatch * 1e6, 1),
                    "remote_kernel_us": round(t_kernel * 1e6, 1),
                    "ipc_us": round(ipc * 1e6, 1),
                },
            )
            tr.complete("ipc", "phase", node.name, thread, t_send, t_recv,
                        {"ipc_us": round(ipc * 1e6, 1)})
        node._post(
            InstanceDoneEvent(
                inst,
                stored_any,
                kernel_time=t_kernel,
                dispatch_time=dispatch,
            )
        )

    def execute_batch(
        self, batch: list[KernelInstance], worker_id: int
    ) -> None:
        """Ship a same-kernel/same-age run as ONE pipe message and one
        reply — the per-batch (not per-instance) IPC round-trip is the
        whole point of batched dispatch on this backend.  The parent
        still applies per-instance write-once bookkeeping and posts
        per-instance store/done events, so analyzer semantics (stream
        credits, age retirement, quiescence) are unchanged."""
        if len(batch) == 1:
            self.execute(batch[0], worker_id)
            return
        node = self._node
        assert node is not None
        kernel = batch[0].kernel
        age = batch[0].age
        n = len(batch)
        conn = self._conns[worker_id]
        proc = self._procs[worker_id]
        self._forward_control(worker_id, conn)
        t0 = time.perf_counter()
        for s in kernel.stores:
            node.fields[s.field].ensure_age(s.age.resolve(age))
        t_send = time.perf_counter()
        conn.send(
            ("__batch__", kernel.name, age,
             [inst.index for inst in batch])
        )
        reply = self._recv_reply(
            worker_id, conn, proc,
            f"{kernel.name}[x{n}](age={age})",
        )
        t_recv = time.perf_counter()
        if reply[0] == "berr":
            _tag, idx, in_body, type_name, message, tb = reply
            inst = batch[idx]
            cause = RemoteKernelError(f"{type_name}: {message}\n{tb}")
            if in_body:
                raise KernelBodyError(
                    kernel.name, inst.age, inst.index, cause
                )
            raise WorkerProcessError(
                worker_id, f"{type_name}: {message}"
            )
        _tag, results, t_dispatch, t_kernel = reply
        # Commit write-once metadata in bulk — one lock acquisition per
        # (field, age) instead of per store — *before* posting any
        # StoreEvent, so the analyzer only ever observes completeness
        # that is at least as advanced as the event it is handling.
        grouped: dict[tuple[str, int], list[tuple]] = {}
        events: list[StoreEvent] = []
        stored_flags = []
        n_stores = 0
        for stores, _outputs in results:
            stored_any = False
            for fname, s_age, bounds in stores:
                region = tuple(slice(a, b) for a, b in bounds)
                grouped.setdefault((fname, s_age), []).append(region)
                events.append(StoreEvent(fname, s_age, region))
                stored_any = True
            n_stores += len(stores)
            stored_flags.append(stored_any)
        for (fname, s_age), regions in grouped.items():
            node.fields[fname].mark_written_many(s_age, regions)
        for ev in events:
            node._post(ev)
        for inst, (_stores, outputs) in zip(batch, results):
            for key, value in outputs:
                node._deliver_output(
                    kernel.name, inst.age, inst.index, key, value
                )
        t_done = time.perf_counter()
        dispatch = t_dispatch + (t_send - t0) + (t_done - t_recv)
        ipc = max(0.0, (t_recv - t_send) - t_dispatch - t_kernel)
        node.instrumentation.record_batch(
            kernel.name, n, dispatch, t_kernel, ipc
        )
        node._account_batch(n, n * len(kernel.fetches), n_stores)
        tl = node._timeline
        if tl is not None and age is not None:
            sess = node.session_of(batch[0]) if node.session_of else ""
            tl.span(sess, age, "ipc", t_send, t_recv)
            tl.span(sess, age, "compute",
                    max(t_send, t_recv - t_kernel), t_recv)
            tl.span(sess, age, "store", t_recv, t_done)
        if node._trace_on:
            thread = f"worker{worker_id}"
            wait = node._queue_wait_by_worker.get(worker_id, 0.0)
            node.tracer.complete(
                f"{kernel.name}[x{n}]", "kernel", node.name, thread,
                t0, t_done,
                {
                    "age": age,
                    "batch": n,
                    "queue_wait_us": round(wait * 1e6, 1),
                    "remote_dispatch_us": round(t_dispatch * 1e6, 1),
                    "remote_kernel_us": round(t_kernel * 1e6, 1),
                    "ipc_us": round(ipc * 1e6, 1),
                },
            )
            node.tracer.complete(
                "ipc", "phase", node.name, thread, t_send, t_recv,
                {"ipc_us": round(ipc * 1e6, 1)},
            )
        for inst, stored_any in zip(batch, stored_flags):
            node._post(
                InstanceDoneEvent(
                    inst,
                    stored_any,
                    kernel_time=t_kernel / n,
                    dispatch_time=dispatch / n,
                )
            )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._procs.clear()
        self._conns.clear()


#: Name -> backend factory, the ``--backend`` knob's domain.
BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


def resolve_backend(spec: "str | ExecutionBackend") -> ExecutionBackend:
    """Turn a backend name or instance into a backend instance."""
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        return BACKENDS[spec]()
    except KeyError:
        raise RuntimeStateError(
            f"unknown execution backend {spec!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None
