"""Kernel definitions, fetch/store specifications and kernel instances.

A *kernel definition* (paper, section V-B) describes a unit of sequential
code together with the slices of global fields it fetches and stores.  At
run time the dependency analyzer expands a definition into *kernel
instances* — one per valid combination of the kernel's ``age`` and
``index`` variables — and dispatches an instance exactly once, when every
slice it fetches has been completely written (write-once semantics make
"completely written" a stable property).

The objects here are deliberately declarative: a :class:`KernelDef` is
plain data plus a Python callable for the native block, so the same
definitions drive the threaded runtime (:mod:`repro.core.runtime`), the
static dependency graphs (:mod:`repro.core.graph`), the LLS granularity
transformations (:mod:`repro.core.scheduler`) and the discrete-event
simulator (:mod:`repro.sim`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from .errors import DefinitionError
from .fields import Field, IndexExpr, LocalField


# ----------------------------------------------------------------------
# Age expressions:  a, a+1, a-1, or a literal constant (e.g. 0)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AgeExpr:
    """Age expression of a fetch/store: ``kernel_age + offset`` or a
    literal constant age.

    Examples from figure 5: ``m_data(a)`` → ``AgeExpr(offset=0)``;
    ``m_data(a+1)`` → ``AgeExpr(offset=1)``; ``m_data(0)`` →
    ``AgeExpr(literal=0)``.
    """

    offset: int = 0
    literal: int | None = None

    @staticmethod
    def var(offset: int = 0) -> "AgeExpr":
        """Age expression ``a + offset``."""
        return AgeExpr(offset=offset)

    @staticmethod
    def const(value: int) -> "AgeExpr":
        """Literal age expression (e.g. ``m_data(0)``)."""
        return AgeExpr(literal=value)

    @property
    def is_literal(self) -> bool:
        """Whether the expression is a constant age."""
        return self.literal is not None

    def resolve(self, kernel_age: int | None) -> int:
        """Concrete field age for a kernel instance at ``kernel_age``."""
        if self.literal is not None:
            return self.literal
        if kernel_age is None:
            raise DefinitionError(
                "age expression references the kernel age, but the kernel "
                "declares no age variable"
            )
        return kernel_age + self.offset

    def solve(self, field_age: int) -> int | None:
        """Kernel age such that :meth:`resolve` yields ``field_age``.

        Returns ``None`` when the expression is a literal that does not
        match (no kernel age is implied) or the solution is negative.
        """
        if self.literal is not None:
            return None
        age = field_age - self.offset
        return age if age >= 0 else None

    def matches_literal(self, field_age: int) -> bool:
        """Whether a literal expression equals ``field_age``."""
        return self.literal is not None and self.literal == field_age

    def __str__(self) -> str:
        if self.literal is not None:
            return str(self.literal)
        if self.offset == 0:
            return "a"
        sign = "+" if self.offset > 0 else "-"
        return f"a{sign}{abs(self.offset)}"


# ----------------------------------------------------------------------
# Per-dimension index patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Dim:
    """Index pattern of one dimension of a fetch/store.

    Two kinds exist:

    * ``Dim.all()`` — the whole dimension (``fetch m = m_data(a)``).
    * ``Dim.var("x", block=b)`` — blocks of size ``b`` indexed by the
      kernel's index variable ``x`` (``b = 1`` is the per-element fetch of
      figure 5; ``b = 8`` fetches 8-wide stripes, which is how the MJPEG
      DCT kernels grab 8x8 macro-blocks).

    The block size is exactly the data-granularity knob the LLS turns
    (figure 4, Age 1 → Age 2): coarsening multiplies ``block``.

    A variable dimension may also carry an ``offset`` — a *stencil*
    fetch (``fetch left = f(a)[x-1]``), the neighbour-access pattern
    behind the paper's intra-prediction motivation.  The selected region
    shifts by ``offset`` elements; what happens at the field border is
    the ``boundary`` policy:

    * ``"clamp"`` (default) — the region is clamped into the extent
      preserving its width (image-processing edge replication: at
      ``x = 0``, ``[x-1]`` reads element 0);
    * ``"shrink"`` — the region is intersected with the extent and may
      become *empty*; an empty region is trivially satisfied and the
      kernel body receives a zero-length array.  This expresses
      "neighbour if available" dependencies — exactly H.264-style
      intra prediction, where block (0,0) has no left/top neighbour and
      the dependency pattern forms a wavefront.

    Offsets are fetch-only; a store with holes would break write-once
    coverage.
    """

    kind: str  # "all" | "var"
    var: str | None = None
    block: int = 1
    offset: int = 0
    boundary: str = "clamp"  # "clamp" | "shrink"

    @staticmethod
    def all() -> "Dim":
        """The whole-dimension pattern (``[:]``)."""
        return Dim("all")

    @staticmethod
    def of(
        var: str, block: int = 1, offset: int = 0, boundary: str = "clamp"
    ) -> "Dim":
        """A variable dimension: blocks of ``block``, optional stencil offset."""
        if block < 1:
            raise DefinitionError(f"block size must be >= 1, got {block}")
        if boundary not in ("clamp", "shrink"):
            raise DefinitionError(
                f"unknown boundary policy {boundary!r}; expected 'clamp' "
                f"or 'shrink'"
            )
        return Dim("var", var, block, offset, boundary)

    @property
    def is_all(self) -> bool:
        """Whether this is the whole-dimension pattern."""
        return self.kind == "all"

    def count(self, extent: int) -> int:
        """Number of distinct values of the index variable this dimension
        admits at the given extent (1 for ``all``).  Offsets clamp, so
        they do not change the domain."""
        if self.is_all:
            return 1
        return max(0, math.ceil(extent / self.block))

    def region(self, value: int, extent: int) -> slice:
        """Concrete slice selected for index-variable value ``value``."""
        if self.is_all:
            return slice(0, extent)
        start = value * self.block + self.offset
        stop = start + self.block
        if self.offset == 0:
            # plain partitioning: the last block may be ragged
            return slice(start, min(stop, extent))
        if self.boundary == "shrink":
            # intersect with the extent; possibly empty
            lo = max(0, start)
            hi = max(lo, min(stop, extent))
            return slice(lo, hi)
        # clamp: pull into the extent *preserving the block width* where
        # possible (edge replication at the boundaries)
        if start < 0:
            start, stop = 0, min(self.block, extent)
        if stop > extent:
            stop = extent
            start = max(0, stop - self.block)
        return slice(start, max(start, stop))

    def candidates(self, region: slice, extent: int) -> range:
        """Index-variable values whose region intersects ``region``."""
        if self.is_all:
            return range(1)
        # exact for plain partitions; conservatively widened for stencil
        # dims so boundary-clamped regions are always covered
        pad = 0 if self.offset == 0 else abs(self.offset) + self.block
        lo = max(0, (region.start - pad) // self.block)
        hi = min(
            math.ceil((region.stop + pad) / self.block),
            self.count(extent),
        )
        return range(lo, max(lo, hi))

    def __str__(self) -> str:
        if self.is_all:
            return ":"
        out = str(self.var)
        if self.offset:
            out += f"+{self.offset}" if self.offset > 0 else str(self.offset)
        if self.block != 1:
            out += f":{self.block}"
        return out


def _fmt_dims(dims: Sequence[Dim]) -> str:
    if all(d.is_all for d in dims):
        return ""
    return "[" + "][".join(str(d) for d in dims) + "]"


# ----------------------------------------------------------------------
# Fetch / store specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FetchSpec:
    """``fetch <param> = <field>(<age>)[<dims>...]``.

    ``param`` names the value inside the kernel body (``ctx.fetched``
    key).  ``scalar`` asks the runtime to deliver a Python scalar instead
    of a 0-d/1-element array when the selected region has exactly one
    element (matches ``fetch value = m_data(a)[x]``).
    """

    param: str
    field: str
    age: AgeExpr = dc_field(default_factory=AgeExpr)
    dims: tuple[Dim, ...] = ()
    scalar: bool = False

    def vars(self) -> tuple[str, ...]:
        """Index variables this fetch binds, in dimension order."""
        return tuple(d.var for d in self.dims if not d.is_all)

    def whole_field(self) -> bool:
        """Whether every dimension is ``all`` (fetches the entire field)."""
        return all(d.is_all for d in self.dims)

    def region(
        self, index: Mapping[str, int], extent: tuple[int, ...]
    ) -> IndexExpr:
        """Concrete region for an instance's index-variable assignment."""
        return tuple(
            d.region(index[d.var] if not d.is_all else 0, n)
            for d, n in zip(self.dims, extent)
        )

    def counts(self, extent: tuple[int, ...]) -> dict[str, int]:
        """Per-index-variable instance counts at the given field extent."""
        out: dict[str, int] = {}
        for d, n in zip(self.dims, extent):
            if not d.is_all:
                c = d.count(n)
                out[d.var] = min(out.get(d.var, c), c)
        return out

    def __str__(self) -> str:
        return (
            f"fetch {self.param} = {self.field}({self.age})"
            f"{_fmt_dims(self.dims)}"
        )


@dataclass(frozen=True)
class StoreSpec:
    """``store <field>(<age>)[<dims>...] = <key>``.

    ``key`` is the name the kernel body emits the value under
    (``ctx.emit(key, value)``); it defaults to the field name.  A body
    that does not emit the key skips the store — this is how source
    kernels signal end-of-stream (MJPEG's read kernel at EOF) and how
    deadline-triggered alternate code paths store to different fields.
    """

    field: str
    age: AgeExpr = dc_field(default_factory=AgeExpr)
    dims: tuple[Dim, ...] = ()
    key: str | None = None

    @property
    def emit_key(self) -> str:
        """The key the kernel body must ``emit`` to feed this store."""
        return self.key if self.key is not None else self.field

    def vars(self) -> tuple[str, ...]:
        """Index variables this store uses, in dimension order."""
        return tuple(d.var for d in self.dims if not d.is_all)

    def region(
        self,
        index: Mapping[str, int],
        value_shape: tuple[int, ...],
    ) -> IndexExpr:
        """Concrete store region: variable dims start at ``var*block``,
        ``all`` dims start at 0; the value's shape defines the stops
        (ragged trailing blocks and implicit resizes both fall out of
        this)."""
        if len(value_shape) != len(self.dims):
            raise DefinitionError(
                f"store to {self.field!r}: value has {len(value_shape)} "
                f"dimension(s), spec has {len(self.dims)}"
            )
        region = []
        for d, n in zip(self.dims, value_shape):
            start = 0 if d.is_all else index[d.var] * d.block
            region.append(slice(start, start + n))
        return tuple(region)

    def __str__(self) -> str:
        return f"store {self.field}({self.age}){_fmt_dims(self.dims)}"


# ----------------------------------------------------------------------
# Kernel definitions
# ----------------------------------------------------------------------
BodyFn = Callable[["KernelContext"], None]
BatchBodyFn = Callable[[Any], None]  # receives a BatchKernelContext


@dataclass
class KernelDef:
    """A kernel definition: native block + declarations + fetch/store
    specs.

    Parameters
    ----------
    name:
        Unique kernel name.
    body:
        The native block: a callable receiving a :class:`KernelContext`.
    fetches / stores:
        Field interaction specs; these define the implicit dependency
        graph.
    has_age:
        Whether the kernel declares an ``age`` variable.  Ageless kernels
        with no fetches run exactly once (figure 5's ``init``); aged
        kernels with no fetches are *sources* that self-advance one age at
        a time until they stop storing (MJPEG's ``read``).
    index_vars:
        Declared index variables, in declaration order (the instance's
        index tuple follows this order).
    domain:
        Optional explicit per-variable instance counts for index
        variables that appear in no fetch (rare; sources with data
        parallelism).
    cost_hint:
        Optional relative cost used by the simulator/LLS when no
        instrumentation exists yet.
    age_limit:
        Optional per-kernel age bound: no instance with ``age >
        age_limit`` is ever dispatched.  This is how a program expresses
        a fixed iteration count (the paper's K-means "is not run until
        convergence, but with 10 iterations").
    batch_body:
        Optional *vectorized* native block operating on a whole batch of
        same-age instances in one call (see
        :mod:`repro.core.vectorize`).  Attached by
        :func:`~repro.core.vectorize.vectorize_program` at program-build
        time; ``None`` means the runtime always falls back to calling
        ``body`` per instance.  LLS rewrites (coarsen/fuse) construct
        fresh definitions without it, so a re-granularized kernel
        automatically reverts to the scalar path.
    """

    name: str
    body: BodyFn
    fetches: tuple[FetchSpec, ...] = ()
    stores: tuple[StoreSpec, ...] = ()
    has_age: bool = False
    index_vars: tuple[str, ...] = ()
    domain: Mapping[str, int] | None = None
    cost_hint: float = 1.0
    age_limit: int | None = None
    batch_body: BatchBodyFn | None = None

    def __post_init__(self) -> None:
        self.fetches = tuple(self.fetches)
        self.stores = tuple(self.stores)
        self.index_vars = tuple(self.index_vars)
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise DefinitionError("kernel name must be non-empty")
        seen_params: set[str] = set()
        for f in self.fetches:
            if f.param in seen_params:
                raise DefinitionError(
                    f"kernel {self.name!r}: duplicate fetch param {f.param!r}"
                )
            seen_params.add(f.param)
            for v in f.vars():
                if v not in self.index_vars:
                    raise DefinitionError(
                        f"kernel {self.name!r}: fetch {f.param!r} uses "
                        f"undeclared index variable {v!r}"
                    )
            if (f.age.literal is None or f.age.offset) and not self.has_age:
                if f.age.literal is None:
                    raise DefinitionError(
                        f"kernel {self.name!r}: fetch {f.param!r} references "
                        f"the age variable, but the kernel declares no age"
                    )
        keys: set[str] = set()
        for s in self.stores:
            if s.emit_key in keys:
                raise DefinitionError(
                    f"kernel {self.name!r}: duplicate store key "
                    f"{s.emit_key!r}"
                )
            keys.add(s.emit_key)
            for d in s.dims:
                if not d.is_all and d.offset:
                    raise DefinitionError(
                        f"kernel {self.name!r}: store to {s.field!r} uses "
                        f"an index offset; offsets are fetch-only (a "
                        f"shifted store leaves write-once holes)"
                    )
            for v in s.vars():
                if v not in self.index_vars:
                    raise DefinitionError(
                        f"kernel {self.name!r}: store to {s.field!r} uses "
                        f"undeclared index variable {v!r}"
                    )
            if s.age.literal is None and not self.has_age:
                raise DefinitionError(
                    f"kernel {self.name!r}: store to {s.field!r} references "
                    f"the age variable, but the kernel declares no age"
                )
        bound = set()
        for f in self.fetches:
            bound.update(f.vars())
        if self.domain:
            bound.update(self.domain)
        for v in self.index_vars:
            if v not in bound:
                raise DefinitionError(
                    f"kernel {self.name!r}: index variable {v!r} appears in "
                    f"no fetch and has no explicit domain; its instance "
                    f"count would be undefined"
                )

    # ------------------------------------------------------------------
    @property
    def is_source(self) -> bool:
        """True when the kernel has no fetches (dispatch is not driven by
        field stores)."""
        return not self.fetches

    @property
    def run_once(self) -> bool:
        """True for ageless sources — dispatched exactly once at start."""
        return self.is_source and not self.has_age

    def fetched_fields(self) -> tuple[str, ...]:
        """Distinct fields fetched, in declaration order."""
        return tuple(dict.fromkeys(f.field for f in self.fetches))

    def stored_fields(self) -> tuple[str, ...]:
        """Distinct fields stored to, in declaration order."""
        return tuple(dict.fromkeys(s.field for s in self.stores))

    def index_counts(
        self, extent_of: Callable[[str], tuple[int, ...]]
    ) -> dict[str, int]:
        """Instance count per index variable, given field extents.

        A variable bound by several fetches gets the *minimum* count — an
        instance must be satisfiable by every fetch.
        """
        counts: dict[str, int] = dict(self.domain or {})
        for f in self.fetches:
            for var, c in f.counts(extent_of(f.field)).items():
                counts[var] = min(counts.get(var, c), c)
        return counts

    def describe(self) -> str:
        """Kernel-language-style rendering (used in graph dumps/tests)."""
        lines = [f"{self.name}:"]
        if self.has_age:
            lines.append("  age a;")
        for v in self.index_vars:
            lines.append(f"  index {v};")
        for f in self.fetches:
            lines.append(f"  {f};")
        lines.append("  %{ ... %}")
        for s in self.stores:
            lines.append(f"  {s};")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"KernelDef({self.name!r})"


# ----------------------------------------------------------------------
# Kernel instances and the execution context
# ----------------------------------------------------------------------
InstanceKey = tuple[str, int | None, tuple[int, ...]]


@dataclass(frozen=True)
class KernelInstance:
    """One dispatchable unit: a kernel definition bound to concrete age
    and index-variable values.  Dispatched at most once (write-once
    semantics make re-dispatch meaningless)."""

    kernel: KernelDef
    age: int | None = None
    index: tuple[int, ...] = ()

    @property
    def key(self) -> InstanceKey:
        """Hashable identity used for dispatch-once bookkeeping."""
        return (self.kernel.name, self.age, self.index)

    def index_map(self) -> dict[str, int]:
        """Index-variable name -> value for this instance."""
        return dict(zip(self.kernel.index_vars, self.index))

    def __str__(self) -> str:
        parts = []
        if self.age is not None:
            parts.append(f"age={self.age}")
        parts.extend(
            f"{v}={i}" for v, i in zip(self.kernel.index_vars, self.index)
        )
        return f"{self.kernel.name}({', '.join(parts)})"


class KernelContext:
    """Execution context handed to a kernel body.

    Attributes
    ----------
    age:
        The instance's age (``None`` for ageless kernels).
    index:
        Mapping from index-variable name to its value.
    fetched:
        Mapping from fetch param name to the fetched value (scalar or
        NumPy array, per the spec's ``scalar`` flag).
    timers:
        Mapping of program timers (see :mod:`repro.core.deadlines`);
        empty when the program declares none.
    """

    __slots__ = (
        "age", "index", "fetched", "timers", "_emitted", "_outputs", "node",
    )

    def __init__(
        self,
        age: int | None = None,
        index: Mapping[str, int] | None = None,
        fetched: Mapping[str, Any] | None = None,
        timers: Mapping[str, Any] | None = None,
        node: Any = None,
    ) -> None:
        self.age = age
        self.index = dict(index or {})
        self.fetched = dict(fetched or {})
        self.timers = dict(timers or {})
        self.node = node
        self._emitted: dict[str, Any] = {}
        self._outputs: list[tuple[str, Any]] = []

    def reset(
        self,
        age: int | None,
        index: Mapping[str, int],
        fetched: Mapping[str, Any],
    ) -> "KernelContext":
        """Rebind this context to another instance, clearing emissions.

        The batched dispatch path pools one context per worker and
        resets it between instances instead of allocating a fresh
        object per call; ``timers`` and ``node`` are batch-invariant and
        keep their bindings.
        """
        self.age = age
        self.index = index if isinstance(index, dict) else dict(index)
        self.fetched = fetched if isinstance(fetched, dict) else (
            dict(fetched)
        )
        self._emitted = {}
        self._outputs = []
        return self

    def emit(self, key: str, value: Any) -> None:
        """Provide the value for the store spec whose ``emit_key`` is
        ``key``.  Emitting the same key twice is a write-once violation
        at the kernel level and raises immediately."""
        if key in self._emitted:
            raise DefinitionError(
                f"kernel body emitted {key!r} twice in one instance"
            )
        self._emitted[key] = value

    @property
    def emitted(self) -> dict[str, Any]:
        """Values the body emitted, by store key."""
        return self._emitted

    def output(self, key: str, value: Any) -> None:
        """Emit an *out-of-band* result (not a field store).

        Sink-style kernels (MJPEG's ``vlc``, K-means' ``print``) produce
        values that leave the field model — encoded frames, centroid
        snapshots.  Routing them through ``output`` instead of mutating a
        closure keeps kernel bodies location-transparent: the runtime
        delivers each ``(key, value)`` pair to the program's registered
        output handler *in the parent process*, whichever execution
        backend ran the body.  Values must be picklable under the
        ``processes`` backend.
        """
        self._outputs.append((key, value))

    @property
    def outputs(self) -> list[tuple[str, Any]]:
        """Out-of-band results the body produced, in emission order."""
        return self._outputs

    def local(self, dtype: str = "int32", ndim: int = 1) -> LocalField:
        """Create a kernel-local growable field (``local int32[] v;``)."""
        return LocalField(dtype, ndim)

    def __getitem__(self, param: str) -> Any:
        return self.fetched[param]


def coerce_store_value(
    value: Any, np_dtype: np.dtype, field_ndim: int, spec: StoreSpec
) -> tuple[np.ndarray, StoreSpec]:
    """Normalize an emitted value for a store spec.

    Returns the value as an array aligned to the field's rank, plus the
    effective spec (dimension-less specs become explicit whole-field
    specs).  Shared by every execution backend so the threads and
    processes paths store byte-identical payloads.
    """
    arr = np.asarray(value, dtype=np_dtype)
    if arr.ndim == 0:
        arr = arr.reshape((1,) * field_ndim)
    elif arr.ndim < field_ndim and spec.dims:
        # Align a lower-rank value to the store's dims: unit axes are
        # inserted at block-1 variable dimensions (a row store
        # ``f(a)[c][:] = row`` takes a 1-d row), trailing otherwise.
        shape = list(arr.shape)
        missing = field_ndim - arr.ndim
        for axis, d in enumerate(spec.dims):
            if missing and not d.is_all and d.block == 1:
                shape.insert(axis, 1)
                missing -= 1
        shape.extend([1] * missing)
        arr = arr.reshape(shape)
    elif arr.ndim != field_ndim:
        arr = arr.reshape(arr.shape + (1,) * (field_ndim - arr.ndim))
    eff = spec if spec.dims else StoreSpec(
        field=spec.field, age=spec.age, key=spec.key,
        dims=tuple(Dim.all() for _ in range(field_ndim)),
    )
    return arr, eff


def make_kernel(
    name: str,
    *,
    fetches: Sequence[FetchSpec] = (),
    stores: Sequence[StoreSpec] = (),
    age: bool = False,
    index: Sequence[str] = (),
    domain: Mapping[str, int] | None = None,
    cost_hint: float = 1.0,
) -> Callable[[BodyFn], KernelDef]:
    """Decorator sugar for defining kernels in plain Python::

        @make_kernel("mul2", age=True, index=["x"],
                     fetches=[FetchSpec("value", "m_data", dims=(Dim.of("x"),),
                                        scalar=True)],
                     stores=[StoreSpec("p_data", dims=(Dim.of("x"),))])
        def mul2(ctx):
            ctx.emit("p_data", ctx["value"] * 2)
    """

    def wrap(body: BodyFn) -> KernelDef:
        return KernelDef(
            name=name,
            body=body,
            fetches=tuple(fetches),
            stores=tuple(stores),
            has_age=age,
            index_vars=tuple(index),
            domain=domain,
            cost_hint=cost_hint,
        )

    return wrap
