"""Shared name validation for runtime-visible identifiers.

Kernel, field and session names all end up in places with their own
character rules: field names become POSIX shared-memory segment names
(``p2g<run>_<field>_<age>``) where ``/`` is illegal, and the
multi-tenant layer namespaces every name under a ``"<session>."``
prefix, which makes ``.`` the reserved separator for the *components*
of a name.  These rules used to live privately in
``stream/multitenant.py``; the operator algebra (``repro.ops``) now
generates kernel/field names from user-supplied operator and port
names, so the checks are shared here.

Two levels:

* :func:`validate_component` — one dot-free component (a session name,
  an operator name, a port name).  Rejects empty, ``.`` and ``/``.
* :func:`validate_field_name` — a full field/kernel name, which *may*
  contain dots (``"scale.y"``, ``"s0.scale.y"``) but never ``/`` and
  never empty components.
"""

from __future__ import annotations

__all__ = ["NAME_SEP", "validate_component", "validate_field_name"]

#: Separator between the components of a runtime name.  A dot — not a
#: slash — because field names end up inside POSIX shared-memory
#: segment names, where ``/`` is illegal.
NAME_SEP = "."


def validate_component(name: str, *, what: str = "name") -> str:
    """Check one dot-free name component; returns it unchanged.

    Raises :class:`ValueError` for empty names, names containing the
    namespace separator ``.``, and names containing ``/`` (illegal in
    shared-memory segment paths).
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"{what} must be a non-empty string")
    if NAME_SEP in name:
        raise ValueError(
            f"{what} {name!r} may not contain {NAME_SEP!r} "
            f"(it is the namespace separator)"
        )
    if "/" in name:
        raise ValueError(
            f"{what} {name!r} may not contain '/' (it ends up in "
            f"shared-memory segment names)"
        )
    return name


def validate_field_name(name: str, *, what: str = "name") -> str:
    """Check a full (possibly dotted) field/kernel name; returns it.

    Every dot-separated component must itself be valid, so
    ``"scale.y"`` passes while ``""``, ``"a..b"`` and ``"a/b"`` raise.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"{what} must be a non-empty string")
    for part in name.split(NAME_SEP):
        if not part:
            raise ValueError(
                f"{what} {name!r} has an empty {NAME_SEP!r}-separated "
                f"component"
            )
        if "/" in part:
            raise ValueError(
                f"{what} {name!r} may not contain '/' (it ends up in "
                f"shared-memory segment names)"
            )
    return name
