"""Discrete-event simulation of a multi-node P2G deployment.

Extends the single-node simulator to the figure-1 architecture: several
execution nodes — each with its own machine profile, worker pool and
serial dependency analyzer — connected by a network.  A kernel's
instances run on the node the assignment maps it to; when a stage
completes and its successor lives on another node, the store events
cross the network first (latency + per-byte transfer on a shared
serial link, the in-process transport's simulated twin).

This is the tool the HLS needs for offline *partition* evaluation:
:func:`evaluate_assignment` returns the predicted makespan and network
load of any kernel→node mapping, and :func:`best_assignment` ranks the
candidate partitions the `repro.dist` partitioners produce — "input to
a simulator to best determine how to initially configure a workload,
given various global topology configurations" (section V-A).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

from .desim import EventLoop
from .machine import MachineProfile
from .workload import StageSpec, WorkloadModel

__all__ = [
    "NetworkModel",
    "SimClusterNode",
    "SimClusterResult",
    "SimCluster",
    "evaluate_assignment",
    "best_assignment",
]


@dataclass(frozen=True)
class NetworkModel:
    """A shared serial link between nodes.

    ``latency_s`` per transfer; ``bytes_per_s`` throughput; each stage
    instance's store traffic is ``event_bytes`` (coarse, but enough to
    rank partitions by the traffic they induce).
    """

    latency_s: float = 100e-6
    bytes_per_s: float = 1e9  # ~ gigabit-class
    event_bytes: float = 256.0

    def transfer_time(self, instances: int) -> float:
        """Seconds one stage's store traffic occupies the link."""
        return self.latency_s + (
            instances * self.event_bytes / self.bytes_per_s
        )


@dataclass(frozen=True)
class SimClusterNode:
    """One simulated execution node."""

    name: str
    machine: MachineProfile
    workers: int


@dataclass
class SimClusterResult:
    """Outcome of a simulated cluster run."""

    makespan: float
    node_busy: dict[str, float]
    node_analyzer_busy: dict[str, float]
    network_busy: float
    cross_node_transfers: int
    assignment: dict[str, str]

    def node_utilization(self, node: str, workers: int) -> float:
        """Worker-busy fraction of one node over the run."""
        if not self.makespan:
            return 0.0
        return self.node_busy[node] / (self.makespan * workers)


class _NodeState:
    """Per-node queues and threads (mirrors SimExecutionNode)."""

    def __init__(self, spec: SimClusterNode) -> None:
        self.spec = spec
        self.analyzer_q: list[tuple[int, int, StageSpec, int]] = []
        self.ready_q: list[tuple[int, int, StageSpec, int]] = []
        self.analyzer_busy = False
        self.busy_workers = 0
        self.worker_busy_time = 0.0
        self.analyzer_busy_time = 0.0

    def thread_speed(self) -> float:
        """Per-thread speed under the node's current load."""
        active = self.busy_workers + (1 if self.analyzer_busy else 0)
        return self.spec.machine.per_thread_speed(max(1, active))


class SimCluster:
    """Simulates ``model`` across ``nodes`` under ``assignment``.

    ``assignment`` maps every stage name to a node name.  Dependency
    completions crossing nodes pass through the (serial) network link.
    """

    def __init__(
        self,
        model: WorkloadModel,
        nodes: Sequence[SimClusterNode],
        assignment: Mapping[str, str],
        network: NetworkModel = NetworkModel(),
        *,
        contention: float = 0.04,
        analyzer_share: float = 0.5,
        chunks_per_stage: int = 32,
    ) -> None:
        self.model = model
        self.nodes = {n.name: _NodeState(n) for n in nodes}
        missing = [s.name for s in model.stages if s.name not in assignment]
        if missing:
            raise ValueError(f"stages without a node: {missing}")
        unknown = {
            v for v in assignment.values() if v not in self.nodes
        }
        if unknown:
            raise ValueError(f"assignment references unknown nodes {unknown}")
        self.assignment = dict(assignment)
        self.network = network
        self.contention = contention
        self.analyzer_share = analyzer_share
        self.chunks_per_stage = max(1, chunks_per_stage)
        self.loop = EventLoop()
        self._seq = itertools.count()
        self._remaining: dict[tuple[str, int], int] = {}
        self._waiting: dict[tuple[str, int], int] = {}
        self._unblocks: dict[tuple[str, int], list[tuple[str, int]]] = {}
        self._net_busy_until = 0.0
        self.network_busy_time = 0.0
        self.cross_node_transfers = 0
        self._build_tables()

    # ------------------------------------------------------------------
    def _exists(self, stage: str, age: int) -> bool:
        try:
            s = self.model.stage(stage)
        except KeyError:
            return False
        return 0 <= age < self.model.stage_ages(s)

    def _build_tables(self) -> None:
        for s in self.model.stages:
            for age in range(self.model.stage_ages(s)):
                key = (s.name, age)
                self._remaining[key] = s.instances_per_age
                unmet = 0
                for dep, off in s.deps:
                    if self._exists(dep, age + off):
                        unmet += 1
                        self._unblocks.setdefault(
                            (dep, age + off), []
                        ).append(key)
                self._waiting[key] = unmet

    # ------------------------------------------------------------------
    def _enqueue_analysis(self, stage: StageSpec, age: int) -> None:
        node = self.nodes[self.assignment[stage.name]]
        count = stage.instances_per_age
        if count == 0:
            self._completed(stage, age)
            return
        chunk = max(1, math.ceil(count / self.chunks_per_stage))
        while count > 0:
            c = min(chunk, count)
            heapq.heappush(
                node.analyzer_q, (age, next(self._seq), stage, c)
            )
            count -= c
        self._kick_analyzer(node)

    def _kick_analyzer(self, node: _NodeState) -> None:
        if node.analyzer_busy or not node.analyzer_q:
            return
        age, _seq, stage, count = heapq.heappop(node.analyzer_q)
        node.analyzer_busy = True
        factor = 1.0 + self.contention * max(0, node.spec.workers - 1)
        duration = (
            count * stage.dispatch_time_us * self.analyzer_share * 1e-6
            * factor / node.thread_speed()
        )
        node.analyzer_busy_time += duration

        def done() -> None:
            node.analyzer_busy = False
            heapq.heappush(
                node.ready_q, (age, next(self._seq), stage, count)
            )
            self._kick_workers(node)
            self._kick_analyzer(node)

        self.loop.after(duration, done)

    def _kick_workers(self, node: _NodeState) -> None:
        while node.busy_workers < node.spec.workers and node.ready_q:
            age, _seq, stage, count = heapq.heappop(node.ready_q)
            node.busy_workers += 1
            worker_us = (
                stage.kernel_time_us
                + stage.dispatch_time_us * (1.0 - self.analyzer_share)
            )
            duration = count * worker_us * 1e-6 / node.thread_speed()
            node.worker_busy_time += duration

            def done(stage=stage, age=age, count=count,
                     node=node) -> None:
                node.busy_workers -= 1
                key = (stage.name, age)
                self._remaining[key] -= count
                if self._remaining[key] == 0:
                    self._completed(stage, age)
                self._kick_workers(node)

            self.loop.after(duration, done)

    # ------------------------------------------------------------------
    def _completed(self, stage: StageSpec, age: int) -> None:
        src_node = self.assignment[stage.name]
        for succ_name, succ_age in self._unblocks.get(
            (stage.name, age), ()
        ):
            self._waiting[(succ_name, succ_age)] -= 1
            if self._waiting[(succ_name, succ_age)]:
                continue
            succ = self.model.stage(succ_name)
            dst_node = self.assignment[succ_name]
            if dst_node == src_node:
                self._enqueue_analysis(succ, succ_age)
                continue
            # cross-node hand-off: the producing stage's store traffic
            # crosses the shared serial link first
            self.cross_node_transfers += 1
            transfer = self.network.transfer_time(stage.instances_per_age)
            start = max(self.loop.now, self._net_busy_until)
            self._net_busy_until = start + transfer
            self.network_busy_time += transfer

            def arrive(succ=succ, succ_age=succ_age) -> None:
                self._enqueue_analysis(succ, succ_age)

            self.loop.at(self._net_busy_until, arrive)

    # ------------------------------------------------------------------
    def run(self) -> SimClusterResult:
        """Simulate to completion; returns the cluster-wide result."""
        started = False
        for s in self.model.stages:
            for age in range(self.model.stage_ages(s)):
                if self._waiting[(s.name, age)] == 0:
                    self._enqueue_analysis(s, age)
                    started = True
        if not started:
            raise ValueError("no dependency-free stage to start from")
        makespan = self.loop.run()
        incomplete = [k for k, v in self._remaining.items() if v > 0]
        if incomplete:
            raise ValueError(
                f"cluster simulation deadlocked: {incomplete[:5]}"
            )
        return SimClusterResult(
            makespan=makespan,
            node_busy={
                n: st.worker_busy_time for n, st in self.nodes.items()
            },
            node_analyzer_busy={
                n: st.analyzer_busy_time for n, st in self.nodes.items()
            },
            network_busy=self.network_busy_time,
            cross_node_transfers=self.cross_node_transfers,
            assignment=dict(self.assignment),
        )


def evaluate_assignment(
    model: WorkloadModel,
    nodes: Sequence[SimClusterNode],
    assignment: Mapping[str, str],
    network: NetworkModel = NetworkModel(),
    **kwargs,
) -> SimClusterResult:
    """Predicted outcome of one kernel→node mapping."""
    return SimCluster(model, nodes, assignment, network, **kwargs).run()


def best_assignment(
    model: WorkloadModel,
    nodes: Sequence[SimClusterNode],
    candidates: Sequence[Mapping[str, str]],
    network: NetworkModel = NetworkModel(),
    **kwargs,
) -> tuple[dict[str, str], SimClusterResult, list[SimClusterResult]]:
    """Rank candidate assignments by simulated makespan; returns
    (winner, its result, all results in candidate order)."""
    if not candidates:
        raise ValueError("no candidate assignments")
    results = [
        evaluate_assignment(model, nodes, c, network, **kwargs)
        for c in candidates
    ]
    best = min(results, key=lambda r: r.makespan)
    return dict(best.assignment), best, results
