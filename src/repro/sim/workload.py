"""Abstract workload models for the simulator.

A :class:`WorkloadModel` describes a P2G program as *stages*: per age,
each stage dispatches a number of kernel instances with known per-
instance analyzer (dispatch) and worker (kernel) costs, gated by
dependencies on other stage/age combinations.  This is the final
implicit static dependency graph plus the instance counts and the
table II/III cost columns — exactly the information the paper says the
weighted graphs provide for "static offline analysis … input to a
simulator" (section V-A).

Models come from two sources:

* :func:`paper_mjpeg_model` / :func:`paper_kmeans_model` — constants
  straight from tables II and III;
* :func:`model_from_instrumentation` — calibrated from a real
  (Python-runtime) run, used by the calibration tests to check the
  simulator against measured single-thread behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

from ..core.graph import final_graph
from ..core.instrumentation import Instrumentation
from ..core.program import Program

__all__ = [
    "StageSpec",
    "WorkloadModel",
    "paper_mjpeg_model",
    "paper_kmeans_model",
    "model_from_instrumentation",
]


@dataclass(frozen=True)
class StageSpec:
    """One kernel definition as the simulator sees it.

    Parameters
    ----------
    name:
        Kernel name.
    instances_per_age:
        Kernel instances dispatched per age.
    kernel_time_us:
        Mean native-block time per instance (reference-core µs).
    dispatch_time_us:
        Mean analyzer cost per instance (event handling + dispatch).
    ages:
        Number of ages this stage runs (defaults to the model's).
    deps:
        ``(stage, age_offset)`` pairs: this stage at age ``a`` waits for
        ``stage`` at ``a + age_offset`` to complete.  Dependencies whose
        target age does not exist are waived (how an age-0 stage depends
        on ``init`` while later ages depend on the previous iteration).
    """

    name: str
    instances_per_age: int
    kernel_time_us: float
    dispatch_time_us: float
    ages: int | None = None
    deps: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class WorkloadModel:
    """A named set of stages with a default age count."""

    name: str
    ages: int
    stages: tuple[StageSpec, ...]

    def stage_ages(self, stage: StageSpec) -> int:
        """Ages a stage runs (its own count or the model default)."""
        return stage.ages if stage.ages is not None else self.ages

    def stage(self, name: str) -> StageSpec:
        """Look up a stage by kernel name."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)

    def total_instances(self) -> int:
        """Kernel instances across all stages and ages."""
        return sum(
            s.instances_per_age * self.stage_ages(s) for s in self.stages
        )

    def total_kernel_seconds(self) -> float:
        """Total native-block demand in reference-core seconds."""
        return 1e-6 * sum(
            s.instances_per_age * self.stage_ages(s) * s.kernel_time_us
            for s in self.stages
        )

    def total_dispatch_seconds(self) -> float:
        """Total analyzer demand in reference-core seconds."""
        return 1e-6 * sum(
            s.instances_per_age * self.stage_ages(s) * s.dispatch_time_us
            for s in self.stages
        )


def paper_mjpeg_model(frames: int = 50) -> WorkloadModel:
    """MJPEG stage model with table II's counts and costs.

    Geometry: CIF 4:2:0 → 1584 luma + 2x396 chroma blocks per frame;
    the read kernel runs ``frames + 1`` times (EOF instance).
    """
    return WorkloadModel(
        name="mjpeg",
        ages=frames,
        stages=(
            StageSpec("init", 1, 18.00, 69.00, ages=1),
            StageSpec(
                "read", 1, 1641.57, 35.50, ages=frames + 1,
                deps=(("init", 0), ("read", -1)),
            ),
            StageSpec(
                "ydct", 1584, 170.30, 3.07, deps=(("read", 0),)
            ),
            StageSpec(
                "udct", 396, 170.24, 3.14, deps=(("read", 0),)
            ),
            StageSpec(
                "vdct", 396, 170.58, 3.15, deps=(("read", 0),)
            ),
            StageSpec(
                "vlc", 1, 2160.71, 3.09,
                deps=(("ydct", 0), ("udct", 0), ("vdct", 0)),
            ),
        ),
    )


def paper_kmeans_model(
    n: int = 2000, k: int = 100, iterations: int = 10
) -> WorkloadModel:
    """K-means stage model with table III's counts and costs.

    The paper's 2,024,251 ``assign`` instances are ≈ n·k·iterations
    (pair granularity); we model exactly n·k per iteration.
    """
    return WorkloadModel(
        name="kmeans",
        ages=iterations,
        stages=(
            StageSpec("init", 1, 9829.00, 58.00, ages=1),
            StageSpec(
                "assign", n * k, 6.95, 4.07,
                deps=(("init", 0), ("refine", -1)),
            ),
            StageSpec(
                "refine", k, 92.91, 3.21, deps=(("assign", 0),)
            ),
            StageSpec(
                "print", 1, 379.36, 1.09, ages=iterations + 1,
                deps=(("init", 0), ("refine", -1)),
            ),
        ),
    )


def model_from_instrumentation(
    program: Program,
    instrumentation: Instrumentation,
    ages: int,
    deps: Mapping[str, Sequence[tuple[str, int]]] | None = None,
    once_kernels: Sequence[str] = ("init",),
) -> WorkloadModel:
    """Calibrate a stage model from a measured run.

    Per-kernel mean dispatch/kernel times and instance counts come from
    ``instrumentation``; dependencies default to the final static
    dependency graph's edges (same-age for pipeline edges, ``-1`` for
    feedback edges), overridable via ``deps``.
    """
    g = final_graph(program)
    stats = instrumentation.stats()
    stages = []
    for name, k in program.kernels.items():
        st = stats.get(name)
        if st is None or st.instances == 0:
            continue
        once = name in once_kernels or k.run_once
        stage_ages = 1 if once else ages
        per_age = max(1, round(st.instances / stage_ages))
        if deps and name in deps:
            d = tuple(deps[name])
        else:
            d = []
            for u, v, attrs in g.edges():
                if v != name or u == name:
                    continue
                delta = attrs.get("age_delta")
                d.append((u, -delta if delta else 0))
            d = tuple(d)
        stages.append(
            StageSpec(
                name,
                per_age,
                st.mean_kernel_us,
                st.mean_dispatch_us,
                ages=stage_ages,
                deps=d,
            )
        )
    return WorkloadModel(program.name, ages, tuple(stages))
