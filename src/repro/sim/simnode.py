"""Discrete-event simulation of one P2G execution node.

The simulated node has the prototype's exact thread structure:

* ``W`` **workers** executing kernel instances from an age-ordered ready
  queue;
* one **dependency analyzer** thread, a serial server that must spend
  each instance's dispatch cost before the instance reaches the ready
  queue (section VI-B's dedicated analyzer thread).  Synchronization
  with the workers adds a contention term that grows with the number of
  busy workers — the mechanism behind K-means' post-knee slowdown.

All ``W + 1`` threads time-share the machine's cores under the
processor-sharing capacity model of
:class:`~repro.sim.machine.MachineProfile`: with more runnable threads
than cores (or SMT siblings), every thread slows down — which is why
the 8th worker (sharing with the analyzer) bends the MJPEG curve in
figure 9.

Instances are simulated in *chunks* (batches of identical instances) to
keep the event count tractable at table-III scale (2 million assign
instances); chunking preserves aggregate service demands and barrier
structure.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field as dc_field

from .desim import EventLoop
from .machine import MachineProfile
from .workload import StageSpec, WorkloadModel

__all__ = ["SimExecutionNode", "SimResult", "SimStageStats"]


@dataclass
class SimStageStats:
    """Aggregate per-stage accounting of one simulated run."""

    instances: int = 0
    kernel_seconds: float = 0.0  # service demand executed (reference units)
    dispatch_seconds: float = 0.0


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    machine: str
    workers: int
    makespan: float  #: simulated wall-clock seconds
    stages: dict[str, SimStageStats]
    analyzer_busy: float  #: simulated seconds the analyzer was busy
    worker_busy: float  #: summed busy seconds across workers
    events: int

    @property
    def analyzer_utilization(self) -> float:
        """Fraction of the makespan the analyzer thread was busy."""
        return self.analyzer_busy / self.makespan if self.makespan else 0.0

    @property
    def worker_utilization(self) -> float:
        """Mean busy fraction across the worker threads."""
        if not self.makespan or not self.workers:
            return 0.0
        return self.worker_busy / (self.makespan * self.workers)


class SimExecutionNode:
    """Simulates a workload model on a machine with ``workers`` threads.

    Parameters
    ----------
    model / machine / workers:
        What to run, on what, with how many worker threads.
    contention:
        Fractional analyzer slowdown per provisioned worker beyond the
        first (lock and cache-line traffic on the shared event/ready
        queues — present whether a worker is busy or starved, since
        starved workers poll).  0.04 reproduces the paper's post-knee
        degradation in figure 10; set 0 to ablate.
    analyzer_share:
        Fraction of a kernel's measured dispatch time spent *in the
        analyzer thread*; the remainder (fetch slicing, field
        allocation/reallocation — "the dispatch time includes allocation
        or reallocation of fields", section VIII-A) is paid by the
        worker executing the instance.  0.5 places K-means' knee at 4
        workers as in figure 10.
    chunks_per_stage:
        Target number of chunks a stage-age's instances are split into
        (more = finer interleaving, more events).
    """

    def __init__(
        self,
        model: WorkloadModel,
        machine: MachineProfile,
        workers: int,
        *,
        contention: float = 0.04,
        analyzer_share: float = 0.5,
        chunks_per_stage: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.model = model
        self.machine = machine
        self.workers = workers
        self.contention = contention
        if not 0.0 <= analyzer_share <= 1.0:
            raise ValueError("analyzer_share must be in [0, 1]")
        self.analyzer_share = analyzer_share
        self.chunks_per_stage = max(1, chunks_per_stage)
        self.loop = EventLoop()
        # queues: heaps of (age, seq, stage, count)
        self._seq = itertools.count()
        self._analyzer_q: list[tuple[int, int, StageSpec, int]] = []
        self._ready_q: list[tuple[int, int, StageSpec, int]] = []
        self._analyzer_busy = False
        self._busy_workers = 0
        # (stage, age) -> instances not yet completed
        self._remaining: dict[tuple[str, int], int] = {}
        # (stage, age) -> unmet dependency count
        self._waiting: dict[tuple[str, int], int] = {}
        # reverse deps: (stage, age) -> [(stage, age) it unblocks]
        self._unblocks: dict[tuple[str, int], list[tuple[str, int]]] = {}
        self._stats: dict[str, SimStageStats] = {
            s.name: SimStageStats() for s in model.stages
        }
        self.analyzer_busy_time = 0.0
        self.worker_busy_time = 0.0
        self._build_dependency_table()

    # ------------------------------------------------------------------
    def _exists(self, stage: str, age: int) -> bool:
        try:
            s = self.model.stage(stage)
        except KeyError:
            return False
        return 0 <= age < self.model.stage_ages(s)

    def _build_dependency_table(self) -> None:
        for s in self.model.stages:
            for age in range(self.model.stage_ages(s)):
                key = (s.name, age)
                self._remaining[key] = s.instances_per_age
                unmet = 0
                for dep_name, offset in s.deps:
                    dep_key = (dep_name, age + offset)
                    if self._exists(dep_name, age + offset):
                        unmet += 1
                        self._unblocks.setdefault(dep_key, []).append(key)
                self._waiting[key] = unmet

    # ------------------------------------------------------------------
    # Speeds
    # ------------------------------------------------------------------
    def _active_threads(self) -> int:
        return self._busy_workers + (1 if self._analyzer_busy else 0)

    def _thread_speed(self) -> float:
        return self.machine.per_thread_speed(max(1, self._active_threads()))

    # ------------------------------------------------------------------
    # Analyzer server
    # ------------------------------------------------------------------
    def _enqueue_analysis(self, stage: StageSpec, age: int) -> None:
        count = stage.instances_per_age
        if count == 0:
            self._stage_age_completed(stage, age)
            return
        chunk = max(1, math.ceil(count / self.chunks_per_stage))
        while count > 0:
            c = min(chunk, count)
            heapq.heappush(
                self._analyzer_q, (age, next(self._seq), stage, c)
            )
            count -= c
        self._kick_analyzer()

    def _kick_analyzer(self) -> None:
        if self._analyzer_busy or not self._analyzer_q:
            return
        age, _seq, stage, count = heapq.heappop(self._analyzer_q)
        self._analyzer_busy = True
        factor = 1.0 + self.contention * max(0, self.workers - 1)
        speed = self._thread_speed()
        analyzer_us = stage.dispatch_time_us * self.analyzer_share
        duration = count * analyzer_us * 1e-6 * factor / speed
        self.analyzer_busy_time += duration
        self._stats[stage.name].dispatch_seconds += (
            count * stage.dispatch_time_us * 1e-6
        )

        def done() -> None:
            self._analyzer_busy = False
            heapq.heappush(
                self._ready_q, (age, next(self._seq), stage, count)
            )
            self._kick_workers()
            self._kick_analyzer()

        self.loop.after(duration, done)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _kick_workers(self) -> None:
        while self._busy_workers < self.workers and self._ready_q:
            age, _seq, stage, count = heapq.heappop(self._ready_q)
            self._busy_workers += 1
            speed = self._thread_speed()
            worker_us = (
                stage.kernel_time_us
                + stage.dispatch_time_us * (1.0 - self.analyzer_share)
            )
            demand = count * worker_us * 1e-6
            duration = demand / speed
            self.worker_busy_time += duration
            self._stats[stage.name].kernel_seconds += demand
            self._stats[stage.name].instances += count

            def done(stage=stage, age=age, count=count) -> None:
                self._busy_workers -= 1
                self._instances_completed(stage, age, count)
                self._kick_workers()

            self.loop.after(duration, done)

    # ------------------------------------------------------------------
    # Dependency bookkeeping
    # ------------------------------------------------------------------
    def _instances_completed(
        self, stage: StageSpec, age: int, count: int
    ) -> None:
        key = (stage.name, age)
        self._remaining[key] -= count
        if self._remaining[key] == 0:
            self._stage_age_completed(stage, age)

    def _stage_age_completed(self, stage: StageSpec, age: int) -> None:
        for succ_name, succ_age in self._unblocks.get((stage.name, age), ()):
            self._waiting[(succ_name, succ_age)] -= 1
            if self._waiting[(succ_name, succ_age)] == 0:
                self._enqueue_analysis(
                    self.model.stage(succ_name), succ_age
                )

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Simulate to completion and return the result."""
        started = False
        for s in self.model.stages:
            for age in range(self.model.stage_ages(s)):
                if self._waiting[(s.name, age)] == 0:
                    self._enqueue_analysis(s, age)
                    started = True
        if not started:
            raise ValueError(
                f"workload model {self.model.name!r} has no dependency-free "
                f"stage to start from"
            )
        makespan = self.loop.run()
        incomplete = [k for k, v in self._remaining.items() if v > 0]
        if incomplete:
            raise ValueError(
                f"simulation deadlocked; incomplete stage/ages: "
                f"{incomplete[:5]}{'...' if len(incomplete) > 5 else ''}"
            )
        return SimResult(
            machine=self.machine.name,
            workers=self.workers,
            makespan=makespan,
            stages=self._stats,
            analyzer_busy=self.analyzer_busy_time,
            worker_busy=self.worker_busy_time,
            events=self.loop.events_processed,
        )


def sweep_workers(
    model: WorkloadModel,
    machine: MachineProfile,
    worker_counts=range(1, 9),
    **kwargs,
) -> list[SimResult]:
    """Run the figure-9/10 sweep: one simulation per worker count."""
    return [
        SimExecutionNode(model, machine, w, **kwargs).run()
        for w in worker_counts
    ]
