"""A minimal discrete-event simulation core.

A single event heap with a monotonically advancing clock.  Callbacks may
schedule further events; ties break in scheduling order, making runs
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["EventLoop"]


class EventLoop:
    """Deterministic event heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past ({time} < {self.now})"
            )
        heapq.heappush(self._heap, (time, next(self._seq), fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the heap drains (or a bound is hit);
        returns the final clock value."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            if max_events is not None and self.events_processed >= max_events:
                break
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            fn()
        return self.now

    def __len__(self) -> int:
        return len(self._heap)
