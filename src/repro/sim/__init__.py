"""Discrete-event simulation of P2G execution nodes.

Why this exists: the paper's scaling curves (figures 9 and 10) were
measured on a 4-way Core i7 860 and an 8-way Opteron 8218 running a C++
runtime whose worker threads execute truly in parallel.  CPython's GIL
makes an honest 1–8-thread sweep of Python kernel code meaningless, so —
per the reproduction's substitution rule — this package simulates the
*mechanism* those curves exercise:

* ``W`` worker threads draining an age-ordered ready queue;
* one dedicated, serial dependency-analyzer thread that must spend a
  per-instance dispatch cost before an instance becomes ready (its
  saturation is what caps K-means at 4 threads in figure 10);
* machine profiles from table I — core counts, SMT, the Core i7's
  single-core turbo (the paper's explanation for the i7 suffering less
  under the serial bottleneck) — with all threads time-sharing the
  cores;
* per-kernel costs calibrated from tables II and III (or measured from
  the real Python runtime via :mod:`repro.sim.calibrate`).

The simulator is a model and is documented as such; it reproduces curve
*shapes* (who wins, where the knees fall), not the paper's absolute
seconds.
"""

from .advisor import (
    WorkerRecommendation,
    coarsen_model,
    compare_machines,
    granularity_what_if,
    recommend_workers,
)
from .desim import EventLoop
from .machine import CORE_I7_860, MACHINES, MachineProfile, OPTERON_8218
from .machine import machine_table
from .simcluster import (
    NetworkModel,
    SimCluster,
    SimClusterNode,
    SimClusterResult,
    best_assignment,
    evaluate_assignment,
)
from .simnode import SimExecutionNode, SimResult, sweep_workers
from .workload import (
    StageSpec,
    WorkloadModel,
    model_from_instrumentation,
    paper_kmeans_model,
    paper_mjpeg_model,
)

__all__ = [
    "CORE_I7_860",
    "EventLoop",
    "MACHINES",
    "MachineProfile",
    "NetworkModel",
    "OPTERON_8218",
    "SimCluster",
    "SimClusterNode",
    "SimClusterResult",
    "best_assignment",
    "evaluate_assignment",
    "SimExecutionNode",
    "SimResult",
    "StageSpec",
    "WorkerRecommendation",
    "WorkloadModel",
    "coarsen_model",
    "compare_machines",
    "granularity_what_if",
    "machine_table",
    "recommend_workers",
    "sweep_workers",
    "model_from_instrumentation",
    "paper_kmeans_model",
    "paper_mjpeg_model",
]
