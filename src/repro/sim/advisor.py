"""Configuration advisor: what-if analysis on the simulator.

Section V-A of the paper: the weighted static graphs "can serve as
input to static offline analysis.  For example, it could be used as
input to a simulator to best determine how to initially configure a
workload, given various global topology configurations."  This module
is that use-case: given a workload model (from the paper's tables or
calibrated from a real run), it answers

* :func:`recommend_workers` — how many worker threads before returns
  stop (the figure-10 knee, found without running the real system);
* :func:`compare_machines` — which topology runs the workload fastest;
* :func:`granularity_what_if` — how the curves move if the LLS coarsens
  a stage by some factor (predicting the §VIII-B remedy *before*
  rewriting the program).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

from .machine import MachineProfile
from .simnode import SimExecutionNode
from .workload import StageSpec, WorkloadModel

__all__ = [
    "WorkerRecommendation",
    "recommend_workers",
    "compare_machines",
    "coarsen_model",
    "granularity_what_if",
]


@dataclass
class WorkerRecommendation:
    """Outcome of a simulated worker sweep."""

    machine: str
    best_workers: int  #: worker count minimizing makespan
    best_makespan: float
    knee: int  #: smallest count within ``tolerance`` of the best
    series: list[tuple[int, float]]
    analyzer_bound: bool  #: analyzer utilization > 90% at the knee

    def speedup(self) -> float:
        """Best makespan relative to the 1-worker point."""
        first = dict(self.series)[min(w for w, _ in self.series)]
        return first / self.best_makespan


def recommend_workers(
    model: WorkloadModel,
    machine: MachineProfile,
    max_workers: int = 16,
    tolerance: float = 0.05,
    **sim_kwargs,
) -> WorkerRecommendation:
    """Sweep 1..max_workers in simulation and pick the configuration.

    ``knee`` is the *cheapest adequate* choice: the smallest worker
    count whose makespan is within ``tolerance`` of the best — the
    number an operator should provision.
    """
    results = [
        SimExecutionNode(model, machine, w, **sim_kwargs).run()
        for w in range(1, max_workers + 1)
    ]
    series = [(r.workers, r.makespan) for r in results]
    best = min(results, key=lambda r: r.makespan)
    knee = next(
        r for r in results
        if r.makespan <= best.makespan * (1.0 + tolerance)
    )
    return WorkerRecommendation(
        machine=machine.name,
        best_workers=best.workers,
        best_makespan=best.makespan,
        knee=knee.workers,
        series=series,
        analyzer_bound=knee.analyzer_utilization > 0.9,
    )


def compare_machines(
    model: WorkloadModel,
    machines: Mapping[str, MachineProfile],
    max_workers: int = 8,
    **sim_kwargs,
) -> dict[str, WorkerRecommendation]:
    """Recommend per machine; the HLS's topology-choice question."""
    return {
        name: recommend_workers(model, m, max_workers, **sim_kwargs)
        for name, m in machines.items()
    }


def coarsen_model(
    model: WorkloadModel, stage: str, factor: int
) -> WorkloadModel:
    """The LLS data-granularity transform applied to a *model*: the
    stage's instances divide by ``factor``, its per-instance kernel time
    multiplies (same total work), and its per-instance dispatch cost
    stays — so total dispatch load shrinks by ``factor``.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    stages = []
    found = False
    for s in model.stages:
        if s.name == stage:
            found = True
            per_age = max(1, -(-s.instances_per_age // factor))
            effective = s.instances_per_age / per_age
            stages.append(
                StageSpec(
                    s.name,
                    per_age,
                    s.kernel_time_us * effective,
                    s.dispatch_time_us,
                    ages=s.ages,
                    deps=s.deps,
                )
            )
        else:
            stages.append(s)
    if not found:
        raise KeyError(stage)
    return WorkloadModel(
        f"{model.name}/coarse-{stage}x{factor}", model.ages, tuple(stages)
    )


@dataclass
class WhatIfResult:
    """Granularity what-if outcome for one coarsening factor."""

    factor: int
    recommendation: WorkerRecommendation


def granularity_what_if(
    model: WorkloadModel,
    machine: MachineProfile,
    stage: str,
    factors: Sequence[int] = (1, 8, 64, 512),
    max_workers: int = 8,
    **sim_kwargs,
) -> list[WhatIfResult]:
    """Predict how coarsening ``stage`` moves the scaling curve —
    the §VIII-B remedy evaluated offline."""
    out = []
    for f in factors:
        m = coarsen_model(model, stage, f) if f > 1 else model
        out.append(
            WhatIfResult(
                f, recommend_workers(m, machine, max_workers, **sim_kwargs)
            )
        )
    return out
