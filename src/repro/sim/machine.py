"""Machine profiles (paper, table I).

A profile answers one question for the simulator: with ``t`` runnable
threads, how much total compute capacity (in reference-core units) does
the machine deliver?  Threads time-share that capacity equally
(processor-sharing approximation).

The two evaluation machines:

* **Intel Core i7 860** (Nehalem): 4 physical cores, 8 logical threads
  via SMT, and Turbo Boost — the single-core frequency uplift the paper
  credits for the i7 tolerating the serial dependency analyzer better
  than the Opteron ("the Core i7 is able to increase the frequency of a
  single core to mitigate serial bottlenecks").
* **AMD Opteron 8218** (Santa Rosa): 8 physical cores, no SMT, no turbo.

Costs in the paper's micro-benchmark tables are treated as Core i7
reference units; the Opteron's relative per-core speed (0.63) is
calibrated from the standalone encoder ratio the paper reports (19 s on
the i7 vs 30 s on the Opteron).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineProfile", "CORE_I7_860", "OPTERON_8218", "MACHINES",
           "machine_table"]


@dataclass(frozen=True)
class MachineProfile:
    """Capacity model of one test machine.

    Parameters
    ----------
    name / cpu:
        Display strings (table I rows).
    physical_cores / logical_threads:
        Table I core counts.
    microarchitecture:
        Table I row.
    relative_speed:
        Per-core speed at base clock, in reference units (Core i7 = 1.0).
    turbo:
        Frequency multipliers by number of active physical cores
        (index 0 = one active core); ``None`` disables turbo.
    smt_gain:
        Extra capacity from filling the second SMT thread of every core
        (0.30 = +30% when all logical threads are busy); 0 for no SMT.
    """

    name: str
    cpu: str
    physical_cores: int
    logical_threads: int
    microarchitecture: str
    relative_speed: float = 1.0
    turbo: tuple[float, ...] | None = None
    smt_gain: float = 0.0

    def _turbo_factor(self, active_cores: int) -> float:
        if self.turbo is None or active_cores == 0:
            return 1.0
        idx = min(active_cores, len(self.turbo)) - 1
        return self.turbo[idx]

    def capacity(self, threads: int) -> float:
        """Total compute capacity with ``threads`` runnable threads, in
        reference-core units."""
        if threads <= 0:
            return 0.0
        cores = self.physical_cores
        active_cores = min(threads, cores)
        cap = active_cores * self._turbo_factor(active_cores)
        if threads > cores and self.smt_gain > 0:
            smt_threads = min(threads, self.logical_threads) - cores
            cap *= 1.0 + self.smt_gain * smt_threads / cores
        return cap * self.relative_speed

    def per_thread_speed(self, threads: int) -> float:
        """Speed of each of ``threads`` equally-sharing threads."""
        if threads <= 0:
            return 0.0
        return self.capacity(threads) / threads

    def speedup(self, threads: int) -> float:
        """Capacity relative to one thread (ideal-scaling yardstick)."""
        return self.capacity(threads) / self.capacity(1)


CORE_I7_860 = MachineProfile(
    name="4-way Intel Core i7",
    cpu="Intel Core i7 860 2,8 GHz",
    physical_cores=4,
    logical_threads=8,
    microarchitecture="Nehalem (Intel)",
    relative_speed=1.0,
    # 2.8 GHz base; 3.46/3.33/2.93/2.93 GHz at 1/2/3/4 active cores.
    turbo=(1.236, 1.190, 1.048, 1.048),
    smt_gain=0.30,
)

OPTERON_8218 = MachineProfile(
    name="8-way AMD Opteron",
    cpu="AMD Opteron 8218 2,6 GHz",
    physical_cores=8,
    logical_threads=8,
    microarchitecture="Santa Rosa (AMD)",
    # Standalone-encoder calibration: 19 s (i7, turbo-boosted single
    # core = 1.236) vs 30 s (Opteron) -> 1.236 * 19/30.
    relative_speed=0.783,
    turbo=None,
    smt_gain=0.0,
)

MACHINES: dict[str, MachineProfile] = {
    "core_i7": CORE_I7_860,
    "opteron": OPTERON_8218,
}


def machine_table() -> str:
    """Render table I."""
    lines = []
    for m in (CORE_I7_860, OPTERON_8218):
        lines.append(m.name)
        lines.append(f"  {'CPU-name':<20}{m.cpu}")
        lines.append(f"  {'Physical cores':<20}{m.physical_cores}")
        lines.append(f"  {'Logical threads':<20}{m.logical_threads}")
        lines.append(f"  {'Microarchitecture':<20}{m.microarchitecture}")
    return "\n".join(lines)
