"""Topology descriptions (paper, section IV and figure 1).

"Each execution node reports its local topology (a graph of multi-core
and single-core CPUs and GPUs, connected by various kinds of buses and
other networks) to the master node, which combines this information into
a global topology of available resources.  As such, the global topology
can change during runtime as execution nodes are dynamically added and
removed."
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field as dc_field
from typing import Iterable

from ..core.errors import TopologyError
from ..core.graph import Digraph

__all__ = ["ProcessorSpec", "LocalTopology", "GlobalTopology"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One processing resource of a node.

    ``kind`` is free-form ("cpu", "gpu", "dsp"); ``cores`` counts
    hardware execution units; ``speed`` is relative per-core throughput
    (reference core = 1.0).
    """

    kind: str = "cpu"
    cores: int = 1
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise TopologyError(f"processor must have >= 1 core: {self}")
        if self.speed <= 0:
            raise TopologyError(f"processor speed must be positive: {self}")

    @property
    def capacity(self) -> float:
        """cores x speed, in reference-core units."""
        return self.cores * self.speed


@dataclass(frozen=True)
class LocalTopology:
    """What one execution node reports to the master."""

    node: str
    processors: tuple[ProcessorSpec, ...] = (ProcessorSpec(),)

    def __post_init__(self) -> None:
        if not self.processors:
            raise TopologyError(f"node {self.node!r} reports no processors")

    @property
    def cpu_capacity(self) -> float:
        """Total general-purpose capacity (what the HLS balances on)."""
        return sum(p.capacity for p in self.processors if p.kind == "cpu")

    @property
    def total_capacity(self) -> float:
        """Capacity across all processors, accelerators included."""
        return sum(p.capacity for p in self.processors)

    def has(self, kind: str) -> bool:
        """Whether the node has a processor of ``kind``."""
        return any(p.kind == kind for p in self.processors)


class GlobalTopology:
    """The master's merged view; thread-safe, supports dynamic add/remove
    (elastic scaling, section IX)."""

    def __init__(self, nodes: Iterable[LocalTopology] = ()) -> None:
        self._lock = threading.Lock()
        self._nodes: dict[str, LocalTopology] = {}
        self._failed: list[str] = []
        self._epoch = 0
        for n in nodes:
            self.add(n)

    def add(self, topo: LocalTopology) -> None:
        """A node joins; bumps the epoch."""
        with self._lock:
            if topo.node in self._nodes:
                raise TopologyError(f"node {topo.node!r} already registered")
            self._nodes[topo.node] = topo
            self._epoch += 1

    def remove(self, node: str) -> LocalTopology:
        """A node leaves; bumps the epoch and returns its report."""
        with self._lock:
            try:
                topo = self._nodes.pop(node)
            except KeyError:
                raise TopologyError(f"unknown node {node!r}") from None
            self._epoch += 1
            return topo

    def mark_failed(self, node: str) -> LocalTopology:
        """A node died (as opposed to leaving gracefully): removed from
        the live set, remembered in the failure history, epoch bumped.
        Returns its last topology report (a replacement inherits it)."""
        with self._lock:
            try:
                topo = self._nodes.pop(node)
            except KeyError:
                raise TopologyError(f"unknown node {node!r}") from None
            self._failed.append(node)
            self._epoch += 1
            return topo

    def failed_nodes(self) -> list[str]:
        """Names of every node that was marked failed, in order."""
        with self._lock:
            return list(self._failed)

    def update(self, topo: LocalTopology) -> None:
        """Replace a node's report (its resources changed)."""
        with self._lock:
            if topo.node not in self._nodes:
                raise TopologyError(f"unknown node {topo.node!r}")
            self._nodes[topo.node] = topo
            self._epoch += 1

    @property
    def epoch(self) -> int:
        """Bumped on every change; the HLS repartitions on epoch drift."""
        with self._lock:
            return self._epoch

    def nodes(self) -> list[LocalTopology]:
        """All registered local topologies, by node name."""
        with self._lock:
            return [self._nodes[k] for k in sorted(self._nodes)]

    def node_names(self) -> list[str]:
        """Sorted registered node names."""
        with self._lock:
            return sorted(self._nodes)

    def capacities(self) -> dict[str, float]:
        """Per-node CPU capacity — the HLS's balancing weights."""
        with self._lock:
            return {
                name: t.cpu_capacity for name, t in sorted(self._nodes.items())
            }

    def total_capacity(self) -> float:
        """Summed CPU capacity of every node."""
        return sum(self.capacities().values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        with self._lock:
            return node in self._nodes

    def as_graph(self) -> Digraph:
        """Figure-1-style rendering: master connected to every node,
        nodes to their processors."""
        g = Digraph()
        g.add_node("master", kind="kernel", label="master node")
        for t in self.nodes():
            g.add_node(t.node, kind="kernel", label=t.node)
            g.add_edge("master", t.node)
            for i, p in enumerate(t.processors):
                pid = f"{t.node}/{p.kind}{i}"
                g.add_node(
                    pid, kind="field",
                    label=f"{p.kind} x{p.cores} @{p.speed:g}",
                )
                g.add_edge(t.node, pid)
        return g
