"""The master node and its high-level scheduler (paper, section IV).

The master holds the global topology, derives the program's final
implicit static dependency graph, optionally weights it with
instrumentation data collected from the execution nodes, and partitions
it across the registered nodes — repartitioning "with the intent of
improving the throughput in the system, or accommodate for changes in
the global load".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import TopologyError
from ..core.graph import final_graph, weighted_final_graph
from ..core.instrumentation import Instrumentation
from ..core.program import Program
from .partition import Partition, incremental_partition, partition_graph
from .topology import GlobalTopology, LocalTopology

__all__ = ["WorkloadAssignment", "MasterNode"]


@dataclass
class WorkloadAssignment:
    """The HLS's output: which kernel runs on which node."""

    partition: Partition
    method: str
    epoch: int  #: topology epoch the plan was computed against

    def node_of(self, kernel: str) -> str:
        """The node a kernel is assigned to."""
        return self.partition.assign[kernel]

    def kernels_for(self, node: str) -> list[str]:
        """Kernels assigned to ``node``, sorted."""
        return self.partition.members(node)

    def nodes(self) -> list[str]:
        """All part (node) names."""
        return self.partition.parts()

    def describe(self) -> str:
        """Human-readable per-node kernel listing."""
        lines = [f"assignment ({self.method}):"]
        for node in self.nodes():
            ks = ", ".join(str(k) for k in self.kernels_for(node))
            lines.append(f"  {node}: {ks}")
        return "\n".join(lines)


class MasterNode:
    """Registry + HLS.  Execution nodes register their local topologies;
    :meth:`plan` produces a :class:`WorkloadAssignment`."""

    def __init__(self, topology: GlobalTopology | None = None) -> None:
        self.topology = topology if topology is not None else GlobalTopology()
        self.last_assignment: WorkloadAssignment | None = None

    # -- node lifecycle -------------------------------------------------
    def register(self, topo: LocalTopology) -> None:
        """An execution node joins the global topology."""
        self.topology.add(topo)

    def unregister(self, node: str) -> None:
        """An execution node leaves the global topology."""
        self.topology.remove(node)

    def on_failure(self, node: str) -> LocalTopology:
        """The failure detector declared ``node`` dead: record it in the
        failure history and drop it from the live topology.  Returns its
        topology report so a replacement can inherit the capacity."""
        return self.topology.mark_failed(node)

    def select_host(self, exclude: tuple[str, ...] = ()) -> str | None:
        """Surviving node with the highest CPU capacity (deterministic:
        capacity, then name, breaks ties) — where the recovery manager
        places a dead node's kernels.  ``None`` when nobody survives."""
        caps = {
            n: c
            for n, c in self.topology.capacities().items()
            if n not in exclude
        }
        if not caps:
            return None
        return max(caps.items(), key=lambda kv: (kv[1], kv[0]))[0]

    # -- HLS --------------------------------------------------------------
    def plan(
        self,
        program: Program,
        instrumentation: Instrumentation | None = None,
        method: str = "kl",
        **kwargs,
    ) -> WorkloadAssignment:
        """Partition the program's final graph over the registered nodes.

        With ``instrumentation`` the graph is weighted by measured kernel
        times and instance counts; without, kernels weigh their
        ``cost_hint``.
        """
        if len(self.topology) == 0:
            raise TopologyError("no execution nodes registered")
        graph = self._weighted_graph(program, instrumentation)
        capacities = self.topology.capacities()
        partition = partition_graph(graph, capacities, method, **kwargs)
        assignment = WorkloadAssignment(
            partition, method, self.topology.epoch
        )
        self.last_assignment = assignment
        return assignment

    def _weighted_graph(
        self,
        program: Program,
        instrumentation: Instrumentation | None,
    ):
        if instrumentation is not None:
            return weighted_final_graph(program, instrumentation)
        graph = final_graph(program)
        for name in graph.nodes():
            graph.node(name)["weight"] = program.kernels[name].cost_hint
        return graph

    def plan_incremental(
        self,
        program: Program,
        instrumentation: Instrumentation | None = None,
        move_penalty: float = 0.5,
    ) -> WorkloadAssignment:
        """Repartition over the *current* topology after a membership
        change, seeding from the last assignment and penalizing moved
        kernels (see :func:`~repro.dist.partition
        .incremental_partition`).  Falls back to a full :meth:`plan`
        when there is no previous assignment to be incremental against.
        """
        if len(self.topology) == 0:
            raise TopologyError("no execution nodes registered")
        prev = self.last_assignment
        if prev is None:
            return self.plan(program, instrumentation)
        graph = self._weighted_graph(program, instrumentation)
        capacities = self.topology.capacities()
        partition = incremental_partition(
            graph, capacities, prev.partition, move_penalty=move_penalty
        )
        assignment = WorkloadAssignment(
            partition, "incremental", self.topology.epoch
        )
        self.last_assignment = assignment
        return assignment

    def repartition(
        self,
        program: Program,
        instrumentation: Instrumentation,
        method: str = "kl",
        **kwargs,
    ) -> tuple[WorkloadAssignment, bool]:
        """Profile-driven repartitioning: returns (assignment, changed).

        ``changed`` compares against the previous assignment so callers
        can skip migration when the plan is stable.
        """
        prev = self.last_assignment
        new = self.plan(program, instrumentation, method, **kwargs)
        changed = prev is None or prev.partition.assign != new.partition.assign
        return new, changed

    def stale(self) -> bool:
        """Whether the topology changed since the last plan."""
        return (
            self.last_assignment is None
            or self.last_assignment.epoch != self.topology.epoch
        )
