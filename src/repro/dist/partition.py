"""HLS graph partitioning (paper, section IV).

"The HLS can then use a graph partitioning [17] or search based [14]
algorithm to partition the workload into a suitable number of components
that can be distributed to, and run, on the resources available in the
topology."

Three partitioners over the weighted final static dependency graph:

* :func:`greedy_partition` — capacity-aware seeding (heaviest kernels
  first, placed to balance load and keep neighbours together);
* :func:`kernighan_lin` — Kernighan–Lin/Fiduccia–Mattheyses-style move
  refinement (the classic graph-partitioning route, ref [17]);
* :func:`tabu_search` — the search-based route (ref [14], Glover's tabu
  search): single-node moves with a tabu list, accepting uphill moves to
  escape local minima.

All three balance *weighted* kernel load against heterogeneous node
capacities and minimize the weight of cut edges (inter-node field
traffic).  :func:`partition_graph` runs greedy seeding + KL refinement,
which is the master's default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Hashable, Mapping, Sequence

from ..core.errors import PartitionError
from ..core.graph import Digraph

__all__ = [
    "Partition",
    "greedy_partition",
    "kernighan_lin",
    "tabu_search",
    "partition_graph",
    "incremental_partition",
]


def _node_weight(graph: Digraph, node: Hashable) -> float:
    w = graph.node(node).get("weight")
    return 1.0 if w is None or w <= 0 else float(w)


def _edge_weight(attrs: Mapping) -> float:
    w = attrs.get("weight")
    return 1.0 if w is None or w <= 0 else float(w)


@dataclass
class Partition:
    """An assignment of graph nodes to named parts."""

    assign: dict[Hashable, str]
    capacities: dict[str, float]

    def parts(self) -> list[str]:
        """Sorted part names."""
        return sorted(self.capacities)

    def members(self, part: str) -> list[Hashable]:
        """Nodes assigned to ``part``, sorted."""
        return sorted(
            (n for n, p in self.assign.items() if p == part), key=repr
        )

    def loads(self, graph: Digraph) -> dict[str, float]:
        """Summed node weight per part."""
        loads = {p: 0.0 for p in self.capacities}
        for n, p in self.assign.items():
            loads[p] += _node_weight(graph, n)
        return loads

    def edge_cut(self, graph: Digraph) -> float:
        """Total weight of edges whose endpoints live on different parts
        (≈ inter-node field traffic)."""
        return sum(
            _edge_weight(attrs)
            for u, v, attrs in graph.edges()
            if self.assign[u] != self.assign[v]
        )

    def imbalance(self, graph: Digraph) -> float:
        """Max relative deviation of load/capacity from the ideal (0 =
        perfectly proportional)."""
        loads = self.loads(graph)
        total_load = sum(loads.values())
        total_cap = sum(self.capacities.values())
        if total_load == 0 or total_cap == 0:
            return 0.0
        worst = 0.0
        for p, cap in self.capacities.items():
            ideal = total_load * cap / total_cap
            if ideal > 0:
                worst = max(worst, abs(loads[p] - ideal) / ideal)
        return worst

    def cost(self, graph: Digraph, balance_penalty: float = 1.0) -> float:
        """Scalar objective the refiners minimize."""
        total_edges = sum(_edge_weight(a) for _u, _v, a in graph.edges())
        scale = total_edges if total_edges > 0 else 1.0
        return self.edge_cut(graph) + balance_penalty * scale * \
            self.imbalance(graph)

    def validate(self, graph: Digraph) -> None:
        """Raise PartitionError unless every graph node is validly assigned."""
        missing = [n for n in graph.nodes() if n not in self.assign]
        if missing:
            raise PartitionError(f"unassigned nodes: {missing[:5]}")
        bad = [
            n for n, p in self.assign.items() if p not in self.capacities
        ]
        if bad:
            raise PartitionError(f"nodes assigned to unknown parts: {bad[:5]}")

    def copy(self) -> "Partition":
        """Deep-enough copy for move-based refinement."""
        return Partition(dict(self.assign), dict(self.capacities))


# ----------------------------------------------------------------------
def greedy_partition(
    graph: Digraph, capacities: Mapping[str, float]
) -> Partition:
    """Capacity-proportional greedy seeding.

    Nodes are placed heaviest-first onto the part minimizing projected
    relative load, with a bonus for parts already holding neighbours
    (keeps pipelines together).
    """
    if not capacities:
        raise PartitionError("no parts to partition onto")
    caps = {p: float(c) for p, c in capacities.items()}
    if any(c <= 0 for c in caps.values()):
        raise PartitionError("part capacities must be positive")
    assign: dict[Hashable, str] = {}
    loads = {p: 0.0 for p in caps}
    order = sorted(
        graph.nodes(), key=lambda n: (-_node_weight(graph, n), repr(n))
    )
    # Normalizers keep the two objectives in comparable, unit-free terms:
    # the load term is relative to a perfectly proportional placement,
    # the affinity term is the fraction of total edge weight kept local.
    total_w = sum(_node_weight(graph, x) for x in graph.nodes())
    total_cap = sum(caps.values())
    ideal_density = max(total_w / total_cap, 1e-12)
    total_e = max(
        sum(_edge_weight(a) for _u, _v, a in graph.edges()), 1e-12
    )
    affinity_bias = 0.3  # balance dominates; affinity breaks ties
    for n in order:
        w = _node_weight(graph, n)
        neighbours = set(graph.successors(n)) | set(graph.predecessors(n))
        best_part, best_score = None, None
        for p in sorted(caps):
            affinity = sum(
                _edge_weight(graph.edge(n, m) if graph.has_edge(n, m)
                             else graph.edge(m, n))
                for m in neighbours
                if assign.get(m) == p
            )
            score = (
                (loads[p] + w) / caps[p] / ideal_density
                - affinity_bias * affinity / total_e
            )
            if best_score is None or score < best_score:
                best_part, best_score = p, score
        assign[n] = best_part
        loads[best_part] += w
    part = Partition(assign, caps)
    part.validate(graph)
    return part


# ----------------------------------------------------------------------
def _move_gain(
    graph: Digraph,
    part: Partition,
    node: Hashable,
    target: str,
    balance_penalty: float,
) -> float:
    """Cost reduction from moving ``node`` to ``target`` (positive =
    better)."""
    before = part.cost(graph, balance_penalty)
    original = part.assign[node]
    part.assign[node] = target
    after = part.cost(graph, balance_penalty)
    part.assign[node] = original
    return before - after


def kernighan_lin(
    graph: Digraph,
    capacities: Mapping[str, float],
    start: Partition | None = None,
    max_passes: int = 8,
    balance_penalty: float = 1.0,
) -> Partition:
    """KL/FM-style refinement: passes of locked best-gain single-node
    moves, keeping the best prefix of each pass."""
    part = (start.copy() if start is not None
            else greedy_partition(graph, capacities))
    parts = part.parts()
    for _ in range(max_passes):
        locked: set[Hashable] = set()
        trail: list[tuple[Hashable, str, str]] = []
        gains: list[float] = []
        working = part.copy()
        while len(locked) < len(graph):
            best = None
            for n in graph.nodes():
                if n in locked:
                    continue
                for p in parts:
                    if p == working.assign[n]:
                        continue
                    g = _move_gain(graph, working, n, p, balance_penalty)
                    if best is None or g > best[0]:
                        best = (g, n, p)
            if best is None:
                break
            g, n, p = best
            trail.append((n, working.assign[n], p))
            gains.append(g)
            working.assign[n] = p
            locked.add(n)
            if len(trail) > 2 * len(graph):
                break
        # Keep the best prefix of the move trail.
        best_prefix, best_sum, run = 0, 0.0, 0.0
        for i, g in enumerate(gains):
            run += g
            if run > best_sum:
                best_sum, best_prefix = run, i + 1
        if best_prefix == 0 or best_sum <= 1e-12:
            break
        for n, _src, dst in trail[:best_prefix]:
            part.assign[n] = dst
    part.validate(graph)
    return part


# ----------------------------------------------------------------------
def tabu_search(
    graph: Digraph,
    capacities: Mapping[str, float],
    start: Partition | None = None,
    iterations: int = 200,
    tabu_tenure: int = 7,
    balance_penalty: float = 1.0,
    seed: int = 0,
) -> Partition:
    """Tabu search over single-node moves (the paper's ref [14]).

    Each iteration applies the best non-tabu move (even uphill); a move
    of node ``n`` makes (n, source_part) tabu for ``tabu_tenure``
    iterations; the best partition ever seen is returned.
    """
    rng = random.Random(seed)
    part = (start.copy() if start is not None
            else greedy_partition(graph, capacities))
    parts = part.parts()
    best = part.copy()
    best_cost = best.cost(graph, balance_penalty)
    tabu: dict[tuple[Hashable, str], int] = {}
    nodes = sorted(graph.nodes(), key=repr)
    for it in range(iterations):
        candidates = []
        for n in nodes:
            src = part.assign[n]
            for p in parts:
                if p == src:
                    continue
                if tabu.get((n, p), -1) >= it:
                    continue
                g = _move_gain(graph, part, n, p, balance_penalty)
                candidates.append((g, rng.random(), n, src, p))
        if not candidates:
            break
        candidates.sort(reverse=True)
        g, _r, n, src, dst = candidates[0]
        part.assign[n] = dst
        tabu[(n, src)] = it + tabu_tenure
        cost = part.cost(graph, balance_penalty)
        if cost < best_cost - 1e-12:
            best, best_cost = part.copy(), cost
    best.validate(graph)
    return best


# ----------------------------------------------------------------------
def incremental_partition(
    graph: Digraph,
    capacities: Mapping[str, float],
    previous: Partition,
    move_penalty: float = 0.5,
    balance_penalty: float = 1.0,
    max_moves: int | None = None,
) -> Partition:
    """Repartition after a membership change, minimizing *moved* nodes.

    A scale-out/scale-in migration pays per kernel that changes owner
    (fence, state replay, warm caches lost), so the objective is not
    just cut weight + balance but also migration volume.  The seed keeps
    every node on its previous part when that part survived; orphans of
    removed parts and brand-new graph nodes are placed greedily against
    the surviving loads.  Refinement then applies best-gain single-node
    moves where each move away from a node's *previous* placement is
    charged ``move_penalty`` (scaled to total edge weight, like the
    balance term) — a kernel moves only when the traffic/balance gain
    exceeds its migration cost.
    """
    if not capacities:
        raise PartitionError("no parts to partition onto")
    caps = {p: float(c) for p, c in capacities.items()}
    if any(c <= 0 for c in caps.values()):
        raise PartitionError("part capacities must be positive")
    origin = {
        n: p for n, p in previous.assign.items() if p in caps
    }
    total_w = max(
        sum(_node_weight(graph, n) for n in graph.nodes()), 1e-12
    )
    total_e = max(
        sum(_edge_weight(a) for _u, _v, a in graph.edges()), 1e-12
    )

    # Seed: sticky placement, greedy fill for the unplaced.
    assign: dict[Hashable, str] = {}
    loads = {p: 0.0 for p in caps}
    unplaced = []
    for n in sorted(graph.nodes(), key=repr):
        prev_part = origin.get(n)
        if prev_part is not None:
            assign[n] = prev_part
            loads[prev_part] += _node_weight(graph, n)
        else:
            unplaced.append(n)
    unplaced.sort(key=lambda n: (-_node_weight(graph, n), repr(n)))
    total_cap = sum(caps.values())
    ideal_density = max(total_w / total_cap, 1e-12)
    for n in unplaced:
        w = _node_weight(graph, n)
        neighbours = set(graph.successors(n)) | set(graph.predecessors(n))
        best_part, best_score = None, None
        for p in sorted(caps):
            affinity = sum(
                _edge_weight(graph.edge(n, m) if graph.has_edge(n, m)
                             else graph.edge(m, n))
                for m in neighbours
                if assign.get(m) == p
            )
            score = (
                (loads[p] + w) / caps[p] / ideal_density
                - 0.3 * affinity / total_e
            )
            if best_score is None or score < best_score:
                best_part, best_score = p, score
        assign[n] = best_part
        loads[best_part] += w

    part = Partition(assign, caps)
    part.validate(graph)

    def migration_cost(p: Partition) -> float:
        moved_w = sum(
            _node_weight(graph, n)
            for n, dst in p.assign.items()
            if n in origin and dst != origin[n]
        )
        return move_penalty * total_e * moved_w / total_w

    def objective(p: Partition) -> float:
        return p.cost(graph, balance_penalty) + migration_cost(p)

    # Best-gain hill climb under the migration-aware objective.
    budget = max_moves if max_moves is not None else 4 * len(graph)
    current = objective(part)
    parts = part.parts()
    nodes = sorted(graph.nodes(), key=repr)
    for _ in range(budget):
        best = None
        for n in nodes:
            src = part.assign[n]
            for p in parts:
                if p == src:
                    continue
                part.assign[n] = p
                cand = objective(part)
                part.assign[n] = src
                gain = current - cand
                if gain > 1e-12 and (best is None or gain > best[0]):
                    best = (gain, n, p)
        if best is None:
            break
        _g, n, p = best
        part.assign[n] = p
        current = objective(part)
    part.validate(graph)
    return part


def partition_graph(
    graph: Digraph,
    capacities: Mapping[str, float],
    method: str = "kl",
    **kwargs,
) -> Partition:
    """The master's entry point: greedy seed + chosen refiner."""
    if method == "greedy":
        return greedy_partition(graph, capacities)
    if method == "kl":
        return kernighan_lin(graph, capacities, **kwargs)
    if method == "tabu":
        return tabu_search(graph, capacities, **kwargs)
    raise PartitionError(f"unknown partition method {method!r}")
