"""Publish–subscribe message transport (paper, section IV).

"Data distribution, reporting, and other communication patterns is
achieved in P2G through an event-based, distributed publish-subscribe
model."

:class:`InProcTransport` is the in-process realization used by the
cluster simulation: topics are field names (plus control topics),
delivery is synchronous on the publisher's thread, and every message is
accounted (count + payload bytes per topic and per link) so experiments
can measure the inter-node traffic the HLS's partitioning decisions
produce.  An optional latency model charges simulated microseconds per
message + per byte without sleeping, for offline what-if analysis.

Fault-tolerance support (used by :mod:`repro.dist.recovery`):

* a **durable event log** (``enable_log``) retains every non-control
  message in publish order, so a replacement node can replay the store
  history a dead node's analyzer would have seen;
* **control messages** (``control=True`` — heartbeats, liveness) are
  delivered but neither logged nor accounted, keeping
  :attr:`TransportStats.messages` an exact count of the store/resize
  events the HLS's partitioning objective minimizes;
* a **drop filter** (``drop_from``) silences a sender — data *and*
  control — modelling a network partition for fault injection;
* delivery is **hardened**: a subscriber that raises does not corrupt
  the traffic counts, starve later subscribers of the same message, or
  propagate into the publisher (a storing worker thread); failures are
  counted in :attr:`TransportStats.delivery_errors`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from ..core.errors import TransportError
from ..obs import NULL_TRACER, Tracer

__all__ = ["Message", "TransportStats", "InProcTransport"]


@dataclass(frozen=True)
class Message:
    """One published message."""

    topic: str
    sender: str
    payload: Any
    size: int = 0  #: accounted payload bytes (0 if unknown)
    #: Membership epoch the message was routed under (-1 when the
    #: transport has no membership wired — the static-cluster path).
    epoch: int = -1


@dataclass
class TransportStats:
    """Accounting of everything that crossed the transport."""

    messages: int = 0
    bytes: int = 0
    per_topic: dict[str, int] = dc_field(default_factory=dict)
    per_link: dict[tuple[str, str], int] = dc_field(default_factory=dict)
    simulated_latency_s: float = 0.0
    delivery_errors: int = 0  #: subscriber callbacks that raised
    drops: int = 0  #: messages discarded by the drop filter (partition)
    #: Publishes rejected because the sender's membership state was
    #: ``dead``/``left`` — late deliveries across an epoch boundary.
    stale_rejects: int = 0

    def record(
        self, msg: Message, receiver: str, latency_s: float
    ) -> None:
        """Account one successful delivery (count, bytes, per-topic/link)."""
        self.messages += 1
        self.bytes += msg.size
        self.per_topic[msg.topic] = self.per_topic.get(msg.topic, 0) + 1
        link = (msg.sender, receiver)
        self.per_link[link] = self.per_link.get(link, 0) + 1
        self.simulated_latency_s += latency_s


class InProcTransport:
    """Thread-safe in-process pub-sub with traffic accounting.

    Subscribers register as (node name, callback); publishing delivers to
    every subscriber of the topic except the sender (a node already has
    its own events locally).
    """

    #: Kept delivery-failure details (topic, receiver, repr(exc)); bounded
    #: so a hot failing subscriber cannot grow memory without limit.
    MAX_ERROR_DETAILS = 100

    def __init__(
        self,
        latency_per_message_us: float = 0.0,
        latency_per_byte_ns: float = 0.0,
    ) -> None:
        self._lock = threading.RLock()
        self._subs: dict[str, list[tuple[str, Callable[[Message], None]]]] = {}
        self.stats = TransportStats()
        self.latency_per_message_us = latency_per_message_us
        self.latency_per_byte_ns = latency_per_byte_ns
        self._closed = False
        self._log: list[Message] | None = None
        self._dropped: set[str] = set()
        self.delivery_failures: list[tuple[str, str, str]] = []
        #: Optional span tracer (set by the cluster); publishes record
        #: instant events in the sender's transport lane when enabled.
        self.tracer: Tracer = NULL_TRACER
        #: Optional frame timeline (set by the cluster's telemetry
        #: wiring): store-event deliveries record ``transport`` spans
        #: for the frame they carry.  ``None`` keeps publish untouched.
        self.timeline = None
        #: Optional membership registry (set by an elastic cluster; any
        #: object with a ``view()`` returning a
        #: :class:`~repro.dist.membership.MembershipView`).  When wired,
        #: every publish is epoch-stamped and a sender whose state is
        #: ``dead``/``left`` is rejected — the late-delivery fence that
        #: keeps a departed node's stragglers out of the new epoch.
        self.membership = None

    # -- fault-tolerance hooks ------------------------------------------
    def enable_log(self) -> None:
        """Start retaining every non-control message for replay."""
        with self._lock:
            if self._log is None:
                self._log = []

    def log_size(self) -> int:
        """Number of retained messages (0 when logging is off)."""
        with self._lock:
            return len(self._log) if self._log is not None else 0

    def replay(self, topics: set[str] | None = None) -> list[Message]:
        """Snapshot of the retained log, optionally filtered by topic.

        Replaying into a fresh node's analyzer is idempotent: dispatch is
        write-once per (kernel, age, index), so duplicate events only
        cost a completeness re-check.
        """
        with self._lock:
            if self._log is None:
                return []
            if topics is None:
                return list(self._log)
            return [m for m in self._log if m.topic in topics]

    def drop_from(self, sender: str) -> None:
        """Silence ``sender``: all of its messages (data and control) are
        discarded in flight — a network partition, from the cluster's
        point of view.  Logged messages are still retained (the log
        models a durable broker, which is what recovery replays from)."""
        with self._lock:
            self._dropped.add(sender)

    def undrop(self, sender: str) -> None:
        """Lift a :meth:`drop_from` partition."""
        with self._lock:
            self._dropped.discard(sender)

    def dropped_senders(self) -> set[str]:
        """Senders currently partitioned away."""
        with self._lock:
            return set(self._dropped)

    # -- pub-sub ---------------------------------------------------------
    def subscribe(
        self, topic: str, node: str, handler: Callable[[Message], None]
    ) -> Callable[[], None]:
        """Register ``handler`` for ``topic`` on behalf of ``node``;
        returns an unsubscribe callable."""
        with self._lock:
            if self._closed:
                raise TransportError("transport is closed")
            entry = (node, handler)
            self._subs.setdefault(topic, []).append(entry)

        def unsubscribe() -> None:
            with self._lock:
                subs = self._subs.get(topic, [])
                if entry in subs:
                    subs.remove(entry)

        return unsubscribe

    def unsubscribe_node(self, node: str) -> int:
        """Remove every subscription held by ``node`` (it left the
        cluster); returns the number of subscriptions removed."""
        removed = 0
        with self._lock:
            for topic, subs in self._subs.items():
                kept = [(n, h) for n, h in subs if n != node]
                removed += len(subs) - len(kept)
                self._subs[topic] = kept
        return removed

    def publish(
        self,
        topic: str,
        sender: str,
        payload: Any,
        size: int = 0,
        control: bool = False,
    ) -> int:
        """Deliver to all subscribers except the sender; returns the
        number of successful deliveries.

        ``control=True`` marks liveness/heartbeat traffic: delivered (and
        subject to the drop filter) but neither logged nor counted in the
        traffic statistics, which stay an exact census of store/resize
        events.

        With a membership registry wired the message is stamped with the
        current epoch, and a sender the view marks ``dead``/``left`` is
        rejected outright — before the durable log, so a departed node's
        late stragglers can neither reach the new epoch's nodes nor be
        replayed into a future recovery.
        """
        epoch = -1
        mem = self.membership
        if mem is not None:
            # Read the view before taking the transport lock: the
            # membership table broadcasts through publish() and holds
            # its own lock while snapshotting.
            view = mem.view()
            if not view.routable(sender):
                with self._lock:
                    self.stats.stale_rejects += 1
                if self.tracer.enabled and not control:
                    self.tracer.instant(
                        "stale-reject", "transport", sender, "transport",
                        args={"topic": topic, "epoch": view.epoch},
                    )
                return 0
            epoch = view.epoch
        msg = Message(topic, sender, payload, size, epoch)
        with self._lock:
            if self._closed:
                raise TransportError("transport is closed")
            if not control and self._log is not None:
                self._log.append(msg)
            if sender in self._dropped:
                self.stats.drops += 1
                if self.tracer.enabled and not control:
                    self.tracer.instant(
                        "drop", "transport", sender, "transport",
                        args={"topic": topic},
                    )
                return 0
            targets = [
                (node, handler)
                for node, handler in self._subs.get(topic, ())
                if node != sender
            ]
        latency = (
            self.latency_per_message_us * 1e-6
            + size * self.latency_per_byte_ns * 1e-9
        )
        # Frame-timeline hop accounting: a store event crossing the bus
        # charges its frame's ``transport`` bucket for the delivery
        # fan-out.  The session is the topic's namespace prefix (the
        # multi-tenant separator), matching the stream drivers' keys.
        tl = self.timeline
        age = getattr(payload, "age", None) if tl is not None else None
        t_hop = time.perf_counter() if age is not None else 0.0
        delivered = 0
        for node, handler in targets:
            try:
                handler(msg)
            except Exception as exc:  # noqa: BLE001 - isolate subscribers
                with self._lock:
                    self.stats.delivery_errors += 1
                    if len(self.delivery_failures) < self.MAX_ERROR_DETAILS:
                        self.delivery_failures.append(
                            (topic, node, repr(exc))
                        )
                continue
            delivered += 1
            if not control:
                with self._lock:
                    self.stats.record(msg, node, latency)
        if age is not None and delivered:
            i = topic.find(".")
            session = topic[:i] if i > 0 else ""
            tl.span(session, age, "transport",
                    t_hop, time.perf_counter())
        return delivered

    def topics(self) -> list[str]:
        """Topics that currently have subscribers."""
        with self._lock:
            return sorted(t for t, s in self._subs.items() if s)

    def close(self) -> None:
        """Reject all further traffic and drop subscriptions."""
        with self._lock:
            self._closed = True
            self._subs.clear()
