"""Publish–subscribe message transport (paper, section IV).

"Data distribution, reporting, and other communication patterns is
achieved in P2G through an event-based, distributed publish-subscribe
model."

:class:`InProcTransport` is the in-process realization used by the
cluster simulation: topics are field names (plus control topics),
delivery is synchronous on the publisher's thread, and every message is
accounted (count + payload bytes per topic and per link) so experiments
can measure the inter-node traffic the HLS's partitioning decisions
produce.  An optional latency model charges simulated microseconds per
message + per byte without sleeping, for offline what-if analysis.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from ..core.errors import TransportError

__all__ = ["Message", "TransportStats", "InProcTransport"]


@dataclass(frozen=True)
class Message:
    """One published message."""

    topic: str
    sender: str
    payload: Any
    size: int = 0  #: accounted payload bytes (0 if unknown)


@dataclass
class TransportStats:
    """Accounting of everything that crossed the transport."""

    messages: int = 0
    bytes: int = 0
    per_topic: dict[str, int] = dc_field(default_factory=dict)
    per_link: dict[tuple[str, str], int] = dc_field(default_factory=dict)
    simulated_latency_s: float = 0.0

    def record(
        self, msg: Message, receiver: str, latency_s: float
    ) -> None:
        """Account one delivery (message count, bytes, per-topic/link)."""
        self.messages += 1
        self.bytes += msg.size
        self.per_topic[msg.topic] = self.per_topic.get(msg.topic, 0) + 1
        link = (msg.sender, receiver)
        self.per_link[link] = self.per_link.get(link, 0) + 1
        self.simulated_latency_s += latency_s


class InProcTransport:
    """Thread-safe in-process pub-sub with traffic accounting.

    Subscribers register as (node name, callback); publishing delivers to
    every subscriber of the topic except the sender (a node already has
    its own events locally).
    """

    def __init__(
        self,
        latency_per_message_us: float = 0.0,
        latency_per_byte_ns: float = 0.0,
    ) -> None:
        self._lock = threading.RLock()
        self._subs: dict[str, list[tuple[str, Callable[[Message], None]]]] = {}
        self.stats = TransportStats()
        self.latency_per_message_us = latency_per_message_us
        self.latency_per_byte_ns = latency_per_byte_ns
        self._closed = False

    def subscribe(
        self, topic: str, node: str, handler: Callable[[Message], None]
    ) -> Callable[[], None]:
        """Register ``handler`` for ``topic`` on behalf of ``node``;
        returns an unsubscribe callable."""
        with self._lock:
            if self._closed:
                raise TransportError("transport is closed")
            entry = (node, handler)
            self._subs.setdefault(topic, []).append(entry)

        def unsubscribe() -> None:
            with self._lock:
                subs = self._subs.get(topic, [])
                if entry in subs:
                    subs.remove(entry)

        return unsubscribe

    def publish(
        self, topic: str, sender: str, payload: Any, size: int = 0
    ) -> int:
        """Deliver to all subscribers except the sender; returns the
        number of deliveries."""
        with self._lock:
            if self._closed:
                raise TransportError("transport is closed")
            targets = [
                (node, handler)
                for node, handler in self._subs.get(topic, ())
                if node != sender
            ]
        msg = Message(topic, sender, payload, size)
        latency = (
            self.latency_per_message_us * 1e-6
            + size * self.latency_per_byte_ns * 1e-9
        )
        for node, handler in targets:
            with self._lock:
                self.stats.record(msg, node, latency)
            handler(msg)
        return len(targets)

    def topics(self) -> list[str]:
        """Topics that currently have subscribers."""
        with self._lock:
            return sorted(t for t, s in self._subs.items() if s)

    def close(self) -> None:
        """Reject all further traffic and drop subscriptions."""
        with self._lock:
            self._closed = True
            self._subs.clear()
