"""Heartbeat-based failure detection over the pub-sub transport.

Every execution node runs a :class:`Heartbeater` thread publishing a
liveness beacon on the control topic :data:`LIVENESS_TOPIC` at a
configurable interval.  The master side runs a :class:`HeartbeatMonitor`
subscribed to that topic; a node is declared failed when

* no beacon arrived within ``timeout`` seconds (crash or partition:
  ``kill`` and ``drop`` faults), or
* beacons keep arriving but the node's executed-instance count has been
  frozen while it holds runnable or in-flight work for longer than
  ``progress_timeout`` seconds (a wedged node: ``stall`` faults) —
  disabled by default, since a single long-running kernel body is
  indistinguishable from a stall below that horizon.

Beacons are *control* messages: delivered, but excluded from the
transport's traffic statistics and event log, so fault tolerance does
not perturb the store/resize accounting the HLS experiments measure.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.errors import TransportError
from ..obs import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.runtime import ExecutionNode
    from .faults import FaultInjector
    from .transport import InProcTransport, Message

__all__ = ["LIVENESS_TOPIC", "Heartbeat", "Heartbeater", "HeartbeatMonitor"]

#: Control topic carrying liveness beacons.
LIVENESS_TOPIC = "__liveness__"


@dataclass(frozen=True)
class Heartbeat:
    """One liveness beacon."""

    node: str
    seq: int
    executed: int  #: kernel instances completed so far
    busy: int  #: workers currently inside (or frozen at) an instance
    backlog: int  #: queued events + ready instances


class Heartbeater:
    """Publishes a node's liveness beacon at a fixed interval.

    When a :class:`~repro.dist.faults.FaultInjector` is given, beacons
    stop once a ``kill`` fault fired for the node (a dead process sends
    nothing) while ``stall``-faulted nodes keep beating — that asymmetry
    is exactly what lets the monitor tell the two apart.
    """

    def __init__(
        self,
        node: "ExecutionNode",
        transport: "InProcTransport",
        interval: float,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.node = node
        self.transport = transport
        self.interval = interval
        self.injector = injector
        self._seq = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"{node.name}-heartbeat"
        )

    def start(self) -> None:
        """Start beating."""
        self._thread.start()

    def stop(self) -> None:
        """Stop beating (idempotent; does not join the thread)."""
        self._stop.set()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            name = self.node.name
            if self.injector is not None and (
                self.injector.heartbeats_suppressed(name)
            ):
                continue
            self._seq += 1
            captive = (
                self.injector.captive_count(name)
                if self.injector is not None
                else 0
            )
            beat = Heartbeat(
                node=name,
                seq=self._seq,
                executed=self.node.instrumentation.total_instances(),
                busy=len(self.node._running_ages) + captive,
                backlog=self.node.backlog(),
            )
            try:
                self.transport.publish(
                    LIVENESS_TOPIC, name, beat, control=True
                )
            except TransportError:
                return  # transport closed: the run is over
            tr = self.node.tracer
            if tr.enabled:
                tr.instant(
                    "heartbeat", "heartbeat", name, "heartbeat",
                    args={
                        "seq": beat.seq,
                        "executed": beat.executed,
                        "busy": beat.busy,
                        "backlog": beat.backlog,
                    },
                )


class HeartbeatMonitor:
    """The master's failure detector.

    Passive: heartbeats update per-node health under a lock; the
    recovery manager polls :meth:`check` for newly failed nodes.  Each
    node is reported failed at most once (it is then unwatched — a
    replacement registers under a fresh name).
    """

    #: Subscriber identity on the liveness topic.
    MONITOR_NAME = "__monitor__"

    def __init__(
        self,
        transport: "InProcTransport",
        timeout: float,
        progress_timeout: float | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if timeout <= 0:
            raise ValueError("heartbeat timeout must be positive")
        self.timeout = timeout
        self.progress_timeout = progress_timeout
        self.tracer = tracer
        self._lock = threading.Lock()
        self._health: dict[str, _Health] = {}
        self._failed: dict[str, str] = {}  # node -> failure reason
        self._unsubscribe = transport.subscribe(
            LIVENESS_TOPIC, self.MONITOR_NAME, self._on_beat
        )

    def watch(self, name: str) -> None:
        """Start tracking ``name``; the timeout clock starts now."""
        now = time.monotonic()
        with self._lock:
            self._health[name] = _Health(last_seen=now, last_progress=now)

    def unwatch(self, name: str) -> None:
        """Stop tracking ``name`` (it was recovered or wound down)."""
        with self._lock:
            self._health.pop(name, None)

    def mark_draining(self, name: str) -> None:
        """Expected departure: ``name`` is being drained on purpose.

        A draining node goes silent the moment its fence stops the
        heartbeater — without this grace state the monitor would declare
        it failed and the recovery manager would resurrect a node the
        cluster just decided to remove.  Draining nodes are exempt from
        both silence and stall detection until :meth:`unwatch` (clean
        drain completed) or :meth:`resume_watch` (drain aborted).
        """
        with self._lock:
            h = self._health.get(name)
            if h is not None:
                h.draining = True

    def resume_watch(self, name: str) -> None:
        """Lift a :meth:`mark_draining` grace (drain aborted); the
        timeout clock restarts now."""
        now = time.monotonic()
        with self._lock:
            h = self._health.get(name)
            if h is not None:
                h.draining = False
                h.last_seen = now
                h.last_progress = now

    def draining(self) -> list[str]:
        """Nodes currently in the expected-departure grace state."""
        with self._lock:
            return sorted(n for n, h in self._health.items() if h.draining)

    def watched(self) -> list[str]:
        """Currently tracked node names."""
        with self._lock:
            return sorted(self._health)

    def failures(self) -> dict[str, str]:
        """Every node ever declared failed, with the detection reason."""
        with self._lock:
            return dict(self._failed)

    def _on_beat(self, msg: "Message") -> None:
        beat: Heartbeat = msg.payload
        now = time.monotonic()
        with self._lock:
            h = self._health.get(beat.node)
            if h is None:
                return
            h.last_seen = now
            if beat.executed > h.executed or (
                beat.backlog == 0 and beat.busy == 0
            ):
                # Work retired, or genuinely idle: both are progress.
                h.last_progress = now
            h.executed = beat.executed
            h.busy = beat.busy
            h.backlog = beat.backlog

    def check(self) -> list[str]:
        """Nodes newly declared failed since the last call.

        A reported node is moved to the failed set and no longer
        watched; the caller owns its recovery.
        """
        now = time.monotonic()
        out: list[str] = []
        detected: list[tuple[str, str, str]] = []  # (event, node, reason)
        with self._lock:
            for name, h in list(self._health.items()):
                if h.draining:
                    continue  # expected departure: silence is planned
                if now - h.last_seen > self.timeout:
                    event = "heartbeat-silence"
                    reason = (
                        f"no heartbeat for {now - h.last_seen:.3f}s "
                        f"(timeout {self.timeout}s)"
                    )
                elif (
                    self.progress_timeout is not None
                    and (h.backlog > 0 or h.busy > 0)
                    and now - h.last_progress > self.progress_timeout
                ):
                    event = "progress-stall"
                    reason = (
                        f"no progress for {now - h.last_progress:.3f}s "
                        f"with backlog {h.backlog} and {h.busy} busy "
                        f"worker(s) (stall timeout {self.progress_timeout}s)"
                    )
                else:
                    continue
                del self._health[name]
                self._failed[name] = reason
                out.append(name)
                detected.append((event, name, reason))
        if self.tracer.enabled:
            for event, name, reason in detected:
                self.tracer.instant(
                    event, "failure", "master", "monitor",
                    args={"node": name, "reason": reason}, scope="g",
                )
        return out

    def close(self) -> None:
        """Unsubscribe from the liveness topic."""
        self._unsubscribe()


class _Health:
    """Mutable per-node liveness record."""

    __slots__ = (
        "last_seen", "last_progress", "executed", "busy", "backlog",
        "draining",
    )

    def __init__(self, last_seen: float, last_progress: float) -> None:
        self.last_seen = last_seen
        self.last_progress = last_progress
        self.executed = 0
        self.busy = 0
        self.backlog = 0
        self.draining = False
