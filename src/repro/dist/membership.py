"""Dynamic cluster membership and load-driven elasticity.

The paper's master assumes a fixed node set; this module removes that
assumption.  A :class:`MembershipTable`, owned by the master side of a
cluster run, tracks every node's lifecycle state

    ``joining -> active -> draining -> left``  (planned scale-in/out)
    ``joining | active -> dead``               (failure detector)

and stamps each transition with a monotonically increasing **epoch**.
Immutable :class:`MembershipView` snapshots are broadcast on the
:data:`MEMBERSHIP_TOPIC` control topic so every consumer — the
transport's routing filter, the heartbeat monitor, telemetry — observes
the same versioned node set instead of a frozen list.

Scale decisions come from an :class:`ElasticityDriver`, a sibling of
:class:`~repro.core.adaptation.AdaptationDriver`: it polls live signals
(ready-queue depth per worker, per-tenant SLO burn from
:mod:`repro.obs.slo`, or a time trigger for deterministic smoke tests)
and asks the cluster to rescale.  The migration itself is two-phase —
``scale.plan`` announces the intent, the PR 2 fence/repartition/replay
path moves the kernels, ``scale.commit`` flips the epoch — so no new
state-movement mechanism exists: a planned join or drain travels the
exact machinery a node failure already exercises.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Callable, Mapping

__all__ = [
    "MEMBERSHIP_TOPIC",
    "NODE_STATES",
    "MembershipView",
    "MembershipTable",
    "ElasticityConfig",
    "ElasticityDriver",
]

#: Control topic carrying membership-view broadcasts.
MEMBERSHIP_TOPIC = "__membership__"

#: Legal node lifecycle states, in rough lifecycle order.
NODE_STATES = ("joining", "active", "draining", "dead", "left")

#: Allowed state transitions (from -> to).  ``joining`` may be entered
#: from nothing (that is :meth:`MembershipTable.add`'s job).
_TRANSITIONS = {
    "joining": ("active", "dead", "left"),
    "active": ("draining", "dead"),
    "draining": ("left", "dead"),
    "dead": (),
    "left": (),
}

#: States whose traffic the transport still routes.  A draining node
#: keeps sending until its fence completes; dead and departed nodes are
#: rejected (late deliveries across an epoch boundary).
_ROUTABLE = frozenset({"joining", "active", "draining"})


@dataclass(frozen=True)
class MembershipView:
    """Immutable epoch-stamped snapshot of the cluster's node set."""

    epoch: int
    states: Mapping[str, str]

    def state(self, node: str) -> str | None:
        """Lifecycle state of ``node`` (``None`` if never a member)."""
        return self.states.get(node)

    def active(self) -> tuple[str, ...]:
        """Nodes currently in the ``active`` state, sorted."""
        return tuple(
            sorted(n for n, s in self.states.items() if s == "active")
        )

    def live(self) -> tuple[str, ...]:
        """Nodes that may still run work (active or draining), sorted."""
        return tuple(
            sorted(
                n for n, s in self.states.items()
                if s in ("active", "draining")
            )
        )

    def routable(self, sender: str) -> bool:
        """Whether the transport should deliver ``sender``'s traffic.

        Unknown senders (the master, stream sources, monitors — control
        endpoints that never join the membership) are always routable;
        only an explicit ``dead`` or ``left`` state rejects.
        """
        state = self.states.get(sender)
        return state is None or state in _ROUTABLE

    def as_dict(self) -> dict:
        """JSON-ready view (the ``/membership.json`` telemetry page)."""
        return {
            "epoch": self.epoch,
            "nodes": dict(sorted(self.states.items())),
            "active": list(self.active()),
        }


class MembershipTable:
    """The master-owned, versioned membership registry.

    Every mutation bumps the epoch and (when a ``publish`` callback is
    wired) broadcasts the fresh :class:`MembershipView`.  The table also
    keeps the full transition history — the trace artifact CI uploads
    when an elastic run fails.
    """

    def __init__(
        self,
        publish: "Callable[[MembershipView], None] | None" = None,
    ) -> None:
        self._lock = threading.Lock()
        self._states: dict[str, str] = {}
        self._epoch = 0
        self._publish = publish
        #: (epoch, node, state) per transition, in order.
        self.history: list[tuple[int, str, str]] = []

    def set_publish(
        self, publish: "Callable[[MembershipView], None] | None"
    ) -> None:
        """Wire (or unwire) the view broadcast callback.

        Construction-time admissions happen before a transport exists;
        an elastic run attaches the broadcast here, after which every
        transition publishes its fresh view.
        """
        self._publish = publish

    # -- mutation ------------------------------------------------------
    def add(self, node: str, state: str = "active") -> MembershipView:
        """Admit ``node`` in ``state`` (default straight to active —
        the static-membership construction path)."""
        if state not in NODE_STATES:
            raise ValueError(f"unknown membership state {state!r}")
        with self._lock:
            if self._states.get(node) in _ROUTABLE:
                raise ValueError(f"node {node!r} is already a member")
            view = self._set_locked(node, state)
        self._notify(view)
        return view

    def transition(self, node: str, state: str) -> MembershipView:
        """Move ``node`` to ``state``, enforcing the lifecycle order."""
        if state not in NODE_STATES:
            raise ValueError(f"unknown membership state {state!r}")
        with self._lock:
            current = self._states.get(node)
            if current is None:
                raise ValueError(f"node {node!r} is not a member")
            if state != current and state not in _TRANSITIONS[current]:
                raise ValueError(
                    f"illegal membership transition for {node!r}: "
                    f"{current} -> {state}"
                )
            if state == current:
                return self._view_locked()
            view = self._set_locked(node, state)
        self._notify(view)
        return view

    def _set_locked(self, node: str, state: str) -> MembershipView:
        self._states[node] = state
        self._epoch += 1
        self.history.append((self._epoch, node, state))
        return self._view_locked()

    def _notify(self, view: MembershipView) -> None:
        # Broadcast outside the table lock: the publish callback walks
        # the transport (its own lock), and the transport's routing
        # filter calls back into :meth:`view` — publishing under the
        # lock would order the two locks both ways.
        publish = self._publish
        if publish is not None:
            publish(view)

    # -- queries -------------------------------------------------------
    def _view_locked(self) -> MembershipView:
        return MembershipView(self._epoch, dict(self._states))

    def view(self) -> MembershipView:
        """Current immutable snapshot."""
        with self._lock:
            return self._view_locked()

    @property
    def epoch(self) -> int:
        """Current membership epoch."""
        with self._lock:
            return self._epoch

    def state(self, node: str) -> str | None:
        """Current state of ``node`` (``None`` if never admitted)."""
        with self._lock:
            return self._states.get(node)

    def as_dict(self) -> dict:
        """JSON-ready snapshot including the transition history tail."""
        with self._lock:
            doc = self._view_locked().as_dict()
            doc["history"] = [
                {"epoch": e, "node": n, "state": s}
                for e, n, s in self.history[-100:]
            ]
            return doc


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ElasticityConfig:
    """Tuning of the elasticity driver.

    The driver scales the cluster toward a node count justified by the
    observed load.  ``scale_at``/``target_nodes`` add a deterministic
    time trigger (the CI smoke tests and the CLI's ``--scale-at``): at
    ``scale_at`` seconds on the run clock the cluster is rescaled to
    ``target_nodes`` regardless of load.
    """

    interval: float = 0.2  #: polling period (s)
    #: Mean ready-queue depth per worker above which a scale-out is
    #: justified (the queues are not draining).
    queue_high: float = 4.0
    #: Mean ready-queue depth per worker below which a scale-in of
    #: planned-but-unneeded capacity is justified.
    queue_low: float = 0.25
    #: SLO burn rate (from :class:`~repro.obs.slo.SloTracker`) above
    #: which a scale-out is justified even with shallow queues.
    burn_high: float = 1.0
    #: Minimum seconds between issued scale actions.
    cooldown: float = 1.0
    #: Upper bound on the node count the driver may scale to.
    max_nodes: int = 8
    #: Lower bound on the node count the driver may scale to.
    min_nodes: int = 1
    #: Deterministic trigger: at ``scale_at`` seconds, rescale to
    #: ``target_nodes``.  ``None`` disables the trigger.
    scale_at: float | None = None
    target_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if (self.scale_at is None) != (self.target_nodes is None):
            raise ValueError(
                "scale_at and target_nodes must be set together"
            )


class ElasticityDriver:
    """Polls live load signals and issues scale decisions.

    Composed like :class:`~repro.core.adaptation.AdaptationDriver` from
    callables, so the policy is unit-testable without a cluster:

    ``metrics_fn()``
        returns a dict with ``nodes`` (current active node count),
        ``queue_per_worker`` (mean ready-queue depth per worker),
        ``burn`` (worst per-tenant SLO burn rate, 0 when untracked) and
        ``elapsed`` (seconds on the run clock);
    ``scale_fn(target)``
        rescales the cluster to ``target`` nodes, returning ``True``
        when a migration was actually performed.

    :meth:`poll_once` is public so tests drive decisions
    deterministically; :meth:`start` runs the same poll on a daemon
    thread.
    """

    def __init__(
        self,
        config: ElasticityConfig,
        *,
        metrics_fn: Callable[[], dict],
        scale_fn: Callable[[int], bool],
        name: str = "master-elastic",
    ) -> None:
        self.config = config
        self._metrics_fn = metrics_fn
        self._scale_fn = scale_fn
        self.name = name
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_action = -float("inf")
        self._time_trigger_fired = False
        #: (elapsed, current, target, reason) per issued action.
        self.actions: list[tuple[float, int, int, str]] = []

    # -- decision ------------------------------------------------------
    def _desired(self, sample: Mapping) -> tuple[int, str] | None:
        """The node count the sample justifies, or ``None`` for no-op."""
        cfg = self.config
        current = int(sample["nodes"])
        if (
            cfg.scale_at is not None
            and not self._time_trigger_fired
            and float(sample.get("elapsed", 0.0)) >= cfg.scale_at
        ):
            target = max(cfg.min_nodes, min(cfg.max_nodes,
                                            int(cfg.target_nodes)))
            if target != current:
                return target, f"time-trigger@{cfg.scale_at:g}s"
            self._time_trigger_fired = True
            return None
        depth = float(sample.get("queue_per_worker", 0.0))
        burn = float(sample.get("burn", 0.0))
        if (depth > cfg.queue_high or burn > cfg.burn_high) and \
                current < cfg.max_nodes:
            why = (f"queue {depth:.1f}/worker" if depth > cfg.queue_high
                   else f"slo burn {burn:.2f}")
            return current + 1, why
        if depth < cfg.queue_low and burn <= cfg.burn_high and \
                current > cfg.min_nodes:
            return current - 1, f"queue {depth:.2f}/worker idle"
        return None

    def poll_once(self) -> bool:
        """One decision round; returns ``True`` when a scale action was
        issued (and performed)."""
        sample = self._metrics_fn()
        now = float(sample.get("elapsed", time.monotonic()))
        decision = self._desired(sample)
        if decision is None:
            return False
        target, reason = decision
        if now - self._last_action < self.config.cooldown:
            return False
        if not self._scale_fn(target):
            return False
        self._last_action = now
        if reason.startswith("time-trigger"):
            self._time_trigger_fired = True
        self.actions.append((now, int(sample["nodes"]), target, reason))
        return True

    # -- lifecycle -----------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - a failed poll must not
                continue       # kill the driver thread mid-run

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=self.name
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the polling thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
