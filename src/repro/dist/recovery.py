"""Node-failure recovery for cluster runs.

Ties the pieces together: the :class:`~repro.dist.heartbeat
.HeartbeatMonitor` detects a dead or wedged node; the
:class:`RecoveryManager` fences it (unsubscribe, wind down, reclaim its
outstanding work), updates the master's topology, and — within a bounded
per-node restart budget with exponential backoff — spawns a replacement
node that re-executes the dead node's kernels:

1. the victim's frozen in-flight instances are re-enqueued directly
   (:func:`repro.core.scheduler.reenqueue`);
2. the transport's event log is replayed into the replacement's
   analyzer, reconstructing the store history the victim had observed —
   including events the victim itself published (needed after a
   ``drop`` partition, where *other* nodes missed them too: recovery
   skip-stores re-announce every region);
3. write-once determinism makes re-execution safe: any region the
   victim already committed is skipped byte-identically, anything it
   never committed is produced for the first time.

Throughout the detection→replacement window the manager holds a token
on the cluster's shared work counter, so global quiescence cannot be
(falsely) observed while kernels are owned by no live node.  When the
restart budget is exhausted, or no registered node survives to host the
kernels, the run is aborted with
:class:`~repro.core.errors.NodeFailureError`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.errors import NodeFailureError
from ..core.events import WorkToken
from ..core.scheduler import reenqueue
from ..obs import MetricsRegistry, NULL_TRACER, Tracer
from .topology import LocalTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.runtime import ExecutionNode, WorkCounter
    from .faults import FaultInjector
    from .heartbeat import Heartbeater, HeartbeatMonitor
    from .master import MasterNode
    from .transport import InProcTransport

__all__ = [
    "RecoveryConfig",
    "RecoveryRecord",
    "RecoveryManager",
    "fence_node",
]


@dataclass(frozen=True)
class RecoveryConfig:
    """Tuning of failure detection and recovery."""

    heartbeat_interval: float = 0.02  #: beacon period per node (s)
    heartbeat_timeout: float = 0.25  #: silence before a node is dead (s)
    #: Stall horizon: frozen progress with pending work for this long
    #: marks a live node failed.  ``None`` disables stall detection
    #: (a long kernel body is indistinguishable below this horizon).
    progress_timeout: float | None = None
    max_restarts: int = 2  #: per-node replacement budget
    backoff_base: float = 0.01  #: attempt n sleeps base * 2**(n-1) (s)
    poll_interval: float = 0.01  #: monitor polling period (s)

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed node recovery."""

    failed: str  #: name of the node that died
    replacement: str  #: name of the node that took over
    host: str  #: surviving node chosen to host the replacement
    attempt: int  #: 1-based restart attempt for the base node
    reason: str  #: what the failure detector observed
    abandoned: int  #: in-flight instances the victim never ran
    reenqueued: int  #: instances re-enqueued directly on the replacement
    replayed: int  #: transport-log events replayed into its analyzer
    recovery_s: float  #: detection-to-replacement wall seconds


def _base_name(name: str) -> str:
    """``node1~2`` → ``node1`` (restart attempts share one budget)."""
    return name.split("~", 1)[0]


def fence_node(
    node: "ExecutionNode",
    transport: "InProcTransport",
    *,
    heartbeater: "Heartbeater | None" = None,
    injector: "FaultInjector | None" = None,
    tracer: Tracer = NULL_TRACER,
    reason: str = "departing",
) -> int:
    """Fence a node out of the cluster and reclaim its work.

    The one mechanism behind both *unplanned* departure (the recovery
    manager fencing a node the failure detector declared dead) and
    *planned* departure (an elastic migration draining a node whose
    kernels move elsewhere): stop its heartbeat, cut every transport
    subscription it holds (no deliveries to it, and its own late
    publishes are already membership-rejected), wind it down fail-stop
    and retire its outstanding work units.  Returns the number of
    abandoned instances the successor must re-execute (via event-log
    replay — write-once determinism makes the re-execution
    byte-identical).
    """
    name = node.name
    if injector is not None:
        # Any fault token bridging fire->detection is redundant once the
        # caller holds its own quiescence token for the fence window.
        injector.release_token(name)
    if heartbeater is not None:
        heartbeater.stop()
    transport.unsubscribe_node(name)
    abandoned = node.wind_down()
    if tracer.enabled:
        tracer.instant(
            "fencing", "recovery", "master", "recovery",
            args={"node": name, "abandoned": abandoned,
                  "reason": reason}, scope="g",
        )
    return abandoned


class RecoveryManager:
    """Watches the failure detector and replaces dead nodes.

    Runs its own daemon thread; the cluster run blocks on the shared
    work counter, so detection and replacement proceed concurrently with
    the surviving nodes' execution.  On an unrecoverable failure the
    manager records the error, pokes the shared counter to unblock every
    waiter, and stops — the cluster re-raises :attr:`error`.
    """

    def __init__(
        self,
        *,
        master: "MasterNode",
        transport: "InProcTransport",
        counter: "WorkCounter",
        monitor: "HeartbeatMonitor",
        config: RecoveryConfig,
        nodes: dict[str, "ExecutionNode"],
        heartbeaters: dict[str, "Heartbeater"],
        spawn: Callable[["ExecutionNode", str], "ExecutionNode"],
        injector: "FaultInjector | None" = None,
        tracer: Tracer = NULL_TRACER,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._master = master
        self._transport = transport
        self._counter = counter
        self._monitor = monitor
        self._config = config
        self._nodes = nodes  # live node name -> ExecutionNode
        self._heartbeaters = heartbeaters
        self._spawn = spawn
        self._injector = injector
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._attempts: dict[str, int] = {}  # base name -> restarts used
        self._history: list[tuple[str, int]] = []  # (node, attempt)
        self.records: list[RecoveryRecord] = []
        self.error: BaseException | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="recovery-manager"
        )

    def start(self) -> None:
        """Start the detection/recovery thread."""
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and wait for it to exit."""
        self._stop.set()
        self._thread.join()

    def _loop(self) -> None:
        while not self._stop.wait(self._config.poll_interval):
            for name in self._monitor.check():
                try:
                    self._handle_failure(name)
                except BaseException as exc:  # noqa: BLE001 - surfaced
                    self.error = exc
                    if self._injector is not None:
                        self._injector.drain_tokens()
                    self._counter.poke()
                    return

    # ------------------------------------------------------------------
    def _handle_failure(self, name: str) -> None:
        node = self._nodes.pop(name, None)
        if node is None:
            return
        t0 = time.monotonic()
        tr_t0 = self.tracer.now()  # span times must use the tracer's clock
        reason = self._monitor.failures().get(name, "unknown")
        self.metrics.counter("recovery.node_failures").inc()
        # Recovery token: keeps the shared counter nonzero for the whole
        # window in which the dead node's kernels have no owner.
        with WorkToken(self._counter, label=f"recover:{name}"):
            hb = self._heartbeaters.pop(name, None)
            # Fence the victim: no deliveries to it, no deliveries from
            # it, outstanding work reclaimed.
            abandoned = fence_node(
                node, self._transport,
                heartbeater=hb,
                injector=self._injector,
                tracer=self.tracer,
                reason=reason,
            )
            captive = (
                self._injector.captive_instances(name)
                if self._injector is not None
                else []
            )
            base = _base_name(name)
            attempt = self._attempts.get(base, 0) + 1
            self._attempts[base] = attempt
            self._history.append((name, attempt))
            topo = self._master.on_failure(name)
            if attempt > self._config.max_restarts:
                raise NodeFailureError(
                    f"node {name!r} failed ({reason}) and the restart "
                    f"budget for {base!r} is exhausted "
                    f"({self._config.max_restarts} restart(s))",
                    failures=list(self._history),
                )
            host = self._master.select_host()
            if host is None:
                raise NodeFailureError(
                    f"node {name!r} failed ({reason}) and no registered "
                    f"node survives to host its kernels",
                    failures=list(self._history),
                )
            backoff = self._config.backoff_base * (2 ** (attempt - 1))
            if backoff > 0:
                time.sleep(backoff)
            repl_name = f"{base}~{attempt}"
            self._master.register(
                LocalTopology(repl_name, topo.processors)
            )
            repl = self._spawn(node, repl_name)
            n_re = reenqueue(repl, captive)
            topics = {
                f.field
                for k in repl.program.kernels.values()
                for f in k.fetches
            }
            replayed = 0
            for msg in self._transport.replay(topics):
                repl.inject(msg.payload)
                replayed += 1
            self._nodes[repl_name] = repl
            recovery_s = time.monotonic() - t0
            repl.instrumentation.record_failure(
                attempt, recovery_s, replayed
            )
            self.metrics.counter("recovery.reenqueued").inc(n_re)
            self.metrics.counter("recovery.replayed").inc(replayed)
            self.metrics.histogram("recovery.recovery_s").observe(recovery_s)
            if self.tracer.enabled:
                self.tracer.instant(
                    "replay", "recovery", "master", "recovery",
                    args={"replacement": repl_name, "replayed": replayed},
                )
                self.tracer.instant(
                    "re-execution", "recovery", "master", "recovery",
                    args={"failed": name, "replacement": repl_name,
                          "host": host, "attempt": attempt,
                          "reenqueued": n_re}, scope="g",
                )
                self.tracer.complete(
                    f"recover:{name}", "recovery", "master", "recovery",
                    tr_t0, self.tracer.now(),
                    args={"replacement": repl_name, "reason": reason},
                )
            self.records.append(
                RecoveryRecord(
                    failed=name,
                    replacement=repl_name,
                    host=host,
                    attempt=attempt,
                    reason=reason,
                    abandoned=abandoned,
                    reenqueued=n_re,
                    replayed=replayed,
                    recovery_s=recovery_s,
                )
            )
