"""The distributed layer: master node, topology, HLS, transport.

Implements the architecture of the paper's section IV (figure 1): an
arbitrary number of *execution nodes* report their local topology to a
*master node*, which merges them into a global topology; the master's
**high-level scheduler (HLS)** partitions the program's final implicit
static dependency graph — optionally weighted with instrumentation data
— across the nodes, and can *repartition* as profiles or the topology
change.  Inter-node communication is "an event-based, distributed
publish-subscribe model", provided here by
:class:`~repro.dist.transport.InProcTransport`.

The paper evaluates a single execution node and leaves multi-machine
deployment as future work; this package completes the design in-process:
:class:`~repro.dist.cluster.Cluster` runs one program across several
:class:`~repro.core.ExecutionNode` instances (each with its own analyzer
and workers) that share write-once fields and forward store events over
the transport, with per-edge traffic accounting the HLS minimizes.
"""

from .cluster import Cluster, ClusterResult
from .faults import FaultInjector, FaultSchedule, FaultSpec
from .heartbeat import (
    LIVENESS_TOPIC,
    Heartbeat,
    Heartbeater,
    HeartbeatMonitor,
)
from .master import MasterNode, WorkloadAssignment
from .membership import (
    MEMBERSHIP_TOPIC,
    ElasticityConfig,
    ElasticityDriver,
    MembershipTable,
    MembershipView,
)
from .partition import (
    Partition,
    greedy_partition,
    incremental_partition,
    kernighan_lin,
    partition_graph,
    tabu_search,
)
from .recovery import (
    RecoveryConfig,
    RecoveryManager,
    RecoveryRecord,
    fence_node,
)
from .topology import GlobalTopology, LocalTopology, ProcessorSpec
from .transport import InProcTransport, Message, TransportStats

__all__ = [
    "Cluster",
    "ClusterResult",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "GlobalTopology",
    "Heartbeat",
    "Heartbeater",
    "HeartbeatMonitor",
    "InProcTransport",
    "LIVENESS_TOPIC",
    "LocalTopology",
    "MEMBERSHIP_TOPIC",
    "ElasticityConfig",
    "ElasticityDriver",
    "MasterNode",
    "MembershipTable",
    "MembershipView",
    "Message",
    "Partition",
    "ProcessorSpec",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryRecord",
    "TransportStats",
    "WorkloadAssignment",
    "fence_node",
    "greedy_partition",
    "incremental_partition",
    "kernighan_lin",
    "partition_graph",
    "tabu_search",
]
