"""A multi-node P2G cluster, in process.

Completes the paper's figure-1 architecture: a master node plans a
kernel→node assignment (HLS), then each execution node runs *its*
kernels with its own dependency analyzer and worker threads.  Nodes
share the program's write-once fields (each kernel — and therefore each
store region — lives on exactly one node, so write-once semantics hold
globally) and forward their store/resize events over the
publish–subscribe transport to every node that fetches the stored field;
quiescence is detected cluster-wide through a shared
:class:`~repro.core.WorkCounter`.

The transport's traffic statistics expose exactly what the HLS's
partitioning objective minimizes: events crossing node boundaries.
A partition that keeps a pipeline on one node moves almost nothing; a
bad partition pays per store.

Fault tolerance is opt-in: passing ``faults`` (a
:class:`~repro.dist.faults.FaultInjector`) or ``recovery`` (a
:class:`~repro.dist.recovery.RecoveryConfig`) to :meth:`Cluster.run`
enables the transport event log, per-node heartbeats, a failure monitor
and a :class:`~repro.dist.recovery.RecoveryManager` that replaces dead
nodes mid-run.  Without them, nothing changes: no control traffic, no
log, byte-for-byte the original execution path.

Elasticity is likewise opt-in (``elastic=``): the node set becomes a
versioned :class:`~repro.dist.membership.MembershipTable` instead of a
frozen list, and :meth:`Cluster.add_node` / :meth:`Cluster.drain_node`
rescale a *running* cluster.  A migration is two-phase — ``scale.plan``
announces the intent, then every node whose kernel set changes under
the incrementally repartitioned assignment is fenced (the PR 2 recovery
fence, generalized from "dead" to "departing") and a successor is built
that replays the transport event log; ``scale.commit`` flips the
membership epoch.  Write-once determinism makes the re-execution
byte-identical, and a shared-counter token pins the run across the
whole window so no node can observe a false global quiescence while
kernels are owned by nobody.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Mapping

from ..core import (
    ExecutionNode,
    Program,
    RunResult,
    WorkCounter,
)
from ..core.adaptation import AdaptationConfig, AdaptationDriver
from ..core.deadlines import TimerSet
from ..core.errors import PartitionError, SchedulerError
from ..core.events import ResizeEvent, StoreEvent, WorkToken
from ..core.fields import FieldStore
from ..core.instrumentation import Instrumentation, KernelStats
from ..core.runtime import _resolve_telemetry
from ..core.scheduler import apply_decisions, decision_kernels
from ..obs import MetricsRegistry, NULL_TRACER, Tracer, dump_flight
from .faults import FaultInjector
from .heartbeat import Heartbeater, HeartbeatMonitor
from .master import MasterNode, WorkloadAssignment
from .membership import (
    MEMBERSHIP_TOPIC,
    ElasticityConfig,
    ElasticityDriver,
    MembershipTable,
)
from .recovery import (
    RecoveryConfig,
    RecoveryManager,
    RecoveryRecord,
    _base_name,
    fence_node,
)
from .topology import LocalTopology, ProcessorSpec
from .transport import InProcTransport, TransportStats

__all__ = ["Cluster", "ClusterResult", "MigrationRecord"]


@dataclass(frozen=True)
class MigrationRecord:
    """One completed elastic migration (join, drain or rebalance)."""

    reason: str  #: what triggered the rescale
    epoch: int  #: membership epoch after the commit
    moved_kernels: int  #: kernels whose owner changed
    fenced: tuple[str, ...]  #: live nodes wound down
    built: tuple[str, ...]  #: successor nodes started
    replayed: int  #: event-log messages replayed into successors
    migration_s: float  #: plan-to-commit wall seconds


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    assignment: WorkloadAssignment
    node_results: dict[str, RunResult]
    transport: TransportStats
    wall_time: float
    fields: FieldStore
    recoveries: list[RecoveryRecord] = dc_field(default_factory=list)
    metrics: "MetricsRegistry | None" = None
    tracer: "Tracer | None" = None  #: set when tracing was enabled
    #: StreamReport when the run was live (``stream=``), or a
    #: MultitenantReport when it was multi-session (``sessions=``).
    stream: Any = None
    #: :class:`~repro.obs.Telemetry` facade when the run was launched
    #: with ``telemetry=`` (frame timelines, SLO tracker, exporter).
    telemetry: Any = None
    #: Elastic runs: migrations performed, in order.
    migrations: list[MigrationRecord] = dc_field(default_factory=list)
    #: Elastic runs: final membership snapshot (``as_dict()`` form).
    membership: dict | None = None

    @property
    def replans(self) -> list:
        """Every node's applied mid-run re-bindings (local ones first,
        then the producers-only remote mirrors)."""
        out = [
            rec
            for r in self.node_results.values()
            for rec in r.replans
            if not rec.remote
        ]
        out += [
            rec
            for r in self.node_results.values()
            for rec in r.replans
            if rec.remote
        ]
        return out

    @property
    def instrumentation(self) -> Instrumentation:
        """All nodes' instrumentation merged into one collector."""
        merged = Instrumentation()
        for r in self.node_results.values():
            merged = merged.merged(r.instrumentation)
        return merged

    @property
    def reason(self) -> str:
        """Aggregate outcome: idle only if every node went idle."""
        reasons = {r.reason for r in self.node_results.values()}
        if reasons == {"idle"}:
            return "idle"
        return "timeout" if "timeout" in reasons else "stopped"

    def cross_node_messages(self) -> int:
        """Store/resize events that crossed node boundaries."""
        return self.transport.messages


class _OutputDedup:
    """Idempotent wrapper around a program's output handler.

    A replacement node re-executes the victim's kernels; their stores
    are skipped byte-identically (write-once), but out-of-band
    ``ctx.output`` values would reach the handler a second time.  Keyed
    by (kernel, age, index, key), only the first delivery goes through.
    """

    def __init__(self, handler) -> None:
        self._handler = handler
        self._lock = threading.Lock()
        self._seen: set = set()

    @staticmethod
    def _freeze(index: Any) -> Any:
        if isinstance(index, dict):
            return tuple(sorted(index.items()))
        return index

    def __call__(self, kernel, age, index, key, value) -> None:
        k = (kernel, age, self._freeze(index), key)
        with self._lock:
            if k in self._seen:
                return
            self._seen.add(k)
        self._handler(kernel, age, index, key, value)


class _RunState:
    """Mutable state of one :meth:`Cluster.run` invocation.

    Hoisted from ``run()``'s local variables onto the cluster instance
    so the elastic membership operations (:meth:`Cluster.add_node`,
    :meth:`Cluster.drain_node`) can fence, rebuild and rewire nodes
    while the run is in flight.
    """

    def __init__(self) -> None:
        self.running = False
        self.assignment: WorkloadAssignment | None = None
        self.exec_nodes: dict[str, ExecutionNode] = {}
        self.results: dict[str, RunResult] = {}
        self.errors: list[BaseException] = []
        self.lock = threading.Lock()
        self.heartbeaters: dict[str, Heartbeater] = {}
        self.extra_threads: list[threading.Thread] = []
        self.extra_lock = threading.Lock()
        self.monitor: HeartbeatMonitor | None = None
        self.manager: RecoveryManager | None = None
        self.session_drivers: dict[str, Any] = {}
        self.live_drivers: list = []
        self.migrations: list[MigrationRecord] = []
        self.migration_seq = 0
        self.counter: WorkCounter | None = None
        self.fields: FieldStore | None = None
        self.faults: FaultInjector | None = None
        self.recovery: RecoveryConfig | None = None
        self.ft = False
        self.elastic = False
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry | None = None
        self.tel = None
        self.timeout: float | None = None
        self.stall_timeout: float | None = None
        self.t0_mono = 0.0
        # Closures bound by run() (they capture per-run wiring):
        self.build: Callable[..., ExecutionNode] | None = None
        self.drive: Callable[[str, ExecutionNode, str], None] | None = None


class Cluster:
    """Runs one program across several in-process execution nodes.

    Parameters
    ----------
    program:
        The program to distribute.
    nodes:
        Node name → worker-thread count (each node also runs its own
        analyzer thread), or name → :class:`LocalTopology` for
        heterogeneous capacities.
    transport:
        Optional preconfigured transport (e.g. with a latency model).
    """

    def __init__(
        self,
        program: Program,
        nodes: Mapping[str, int | LocalTopology],
        transport: InProcTransport | None = None,
    ) -> None:
        if not nodes:
            raise PartitionError("cluster needs at least one node")
        self.program = program
        self.master = MasterNode()
        self._workers: dict[str, int] = {}
        #: Versioned membership: every construction-time node starts
        #: active.  Epochs only start moving (and broadcasting) once an
        #: elastic run wires the publish callback.
        self.membership = MembershipTable()
        for name, spec in nodes.items():
            if isinstance(spec, LocalTopology):
                topo = spec
                workers = max(
                    1, int(sum(p.cores for p in spec.processors))
                )
            else:
                workers = int(spec)
                topo = LocalTopology(
                    name, (ProcessorSpec("cpu", cores=workers),)
                )
            self.master.register(topo)
            self._workers[name] = workers
            self.membership.add(name, "active")
        self.transport = transport if transport is not None else \
            InProcTransport()
        #: Serializes membership operations (join/drain/rescale) against
        #: each other; reentrant so a driver-issued rescale can call
        #: :meth:`add_node`/:meth:`drain_node` per node.
        self._elastic_lock = threading.RLock()
        self._rt: _RunState | None = None

    # ------------------------------------------------------------------
    def _subprogram(self, assignment: WorkloadAssignment, node: str) -> Program:
        kernels = [
            self.program.kernels[k] for k in assignment.kernels_for(node)
        ]
        sub = Program.build(
            self.program.fields.values(),
            kernels,
            self.program.timers,
            name=f"{self.program.name}@{node}",
        )
        sub.output_handler = self.program.output_handler
        return sub

    def _wire(self, node: ExecutionNode) -> None:
        """Subscribe ``node`` to every field one of its kernels fetches."""
        fetched = {
            f.field
            for k in node.program.kernels.values()
            for f in k.fetches
        }
        for fname in sorted(fetched):
            self.transport.subscribe(
                fname, node.name,
                lambda msg, node=node: node.inject(msg.payload),
            )

    def _workers_for(self, name: str) -> int:
        """Worker count for a live node name (restart/migration names
        like ``node1~2`` inherit the base node's)."""
        w = self._workers.get(name)
        if w is None:
            w = self._workers[_base_name(name)]
        return w

    # ------------------------------------------------------------------
    # Elastic membership (public API; requires an elastic run in flight)
    # ------------------------------------------------------------------
    def _require_elastic_run(self) -> _RunState:
        rt = self._rt
        if rt is None or not rt.running or not rt.elastic:
            raise SchedulerError(
                "membership operations need a running elastic cluster "
                "(Cluster.run(..., elastic=True) or an ElasticityConfig)"
            )
        return rt

    def _live_name(self, rt: _RunState, assign_name: str) -> str | None:
        """The live execution node serving ``assign_name``'s kernels
        (exact match, or the unique restart ``assign_name~k``)."""
        if assign_name in rt.exec_nodes:
            return assign_name
        matches = [
            n for n in rt.exec_nodes if _base_name(n) == assign_name
        ]
        return matches[0] if len(matches) == 1 else None

    def add_node(self, name: str, workers: int | None = None) -> None:
        """Join ``name`` to a *running* elastic cluster.

        Registers its capacity with the master, admits it to the
        membership as ``joining``, incrementally repartitions the kernel
        graph over N+1 nodes (minimizing moved kernels), migrates the
        moved kernels by fence + event-log replay, and flips the
        membership epoch — the newcomer is ``active`` once the
        ``scale.commit`` is out.
        """
        with self._elastic_lock:
            rt = self._require_elastic_run()
            if workers is None:
                workers = max(self._workers.values())
            if name in self._workers and name in rt.exec_nodes:
                raise SchedulerError(f"node {name!r} already exists")
            self.master.register(
                LocalTopology(name, (ProcessorSpec("cpu", cores=workers),))
            )
            self._workers[name] = workers
            if self.membership.state(name) in (None, "dead", "left"):
                self.membership.add(name, "joining")
            self._rescale(rt, reason=f"join:{name}")
            self.membership.transition(name, "active")

    def drain_node(self, name: str) -> None:
        """Drain ``name`` out of a *running* elastic cluster.

        The inverse of :meth:`add_node`: the node is marked ``draining``
        (an *expected* departure — the heartbeat monitor grants grace,
        so the recovery manager never fires), its capacity leaves the
        master, the remaining nodes absorb its kernels via the same
        incremental fence/replay migration, and the membership epoch
        flips with the node ``left`` — after which the transport rejects
        any straggler it might still publish.
        """
        with self._elastic_lock:
            rt = self._require_elastic_run()
            live = self._live_name(rt, name)
            if live is None:
                raise SchedulerError(f"node {name!r} is not live")
            if len(rt.exec_nodes) <= 1:
                raise SchedulerError(
                    "cannot drain the last remaining node"
                )
            self.membership.transition(_member_name(self, name), "draining")
            if rt.monitor is not None:
                rt.monitor.mark_draining(live)
            self.master.unregister(
                live if live in self.master.topology.capacities()
                else name
            )
            self._workers.pop(name, None)
            self._rescale(rt, reason=f"drain:{name}")
            self.membership.transition(_member_name(self, name), "left")

    # ------------------------------------------------------------------
    def _rescale(self, rt: _RunState, reason: str) -> None:
        """Incrementally repartition and migrate (caller holds the
        elastic lock and has already adjusted master capacity).

        Two-phase: ``scale.plan`` announces the intent; every live node
        whose kernel set changes under the new assignment is fenced
        (heartbeat grace → unsubscribe → wind down, reclaiming its
        outstanding work) and a successor with the new subprogram is
        built in recovery mode, re-learning the store history from the
        transport's event log; ``scale.commit`` carries the epoch the
        new routing is valid under.  A shared-counter token pins the run
        for the whole window.
        """
        t0 = time.monotonic()
        tr_t0 = rt.tracer.now() if rt.tracer.enabled else 0.0
        self.transport.publish(
            "scale.plan", "master",
            {"reason": reason, "epoch": self.membership.epoch},
            control=True,
        )
        old = rt.assignment
        with WorkToken(rt.counter, label=f"scale:{reason}"):
            for drv in rt.live_drivers:
                drv.retirer.pause()
            try:
                new = self.master.plan_incremental(self.program)
                old_sets = {
                    n: set(old.kernels_for(n)) for n in old.nodes()
                }
                new_sets = {
                    n: set(new.kernels_for(n)) for n in new.nodes()
                }
                changed = sorted(
                    n for n in set(old_sets) | set(new_sets)
                    if old_sets.get(n, set()) != new_sets.get(n, set())
                )
                moved = sum(
                    1 for k in self.program.kernels
                    if old.partition.assign.get(k)
                    != new.partition.assign.get(k)
                )
                # Phase 1 — fence first, build after: a kernel must
                # never have two live owners (the old node would trip
                # write-once on a region its successor already stored).
                fenced: list[str] = []
                for assign_name in changed:
                    live = self._live_name(rt, assign_name)
                    if live is None:
                        continue
                    node = rt.exec_nodes.pop(live, None)
                    if node is None:
                        continue
                    if rt.monitor is not None:
                        rt.monitor.mark_draining(live)
                    hb = rt.heartbeaters.pop(live, None)
                    fence_node(
                        node, self.transport,
                        heartbeater=hb,
                        injector=rt.faults,
                        tracer=rt.tracer,
                        reason=f"migration:{reason}",
                    )
                    if rt.monitor is not None:
                        rt.monitor.unwatch(live)
                    fenced.append(live)
                # Phase 2 — build successors with the new subprograms
                # and replay the event log into them.
                built: list[str] = []
                replayed = 0
                for assign_name in changed:
                    kernels = new_sets.get(assign_name)
                    if not kernels:
                        continue  # node lost everything (drain target)
                    sub = self._subprogram(new, assign_name)
                    succ = rt.build(
                        assign_name, sub, self._workers_for(assign_name)
                    )
                    topics = {
                        f.field
                        for k in succ.program.kernels.values()
                        for f in k.fetches
                    }
                    for msg in self.transport.replay(topics):
                        succ.inject(msg.payload)
                        replayed += 1
                    built.append(assign_name)
                # Retirement and liveness probes follow the new epoch.
                nodes_now = list(rt.exec_nodes.values())
                for drv in rt.live_drivers:
                    if nodes_now:
                        drv.set_nodes(nodes_now)
            finally:
                for drv in rt.live_drivers:
                    drv.retirer.resume()
        rt.assignment = new
        epoch = self.membership.epoch
        migration_s = time.monotonic() - t0
        self.transport.publish(
            "scale.commit", "master",
            {"reason": reason, "epoch": epoch, "moved": moved},
            control=True,
        )
        m = rt.metrics
        if m is not None:
            m.counter("elastic.migrations").inc()
            m.counter("elastic.moved_kernels").inc(moved)
            m.counter("elastic.replayed").inc(replayed)
            m.histogram("elastic.migration_s").observe(migration_s)
        if rt.tracer.enabled:
            rt.tracer.instant(
                "scale.plan", "elastic", "master", "elastic",
                args={"reason": reason, "fenced": fenced,
                      "built": built}, scope="g",
            )
            rt.tracer.complete(
                f"migrate:{reason}", "elastic", "master", "elastic",
                tr_t0, rt.tracer.now(),
                args={"epoch": epoch, "moved": moved,
                      "replayed": replayed},
            )
        rt.migrations.append(
            MigrationRecord(
                reason=reason,
                epoch=epoch,
                moved_kernels=moved,
                fenced=tuple(fenced),
                built=tuple(built),
                replayed=replayed,
                migration_s=migration_s,
            )
        )

    def _elasticity_driver(
        self, rt: _RunState, cfg: ElasticityConfig,
        session_specs,
    ) -> ElasticityDriver:
        """Wire an :class:`ElasticityDriver` against this run: load and
        SLO-burn samples in, :meth:`add_node`/:meth:`drain_node` out."""

        def sample() -> dict:
            nodes = list(rt.exec_nodes.values())
            workers = sum(n.workers for n in nodes) or 1
            depth = sum(len(n.ready) for n in nodes)
            burn = 0.0
            slo = rt.tel.slo if rt.tel is not None else None
            if slo is not None and session_specs:
                for spec in session_specs:
                    try:
                        burn = max(burn, slo.burn_rate(spec.name))
                    except Exception:  # noqa: BLE001 - untracked tenant
                        continue
            return {
                "nodes": len(nodes),
                "queue_per_worker": depth / workers,
                "burn": burn,
                "elapsed": time.monotonic() - rt.t0_mono,
            }

        def rescale_to(target: int) -> bool:
            with self._elastic_lock:
                current = len(rt.exec_nodes)
                if target == current:
                    return False
                if target > current:
                    for _ in range(target - current):
                        self.add_node(self._next_node_name(rt))
                else:
                    active = sorted(rt.exec_nodes)
                    for name in active[target - current:]:
                        self.drain_node(_base_name(name))
                return True

        return ElasticityDriver(
            cfg, metrics_fn=sample, scale_fn=rescale_to
        )

    def set_offered_rate(
        self, fps: float, session: str | None = None
    ) -> None:
        """Change the offered frame rate of a *running* stream.

        Applies to every live driver, or just ``session``'s.  The load
        lever of the elasticity chaos tests and benchmarks: doubling the
        offered fps mid-run is what justifies a scale-out.
        """
        rt = self._rt
        if rt is None or not rt.running:
            raise SchedulerError("no stream run in flight")
        if session is not None:
            drv = rt.session_drivers.get(session)
            if drv is None:
                raise SchedulerError(f"no session {session!r}")
            drv.set_rate(fps)
            return
        if not rt.live_drivers:
            raise SchedulerError("run has no stream drivers")
        for drv in rt.live_drivers:
            drv.set_rate(fps)

    def _next_node_name(self, rt: _RunState) -> str:
        """First free ``node<k>`` name (CLI/driver join targets)."""
        taken = set(self._workers) | set(rt.exec_nodes) | {
            _base_name(n) for n in rt.exec_nodes
        }
        k = 0
        while f"node{k}" in taken:
            k += 1
        return f"node{k}"

    def run(
        self,
        assignment: WorkloadAssignment | None = None,
        method: str = "kl",
        instrumentation: Instrumentation | None = None,
        max_age: int | None = None,
        timeout: float | None = None,
        stall_timeout: float | None = None,
        faults: FaultInjector | None = None,
        recovery: RecoveryConfig | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        adapt: "AdaptationConfig | bool | None" = None,
        stream=None,
        sessions=None,
        batch: int = 1,
        telemetry=None,
        elastic: "ElasticityConfig | bool | None" = None,
    ) -> ClusterResult:
        """Plan (unless given an assignment) and execute the program.

        Returns after cluster-wide quiescence; raises the first node
        error if any kernel body failed.

        ``stall_timeout`` arms the work counter's stall watchdog on
        every node: a wedged run raises
        :class:`~repro.core.errors.StallError` instead of hanging.  Pick
        it larger than the longest kernel body — and, with fault
        injection, larger than the heartbeat timeout (a killed node's
        frozen window counts as global inactivity until detection).

        ``faults`` and/or ``recovery`` switch on the fault-tolerant
        path: heartbeat failure detection, the transport event log, and
        automatic node replacement with bounded retries.  Exhausting the
        restart budget (or losing every node) raises
        :class:`~repro.core.errors.NodeFailureError`.

        ``adapt`` switches on online LLS adaptation cluster-wide: a
        driver on the master merges every node's instrumentation, runs
        :class:`~repro.core.scheduler.AdaptivePolicy` on the interval
        deltas, and broadcasts recommended decisions on the
        ``adapt.plan`` control topic.  The node owning a decision's
        kernels applies it at its locally safe epoch and commits that
        epoch on ``adapt.commit``; the other nodes mirror the rewrite
        into their producer bookkeeping at the committed epoch.  Fusion
        decisions whose kernels live on different nodes are discarded
        (fusing them would strand the pipe field across the boundary).

        ``stream`` (a :class:`~repro.stream.StreamBinding` or prebuilt
        :class:`~repro.stream.StreamDriver`) runs the cluster live: the
        stream driver publishes each admitted frame's store events on the
        field topics (origin ``stream-source``), so exactly the nodes
        whose kernels fetch the input fields receive them; backpressure
        credits travel the other way on the ``stream.credit`` control
        topic (granted by ``master`` as completions are observed,
        consumed by ``stream-source``), so flow control crosses the same
        transport as data.  The resulting
        :class:`~repro.stream.StreamReport` is attached to
        ``ClusterResult.stream``.

        ``sessions`` (an iterable of
        :class:`~repro.stream.SessionSpec`) runs the cluster
        multi-tenant: the cluster must have been constructed with the
        merged program (:func:`~repro.stream.merge_sessions`), whose
        namespaced fields partition across nodes like any others — a
        session's frames travel only the field topics its subgraph
        fetches, so transport-level isolation falls out of topic
        routing.  Each session gets its own
        :class:`~repro.stream.StreamDriver` (gate, QoS tier, scoped
        retirer); credits return on ``stream.credit`` tagged with the
        session name.  Every node schedules with the ``"fair"``
        per-session deficit policy.  ``ClusterResult.stream`` becomes a
        :class:`~repro.stream.MultitenantReport`.

        ``tracer`` records a cluster-wide timeline (one viewer lane per
        node/worker plus ``master`` control-plane lanes).  Fault-tolerant
        runs arm a ring-mode tracer (the flight recorder) by default; on
        an unrecoverable failure the recent timeline — heartbeat-silence,
        fencing, re-execution — is dumped next to the chaos repro
        artifact and the path attached to the exception as
        ``flight_path``.  ``metrics`` is shared by every node (and the
        recovery manager), so counters aggregate cluster-wide.

        ``batch`` > 1 turns on batched dispatch on every node (see
        :func:`~repro.core.run_program`); results stay byte-identical.

        ``telemetry`` (``True``, a :class:`~repro.obs.TelemetryConfig`
        or a prebuilt :class:`~repro.obs.Telemetry`) arms the frame
        timeline on every node and on the transport (store-event hops
        charge the ``transport`` bucket), the per-tenant SLO tracker,
        and the live exporter sampling the shared cluster metrics
        registry.  The facade is attached to
        ``ClusterResult.telemetry``.

        ``elastic`` switches on dynamic membership: the transport's
        routing consults the epoch-stamped membership view (rejecting
        dead/departed senders), the event log is retained for migration
        replay, and :meth:`add_node`/:meth:`drain_node` may rescale the
        running cluster.  Passing an
        :class:`~repro.dist.membership.ElasticityConfig` additionally
        starts an :class:`~repro.dist.membership.ElasticityDriver`
        issuing scale decisions from live load/SLO signals (or the
        config's deterministic time trigger).  ``True`` arms the
        machinery for manual scaling only.
        """
        if stream is not None and sessions is not None:
            raise ValueError(
                "stream= and sessions= are mutually exclusive"
            )
        session_specs = list(sessions) if sessions is not None else None
        session_weights: dict[str, int] | None = None
        if session_specs is not None:
            from ..stream.multitenant import SESSION_SEP

            for spec in session_specs:
                prefix = spec.name + SESSION_SEP
                if not any(
                    k.startswith(prefix) for k in self.program.kernels
                ):
                    raise ValueError(
                        f"session {spec.name!r} has no kernels in the "
                        f"cluster program — construct the Cluster with "
                        f"merge_sessions(specs)"
                    )
            session_weights = {
                spec.name: 2 if spec.qos_class == "gold" else 1
                for spec in session_specs
            }
        if assignment is None:
            assignment = self.master.plan(
                self.program, instrumentation, method
            )
        ft = faults is not None or recovery is not None
        if ft and recovery is None:
            recovery = RecoveryConfig()
        elastic_cfg: ElasticityConfig | None = (
            elastic if isinstance(elastic, ElasticityConfig) else None
        )
        elastic_on = bool(elastic)
        if tracer is None:
            # Flight recorder armed by default on fault-tolerant runs:
            # ring mode is bounded-memory and cheap enough to always run.
            tracer = Tracer(mode="ring") if ft else NULL_TRACER
        if metrics is None:
            metrics = MetricsRegistry()
        tel = _resolve_telemetry(telemetry)
        if tel is not None:
            tel.attach_tracer(tracer)
            # One source only: the registry is shared by every node, so
            # per-node sources would double-count on merge.
            tel.exporter.add_source("cluster", metrics.snapshot)
        self.transport.tracer = tracer
        self.transport.timeline = tel.timeline if tel is not None else None
        fields = FieldStore(self.program.fields.values())
        counter = WorkCounter()
        timers = TimerSet(self.program.timers)
        dtype_size = {
            f.name: f.np_dtype.itemsize
            for f in self.program.fields.values()
        }

        rt = _RunState()
        rt.assignment = assignment
        rt.counter = counter
        rt.fields = fields
        rt.faults = faults
        rt.recovery = recovery
        rt.ft = ft
        rt.elastic = elastic_on
        rt.tracer = tracer
        rt.metrics = metrics
        rt.tel = tel
        rt.timeout = timeout
        rt.stall_timeout = stall_timeout
        self._rt = rt
        exec_nodes = rt.exec_nodes

        if elastic_on:
            # Dynamic membership: broadcast every view flip on the
            # control topic, export the epoch, retain the event log for
            # migration replay, and gate routing on the view.
            def broadcast(view) -> None:
                metrics.gauge("membership.epoch").set_max(view.epoch)
                try:
                    self.transport.publish(
                        MEMBERSHIP_TOPIC, "master", view, control=True
                    )
                except Exception:  # noqa: BLE001 - post-close flips
                    pass

            self.membership.set_publish(broadcast)
            metrics.gauge("membership.epoch").set_max(
                self.membership.epoch
            )
            self.transport.membership = self.membership
            self.transport.enable_log()
            if tel is not None:
                tel.exporter.page("membership", self.membership.as_dict)

        def tap(node: ExecutionNode, ev) -> None:
            if isinstance(ev, StoreEvent):
                elems = 1
                for s in ev.region:
                    elems *= s.stop - s.start
                size = elems * dtype_size.get(ev.field, 8)
                self.transport.publish(ev.field, node.name, ev, size)
            elif isinstance(ev, ResizeEvent):
                self.transport.publish(ev.field, node.name, ev, 0)

        output_handler = self.program.output_handler
        if (ft or elastic_on) and output_handler is not None:
            output_handler = _OutputDedup(output_handler)

        for name in assignment.nodes():
            sub = self._subprogram(assignment, name)
            if not sub.kernels:
                continue
            if ft or elastic_on:
                sub.output_handler = output_handler
            exec_nodes[name] = ExecutionNode(
                sub,
                self._workers[name],
                max_age=max_age,
                name=name,
                fields=fields,
                counter=counter,
                timers=timers,
                on_event=tap,
                scheduling=(
                    "fair" if session_specs is not None else "age"
                ),
                session_weights=session_weights,
                dependency_kernels=list(self.program.kernels.values()),
                tracer=tracer,
                metrics=metrics,
                batch=batch,
                timeline=tel.timeline if tel is not None else None,
            )
        if not exec_nodes:
            raise PartitionError("assignment left every node empty")

        # Wire subscriptions: a node receives events for every field one
        # of its kernels fetches.
        for node in exec_nodes.values():
            self._wire(node)

        # ---- online adaptation (two-phase: plan broadcast -> owner
        # applies at its safe epoch -> epoch commit to the others) ----
        adapt_cfg: AdaptationConfig | None = None
        if adapt:
            adapt_cfg = (
                adapt if isinstance(adapt, AdaptationConfig)
                else AdaptationConfig()
            )

        def wire_adapt(node: ExecutionNode) -> None:
            # The transport never delivers a message back to its sender,
            # so the owner's own commit does not echo into it.
            self.transport.subscribe(
                "adapt.plan", node.name,
                lambda msg, node=node: node.request_replan(
                    msg.payload["decisions"]
                ),
            )
            self.transport.subscribe(
                "adapt.commit", node.name,
                lambda msg, node=node: node.request_replan(
                    msg.payload["decisions"],
                    epoch=msg.payload["epoch"],
                    remote=True,
                ),
            )

            def commit(n: ExecutionNode, rec) -> None:
                self.transport.publish(
                    "adapt.commit", n.name,
                    {
                        "origin": n.name,
                        "epoch": rec.epoch,
                        "decisions": rec.decisions,
                    },
                    control=True,
                )

            node.on_replan = commit

        driver: AdaptationDriver | None = None
        if adapt_cfg is not None:
            for node in exec_nodes.values():
                wire_adapt(node)
            owner = {
                k: n
                for n in assignment.nodes()
                for k in assignment.kernels_for(n)
            }
            tracked = {"program": self.program}

            def merged_stats() -> dict[str, KernelStats]:
                out: dict[str, KernelStats] = {}
                for node in list(exec_nodes.values()):
                    for k, s in node.instrumentation.stats().items():
                        out[k] = out[k].merged(s) if k in out else s
                return out

            def broadcast_plan(decisions) -> bool:
                ok = [
                    d for d in decisions
                    if len({owner.get(n)
                            for n in decision_kernels(d)}) == 1
                ]
                if not ok:
                    return False
                self.transport.publish(
                    "adapt.plan", "master",
                    {"decisions": tuple(ok)}, control=True,
                )
                # Track the rewrite optimistically so the next policy
                # round reasons about the post-swap program.
                try:
                    tracked["program"] = apply_decisions(
                        tracked["program"], ok
                    )
                except SchedulerError:
                    pass
                return True

            driver = AdaptationDriver(
                adapt_cfg,
                stats_fn=merged_stats,
                program_fn=lambda: tracked["program"],
                apply_fn=broadcast_plan,
                name="master-adapt",
            )

        # ---- live streaming (source -> field topics, credits back on
        # the stream.credit control topic) ----
        sdriver = None
        session_drivers = rt.session_drivers
        if stream is not None or session_specs is not None:
            from ..stream import StreamDriver

            def stream_inject(ev) -> None:
                size = 0
                if isinstance(ev, StoreEvent):
                    elems = 1
                    for s in ev.region:
                        elems *= s.stop - s.start
                    size = elems * dtype_size.get(ev.field, 8)
                self.transport.publish(ev.field, "stream-source", ev, size)

        if stream is not None:
            def grant(age: int) -> None:
                self.transport.publish(
                    "stream.credit", "master", {"age": age}, control=True
                )

            sdriver = (
                stream if isinstance(stream, StreamDriver)
                else StreamDriver(
                    stream,
                    nodes=list(exec_nodes.values()),
                    fields=fields,
                    counter=counter,
                    metrics=metrics,
                    tracer=tracer,
                    program=self.program,
                    inject=stream_inject,
                    on_grant=grant,
                    telemetry=tel,
                )
            )
            self.transport.subscribe(
                "stream.credit", "stream-source",
                lambda msg: sdriver.gate.grant(msg.payload["age"]),
            )
        elif session_specs is not None:
            from ..stream.multitenant import (
                _namespace_binding,
                namespace_program,
            )

            for spec in session_specs:
                sub = namespace_program(spec.program, spec.name)

                def grant(age: int, _name=spec.name) -> None:
                    # Session-tagged credit: flow control per tenant
                    # over the shared control topic.
                    self.transport.publish(
                        "stream.credit", "master",
                        {"session": _name, "age": age}, control=True,
                    )

                session_drivers[spec.name] = StreamDriver(
                    _namespace_binding(spec.binding, spec.name),
                    nodes=list(exec_nodes.values()),
                    fields=fields,
                    counter=counter,
                    metrics=metrics,
                    tracer=tracer,
                    program=self.program,
                    inject=stream_inject,
                    on_grant=grant,
                    telemetry=tel,
                    session=spec.name,
                    kernel_filter=lambda k, _p=spec.name + SESSION_SEP: (
                        k.startswith(_p)
                    ),
                    retire_fields=frozenset(sub.fields),
                    retire_kernels=frozenset(sub.kernels),
                )

            def route_credit(msg) -> None:
                drv = session_drivers.get(msg.payload.get("session"))
                if drv is not None:
                    drv.gate.grant(msg.payload["age"])

            self.transport.subscribe(
                "stream.credit", "stream-source", route_credit
            )

        if sdriver is not None or session_drivers:
            # The driver(s) wrapped the *full* program's output handler
            # for completion detection, but every subprogram copied the
            # handler before that wrap — re-propagate it (dedup-wrapped
            # on fault-tolerant runs) so completions are observed.  With
            # sessions the wraps chained: the final handler observes
            # every session's completion key, each guarded by its
            # kernel filter.
            handler = self.program.output_handler
            if (ft or elastic_on) and handler is not None:
                handler = _OutputDedup(handler)
            rt.live_drivers = (
                [sdriver] if sdriver is not None
                else list(session_drivers.values())
            )
            for node in exec_nodes.values():
                node.program.set_output_handler(handler)
                if not ft and not elastic_on:
                    # Driver stop on node teardown unwedges a failing
                    # non-recoverable run.  Under fault tolerance or
                    # elasticity the hook would be wrong: wind_down() on
                    # a *recoverably* killed or migration-fenced node
                    # runs teardown hooks, and stopping a driver there
                    # closes its credit gate and truncates the stream
                    # the replacement is about to resume.  Terminal
                    # failures already poke the shared counter
                    # (unblocking every join), and run() stops all live
                    # drivers after the join loop.
                    for drv in rt.live_drivers:
                        node.add_teardown_hook(drv.stop)
        live_drivers = rt.live_drivers
        live_handler = (
            None if not (sdriver is not None or session_drivers)
            else exec_nodes[next(iter(exec_nodes))].program.output_handler
        )

        # Startup token keeps the shared counter nonzero until every node
        # has dispatched its initial instances, so no node can observe a
        # false global quiescence during startup.
        startup = WorkToken(counter, label="cluster-startup")
        results = rt.results
        errors = rt.errors
        lock = rt.lock

        def drive(name: str, node: ExecutionNode, key: str | None = None) -> None:
            try:
                r = node.join(timeout=timeout, stall_timeout=stall_timeout)
                with lock:
                    results[key if key is not None else name] = r
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
                counter.poke()

        rt.drive = drive
        monitor: HeartbeatMonitor | None = None
        manager: RecoveryManager | None = None
        heartbeaters = rt.heartbeaters
        extra_threads = rt.extra_threads
        extra_lock = rt.extra_lock

        def build(
            name: str,
            program: Program,
            workers: int,
            *,
            scheduling: str | None = None,
            node_batch: int | None = None,
        ) -> ExecutionNode:
            """Build, wire and start a successor node (recovery
            replacement or migration target) and its drive thread."""
            if live_handler is not None:
                program.set_output_handler(live_handler)
            repl = ExecutionNode(
                program,
                workers,
                max_age=max_age,
                name=name,
                fields=fields,
                counter=counter,
                timers=timers,
                on_event=tap,
                recover=True,
                scheduling=(
                    scheduling if scheduling is not None
                    else ("fair" if session_specs is not None else "age")
                ),
                session_weights=session_weights,
                dependency_kernels=list(self.program.kernels.values()),
                tracer=tracer,
                metrics=metrics,
                batch=node_batch if node_batch is not None else batch,
                timeline=tel.timeline if tel is not None else None,
            )
            if faults is not None:
                faults.wrap(repl)
            self._wire(repl)
            if adapt_cfg is not None:
                # The replacement restarts from the node's base program
                # (granularity reverts — byte-identical either way); it
                # still hears future plan/commit traffic.
                wire_adapt(repl)
            if monitor is not None:
                monitor.watch(name)
            repl.start()
            if ft:
                hb = Heartbeater(
                    repl, self.transport,
                    recovery.heartbeat_interval, faults,
                )
                heartbeaters[name] = hb
                hb.start()
            rt.migration_seq += 1
            t = threading.Thread(
                target=drive,
                args=(name, repl, f"{name}#{rt.migration_seq}"),
                daemon=True,
                name=f"cluster-{name}",
            )
            with extra_lock:
                extra_threads.append(t)
            t.start()
            exec_nodes[name] = repl
            return repl

        rt.build = build

        def spawn(dead: ExecutionNode, repl_name: str) -> ExecutionNode:
            """Build, wire and start a recovery replacement for ``dead``
            (called from the recovery manager's thread)."""
            if elastic_on:
                state = self.membership.state(dead.name)
                if state in ("joining", "active", "draining"):
                    self.membership.transition(dead.name, "dead")
                self.membership.add(repl_name, "joining")
            repl = build(
                repl_name, dead.program, dead.workers,
                scheduling=dead.ready.scheduling,
                node_batch=dead.batch,
            )
            if elastic_on:
                self.membership.transition(repl_name, "active")
            return repl

        if ft:
            self.transport.enable_log()
            if faults is not None:
                faults.attach(self.transport, counter)
                for node in exec_nodes.values():
                    faults.wrap(node)
            monitor = HeartbeatMonitor(
                self.transport,
                recovery.heartbeat_timeout,
                recovery.progress_timeout,
                tracer=tracer,
            )
            rt.monitor = monitor
            manager = RecoveryManager(
                master=self.master,
                transport=self.transport,
                counter=counter,
                monitor=monitor,
                config=recovery,
                nodes=exec_nodes,
                heartbeaters=heartbeaters,
                spawn=spawn,
                injector=faults,
                tracer=tracer,
                metrics=metrics,
            )
            rt.manager = manager

        edriver: ElasticityDriver | None = None
        if elastic_cfg is not None:
            edriver = self._elasticity_driver(rt, elastic_cfg, session_specs)

        if tel is not None:
            tel.start()
        t0 = time.perf_counter()
        rt.t0_mono = time.monotonic()
        for node in list(exec_nodes.values()):
            node.start()
        if ft:
            for name, node in list(exec_nodes.items()):
                monitor.watch(name)
                hb = Heartbeater(
                    node, self.transport, recovery.heartbeat_interval,
                    faults,
                )
                heartbeaters[name] = hb
                hb.start()
            manager.start()
        if driver is not None:
            driver.start()
        for drv in live_drivers:
            drv.start()
        rt.running = True
        if edriver is not None:
            edriver.start()
        threads = [
            threading.Thread(target=drive, args=(n, en), daemon=True,
                             name=f"cluster-{n}")
            for n, en in exec_nodes.items()
        ]
        for t in threads:
            t.start()
        startup.release()  # every node started: release the startup token
        for t in threads:
            t.join()
        if edriver is not None:
            edriver.stop()
        rt.running = False
        if driver is not None:
            driver.stop()
        for drv in live_drivers:
            drv.stop()
        if ft or elastic_on:
            if manager is not None:
                manager.stop()
            with extra_lock:
                pending = list(extra_threads)
            for t in pending:
                t.join()
            for hb in list(heartbeaters.values()):
                hb.stop()
            if faults is not None:
                faults.release_all()
            if monitor is not None:
                monitor.close()
        wall = time.perf_counter() - t0
        if tel is not None:
            tel.stop()  # final sample lands before reports are built
        stats = self.transport.stats
        metrics.gauge("transport.messages").set_max(stats.messages)
        metrics.gauge("transport.bytes").set_max(stats.bytes)
        metrics.gauge("transport.delivery_errors").set_max(
            stats.delivery_errors
        )
        metrics.gauge("transport.drops").set_max(stats.drops)
        metrics.gauge("transport.stale_rejects").set_max(
            stats.stale_rejects
        )
        stream_report = None
        if sdriver is not None:
            stream_report = sdriver.report()
        elif session_drivers:
            from ..stream import MultitenantReport

            stream_report = MultitenantReport(
                sessions={
                    name: drv.report()
                    for name, drv in session_drivers.items()
                },
                workers=sum(self._workers.values()),
                backend="threads",
                capacity=len(session_drivers),
                duration_s=wall,
            )
        err = manager.error if manager is not None else None
        if err is None and errors:
            err = errors[0]
        if err is not None:
            path = dump_flight(
                tracer,
                reason=f"{type(err).__name__}: {err}",
                context={"cluster": self.program.name,
                         "nodes": sorted(self._workers)},
            )
            if path is not None:
                err.flight_path = path  # type: ignore[attr-defined]
            raise err
        return ClusterResult(
            assignment=rt.assignment,
            node_results=results,
            transport=stats,
            wall_time=wall,
            fields=fields,
            recoveries=list(manager.records) if manager is not None else [],
            metrics=metrics,
            tracer=tracer if tracer.enabled else None,
            stream=stream_report,
            telemetry=tel,
            migrations=list(rt.migrations),
            membership=(
                self.membership.as_dict() if elastic_on else None
            ),
        )


def _member_name(cluster: Cluster, name: str) -> str:
    """The membership entry for a drain target: the base name the node
    was admitted under (recovery replacements are admitted under their
    own ``~k`` names, so an exact match wins)."""
    if cluster.membership.state(name) is not None:
        return name
    return _base_name(name)
