"""A multi-node P2G cluster, in process.

Completes the paper's figure-1 architecture: a master node plans a
kernel→node assignment (HLS), then each execution node runs *its*
kernels with its own dependency analyzer and worker threads.  Nodes
share the program's write-once fields (each kernel — and therefore each
store region — lives on exactly one node, so write-once semantics hold
globally) and forward their store/resize events over the
publish–subscribe transport to every node that fetches the stored field;
quiescence is detected cluster-wide through a shared
:class:`~repro.core.WorkCounter`.

The transport's traffic statistics expose exactly what the HLS's
partitioning objective minimizes: events crossing node boundaries.
A partition that keeps a pipeline on one node moves almost nothing; a
bad partition pays per store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

import numpy as np

from ..core import (
    ExecutionNode,
    Program,
    RunResult,
    WorkCounter,
)
from ..core.deadlines import TimerSet
from ..core.errors import PartitionError
from ..core.events import ResizeEvent, StoreEvent
from ..core.fields import FieldStore
from ..core.instrumentation import Instrumentation
from .master import MasterNode, WorkloadAssignment
from .topology import GlobalTopology, LocalTopology, ProcessorSpec
from .transport import InProcTransport, TransportStats

__all__ = ["Cluster", "ClusterResult"]


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    assignment: WorkloadAssignment
    node_results: dict[str, RunResult]
    transport: TransportStats
    wall_time: float
    fields: FieldStore

    @property
    def instrumentation(self) -> Instrumentation:
        """All nodes' instrumentation merged into one collector."""
        merged = Instrumentation()
        for r in self.node_results.values():
            merged = merged.merged(r.instrumentation)
        return merged

    @property
    def reason(self) -> str:
        """Aggregate outcome: idle only if every node went idle."""
        reasons = {r.reason for r in self.node_results.values()}
        if reasons == {"idle"}:
            return "idle"
        return "timeout" if "timeout" in reasons else "stopped"

    def cross_node_messages(self) -> int:
        """Store/resize events that crossed node boundaries."""
        return self.transport.messages


class Cluster:
    """Runs one program across several in-process execution nodes.

    Parameters
    ----------
    program:
        The program to distribute.
    nodes:
        Node name → worker-thread count (each node also runs its own
        analyzer thread), or name → :class:`LocalTopology` for
        heterogeneous capacities.
    transport:
        Optional preconfigured transport (e.g. with a latency model).
    """

    def __init__(
        self,
        program: Program,
        nodes: Mapping[str, int | LocalTopology],
        transport: InProcTransport | None = None,
    ) -> None:
        if not nodes:
            raise PartitionError("cluster needs at least one node")
        self.program = program
        self.master = MasterNode()
        self._workers: dict[str, int] = {}
        for name, spec in nodes.items():
            if isinstance(spec, LocalTopology):
                topo = spec
                workers = max(
                    1, int(sum(p.cores for p in spec.processors))
                )
            else:
                workers = int(spec)
                topo = LocalTopology(
                    name, (ProcessorSpec("cpu", cores=workers),)
                )
            self.master.register(topo)
            self._workers[name] = workers
        self.transport = transport if transport is not None else \
            InProcTransport()

    # ------------------------------------------------------------------
    def _subprogram(self, assignment: WorkloadAssignment, node: str) -> Program:
        kernels = [
            self.program.kernels[k] for k in assignment.kernels_for(node)
        ]
        sub = Program.build(
            self.program.fields.values(),
            kernels,
            self.program.timers,
            name=f"{self.program.name}@{node}",
        )
        sub.output_handler = self.program.output_handler
        return sub

    def run(
        self,
        assignment: WorkloadAssignment | None = None,
        method: str = "kl",
        instrumentation: Instrumentation | None = None,
        max_age: int | None = None,
        timeout: float | None = None,
    ) -> ClusterResult:
        """Plan (unless given an assignment) and execute the program.

        Returns after cluster-wide quiescence; raises the first node
        error if any kernel body failed.
        """
        if assignment is None:
            assignment = self.master.plan(
                self.program, instrumentation, method
            )
        fields = FieldStore(self.program.fields.values())
        counter = WorkCounter()
        timers = TimerSet(self.program.timers)
        dtype_size = {
            f.name: f.np_dtype.itemsize
            for f in self.program.fields.values()
        }

        def tap(node: ExecutionNode, ev) -> None:
            if isinstance(ev, StoreEvent):
                elems = 1
                for s in ev.region:
                    elems *= s.stop - s.start
                size = elems * dtype_size.get(ev.field, 8)
                self.transport.publish(ev.field, node.name, ev, size)
            elif isinstance(ev, ResizeEvent):
                self.transport.publish(ev.field, node.name, ev, 0)

        exec_nodes: dict[str, ExecutionNode] = {}
        for name in assignment.nodes():
            sub = self._subprogram(assignment, name)
            if not sub.kernels:
                continue
            exec_nodes[name] = ExecutionNode(
                sub,
                self._workers[name],
                max_age=max_age,
                name=name,
                fields=fields,
                counter=counter,
                timers=timers,
                on_event=tap,
            )
        if not exec_nodes:
            raise PartitionError("assignment left every node empty")

        # Wire subscriptions: a node receives events for every field one
        # of its kernels fetches.
        for name, node in exec_nodes.items():
            fetched = {
                f.field
                for k in node.program.kernels.values()
                for f in k.fetches
            }
            for fname in sorted(fetched):
                self.transport.subscribe(
                    fname, name,
                    lambda msg, node=node: node.inject(msg.payload),
                )

        # Startup token keeps the shared counter nonzero until every node
        # has dispatched its initial instances, so no node can observe a
        # false global quiescence during startup.
        counter.inc()
        results: dict[str, RunResult] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def drive(name: str, node: ExecutionNode) -> None:
            try:
                r = node.join(timeout=timeout)
                with lock:
                    results[name] = r
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
                counter.poke()

        t0 = time.perf_counter()
        for node in exec_nodes.values():
            node.start()
        counter.dec()  # every node started: release the startup token
        threads = [
            threading.Thread(target=drive, args=(n, en), daemon=True,
                             name=f"cluster-{n}")
            for n, en in exec_nodes.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        if errors:
            raise errors[0]
        return ClusterResult(
            assignment=assignment,
            node_results=results,
            transport=self.transport.stats,
            wall_time=wall,
            fields=fields,
        )
