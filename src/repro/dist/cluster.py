"""A multi-node P2G cluster, in process.

Completes the paper's figure-1 architecture: a master node plans a
kernel→node assignment (HLS), then each execution node runs *its*
kernels with its own dependency analyzer and worker threads.  Nodes
share the program's write-once fields (each kernel — and therefore each
store region — lives on exactly one node, so write-once semantics hold
globally) and forward their store/resize events over the
publish–subscribe transport to every node that fetches the stored field;
quiescence is detected cluster-wide through a shared
:class:`~repro.core.WorkCounter`.

The transport's traffic statistics expose exactly what the HLS's
partitioning objective minimizes: events crossing node boundaries.
A partition that keeps a pipeline on one node moves almost nothing; a
bad partition pays per store.

Fault tolerance is opt-in: passing ``faults`` (a
:class:`~repro.dist.faults.FaultInjector`) or ``recovery`` (a
:class:`~repro.dist.recovery.RecoveryConfig`) to :meth:`Cluster.run`
enables the transport event log, per-node heartbeats, a failure monitor
and a :class:`~repro.dist.recovery.RecoveryManager` that replaces dead
nodes mid-run.  Without them, nothing changes: no control traffic, no
log, byte-for-byte the original execution path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping

from ..core import (
    ExecutionNode,
    Program,
    RunResult,
    WorkCounter,
)
from ..core.adaptation import AdaptationConfig, AdaptationDriver
from ..core.deadlines import TimerSet
from ..core.errors import PartitionError, SchedulerError
from ..core.events import ResizeEvent, StoreEvent
from ..core.fields import FieldStore
from ..core.instrumentation import Instrumentation, KernelStats
from ..core.runtime import _resolve_telemetry
from ..core.scheduler import apply_decisions, decision_kernels
from ..obs import MetricsRegistry, NULL_TRACER, Tracer, dump_flight
from .faults import FaultInjector
from .heartbeat import Heartbeater, HeartbeatMonitor
from .master import MasterNode, WorkloadAssignment
from .recovery import RecoveryConfig, RecoveryManager, RecoveryRecord
from .topology import LocalTopology, ProcessorSpec
from .transport import InProcTransport, TransportStats

__all__ = ["Cluster", "ClusterResult"]


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    assignment: WorkloadAssignment
    node_results: dict[str, RunResult]
    transport: TransportStats
    wall_time: float
    fields: FieldStore
    recoveries: list[RecoveryRecord] = dc_field(default_factory=list)
    metrics: "MetricsRegistry | None" = None
    tracer: "Tracer | None" = None  #: set when tracing was enabled
    #: StreamReport when the run was live (``stream=``), or a
    #: MultitenantReport when it was multi-session (``sessions=``).
    stream: Any = None
    #: :class:`~repro.obs.Telemetry` facade when the run was launched
    #: with ``telemetry=`` (frame timelines, SLO tracker, exporter).
    telemetry: Any = None

    @property
    def replans(self) -> list:
        """Every node's applied mid-run re-bindings (local ones first,
        then the producers-only remote mirrors)."""
        out = [
            rec
            for r in self.node_results.values()
            for rec in r.replans
            if not rec.remote
        ]
        out += [
            rec
            for r in self.node_results.values()
            for rec in r.replans
            if rec.remote
        ]
        return out

    @property
    def instrumentation(self) -> Instrumentation:
        """All nodes' instrumentation merged into one collector."""
        merged = Instrumentation()
        for r in self.node_results.values():
            merged = merged.merged(r.instrumentation)
        return merged

    @property
    def reason(self) -> str:
        """Aggregate outcome: idle only if every node went idle."""
        reasons = {r.reason for r in self.node_results.values()}
        if reasons == {"idle"}:
            return "idle"
        return "timeout" if "timeout" in reasons else "stopped"

    def cross_node_messages(self) -> int:
        """Store/resize events that crossed node boundaries."""
        return self.transport.messages


class _OutputDedup:
    """Idempotent wrapper around a program's output handler.

    A replacement node re-executes the victim's kernels; their stores
    are skipped byte-identically (write-once), but out-of-band
    ``ctx.output`` values would reach the handler a second time.  Keyed
    by (kernel, age, index, key), only the first delivery goes through.
    """

    def __init__(self, handler) -> None:
        self._handler = handler
        self._lock = threading.Lock()
        self._seen: set = set()

    @staticmethod
    def _freeze(index: Any) -> Any:
        if isinstance(index, dict):
            return tuple(sorted(index.items()))
        return index

    def __call__(self, kernel, age, index, key, value) -> None:
        k = (kernel, age, self._freeze(index), key)
        with self._lock:
            if k in self._seen:
                return
            self._seen.add(k)
        self._handler(kernel, age, index, key, value)


class Cluster:
    """Runs one program across several in-process execution nodes.

    Parameters
    ----------
    program:
        The program to distribute.
    nodes:
        Node name → worker-thread count (each node also runs its own
        analyzer thread), or name → :class:`LocalTopology` for
        heterogeneous capacities.
    transport:
        Optional preconfigured transport (e.g. with a latency model).
    """

    def __init__(
        self,
        program: Program,
        nodes: Mapping[str, int | LocalTopology],
        transport: InProcTransport | None = None,
    ) -> None:
        if not nodes:
            raise PartitionError("cluster needs at least one node")
        self.program = program
        self.master = MasterNode()
        self._workers: dict[str, int] = {}
        for name, spec in nodes.items():
            if isinstance(spec, LocalTopology):
                topo = spec
                workers = max(
                    1, int(sum(p.cores for p in spec.processors))
                )
            else:
                workers = int(spec)
                topo = LocalTopology(
                    name, (ProcessorSpec("cpu", cores=workers),)
                )
            self.master.register(topo)
            self._workers[name] = workers
        self.transport = transport if transport is not None else \
            InProcTransport()

    # ------------------------------------------------------------------
    def _subprogram(self, assignment: WorkloadAssignment, node: str) -> Program:
        kernels = [
            self.program.kernels[k] for k in assignment.kernels_for(node)
        ]
        sub = Program.build(
            self.program.fields.values(),
            kernels,
            self.program.timers,
            name=f"{self.program.name}@{node}",
        )
        sub.output_handler = self.program.output_handler
        return sub

    def _wire(self, node: ExecutionNode) -> None:
        """Subscribe ``node`` to every field one of its kernels fetches."""
        fetched = {
            f.field
            for k in node.program.kernels.values()
            for f in k.fetches
        }
        for fname in sorted(fetched):
            self.transport.subscribe(
                fname, node.name,
                lambda msg, node=node: node.inject(msg.payload),
            )

    def run(
        self,
        assignment: WorkloadAssignment | None = None,
        method: str = "kl",
        instrumentation: Instrumentation | None = None,
        max_age: int | None = None,
        timeout: float | None = None,
        stall_timeout: float | None = None,
        faults: FaultInjector | None = None,
        recovery: RecoveryConfig | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        adapt: "AdaptationConfig | bool | None" = None,
        stream=None,
        sessions=None,
        batch: int = 1,
        telemetry=None,
    ) -> ClusterResult:
        """Plan (unless given an assignment) and execute the program.

        Returns after cluster-wide quiescence; raises the first node
        error if any kernel body failed.

        ``stall_timeout`` arms the work counter's stall watchdog on
        every node: a wedged run raises
        :class:`~repro.core.errors.StallError` instead of hanging.  Pick
        it larger than the longest kernel body — and, with fault
        injection, larger than the heartbeat timeout (a killed node's
        frozen window counts as global inactivity until detection).

        ``faults`` and/or ``recovery`` switch on the fault-tolerant
        path: heartbeat failure detection, the transport event log, and
        automatic node replacement with bounded retries.  Exhausting the
        restart budget (or losing every node) raises
        :class:`~repro.core.errors.NodeFailureError`.

        ``adapt`` switches on online LLS adaptation cluster-wide: a
        driver on the master merges every node's instrumentation, runs
        :class:`~repro.core.scheduler.AdaptivePolicy` on the interval
        deltas, and broadcasts recommended decisions on the
        ``adapt.plan`` control topic.  The node owning a decision's
        kernels applies it at its locally safe epoch and commits that
        epoch on ``adapt.commit``; the other nodes mirror the rewrite
        into their producer bookkeeping at the committed epoch.  Fusion
        decisions whose kernels live on different nodes are discarded
        (fusing them would strand the pipe field across the boundary).

        ``stream`` (a :class:`~repro.stream.StreamBinding` or prebuilt
        :class:`~repro.stream.StreamDriver`) runs the cluster live: the
        stream driver publishes each admitted frame's store events on the
        field topics (origin ``stream-source``), so exactly the nodes
        whose kernels fetch the input fields receive them; backpressure
        credits travel the other way on the ``stream.credit`` control
        topic (granted by ``master`` as completions are observed,
        consumed by ``stream-source``), so flow control crosses the same
        transport as data.  The resulting
        :class:`~repro.stream.StreamReport` is attached to
        ``ClusterResult.stream``.

        ``sessions`` (an iterable of
        :class:`~repro.stream.SessionSpec`) runs the cluster
        multi-tenant: the cluster must have been constructed with the
        merged program (:func:`~repro.stream.merge_sessions`), whose
        namespaced fields partition across nodes like any others — a
        session's frames travel only the field topics its subgraph
        fetches, so transport-level isolation falls out of topic
        routing.  Each session gets its own
        :class:`~repro.stream.StreamDriver` (gate, QoS tier, scoped
        retirer); credits return on ``stream.credit`` tagged with the
        session name.  Every node schedules with the ``"fair"``
        per-session deficit policy.  ``ClusterResult.stream`` becomes a
        :class:`~repro.stream.MultitenantReport`.

        ``tracer`` records a cluster-wide timeline (one viewer lane per
        node/worker plus ``master`` control-plane lanes).  Fault-tolerant
        runs arm a ring-mode tracer (the flight recorder) by default; on
        an unrecoverable failure the recent timeline — heartbeat-silence,
        fencing, re-execution — is dumped next to the chaos repro
        artifact and the path attached to the exception as
        ``flight_path``.  ``metrics`` is shared by every node (and the
        recovery manager), so counters aggregate cluster-wide.

        ``batch`` > 1 turns on batched dispatch on every node (see
        :func:`~repro.core.run_program`); results stay byte-identical.

        ``telemetry`` (``True``, a :class:`~repro.obs.TelemetryConfig`
        or a prebuilt :class:`~repro.obs.Telemetry`) arms the frame
        timeline on every node and on the transport (store-event hops
        charge the ``transport`` bucket), the per-tenant SLO tracker,
        and the live exporter sampling the shared cluster metrics
        registry.  The facade is attached to
        ``ClusterResult.telemetry``.
        """
        if stream is not None and sessions is not None:
            raise ValueError(
                "stream= and sessions= are mutually exclusive"
            )
        session_specs = list(sessions) if sessions is not None else None
        session_weights: dict[str, int] | None = None
        if session_specs is not None:
            from ..stream.multitenant import SESSION_SEP

            for spec in session_specs:
                prefix = spec.name + SESSION_SEP
                if not any(
                    k.startswith(prefix) for k in self.program.kernels
                ):
                    raise ValueError(
                        f"session {spec.name!r} has no kernels in the "
                        f"cluster program — construct the Cluster with "
                        f"merge_sessions(specs)"
                    )
            session_weights = {
                spec.name: 2 if spec.qos_class == "gold" else 1
                for spec in session_specs
            }
        if assignment is None:
            assignment = self.master.plan(
                self.program, instrumentation, method
            )
        ft = faults is not None or recovery is not None
        if ft and recovery is None:
            recovery = RecoveryConfig()
        if tracer is None:
            # Flight recorder armed by default on fault-tolerant runs:
            # ring mode is bounded-memory and cheap enough to always run.
            tracer = Tracer(mode="ring") if ft else NULL_TRACER
        if metrics is None:
            metrics = MetricsRegistry()
        tel = _resolve_telemetry(telemetry)
        if tel is not None:
            tel.attach_tracer(tracer)
            # One source only: the registry is shared by every node, so
            # per-node sources would double-count on merge.
            tel.exporter.add_source("cluster", metrics.snapshot)
        self.transport.tracer = tracer
        self.transport.timeline = tel.timeline if tel is not None else None
        fields = FieldStore(self.program.fields.values())
        counter = WorkCounter()
        timers = TimerSet(self.program.timers)
        dtype_size = {
            f.name: f.np_dtype.itemsize
            for f in self.program.fields.values()
        }

        def tap(node: ExecutionNode, ev) -> None:
            if isinstance(ev, StoreEvent):
                elems = 1
                for s in ev.region:
                    elems *= s.stop - s.start
                size = elems * dtype_size.get(ev.field, 8)
                self.transport.publish(ev.field, node.name, ev, size)
            elif isinstance(ev, ResizeEvent):
                self.transport.publish(ev.field, node.name, ev, 0)

        output_handler = self.program.output_handler
        if ft and output_handler is not None:
            output_handler = _OutputDedup(output_handler)

        exec_nodes: dict[str, ExecutionNode] = {}
        for name in assignment.nodes():
            sub = self._subprogram(assignment, name)
            if not sub.kernels:
                continue
            if ft:
                sub.output_handler = output_handler
            exec_nodes[name] = ExecutionNode(
                sub,
                self._workers[name],
                max_age=max_age,
                name=name,
                fields=fields,
                counter=counter,
                timers=timers,
                on_event=tap,
                scheduling=(
                    "fair" if session_specs is not None else "age"
                ),
                session_weights=session_weights,
                dependency_kernels=list(self.program.kernels.values()),
                tracer=tracer,
                metrics=metrics,
                batch=batch,
                timeline=tel.timeline if tel is not None else None,
            )
        if not exec_nodes:
            raise PartitionError("assignment left every node empty")

        # Wire subscriptions: a node receives events for every field one
        # of its kernels fetches.
        for node in exec_nodes.values():
            self._wire(node)

        # ---- online adaptation (two-phase: plan broadcast -> owner
        # applies at its safe epoch -> epoch commit to the others) ----
        adapt_cfg: AdaptationConfig | None = None
        if adapt:
            adapt_cfg = (
                adapt if isinstance(adapt, AdaptationConfig)
                else AdaptationConfig()
            )

        def wire_adapt(node: ExecutionNode) -> None:
            # The transport never delivers a message back to its sender,
            # so the owner's own commit does not echo into it.
            self.transport.subscribe(
                "adapt.plan", node.name,
                lambda msg, node=node: node.request_replan(
                    msg.payload["decisions"]
                ),
            )
            self.transport.subscribe(
                "adapt.commit", node.name,
                lambda msg, node=node: node.request_replan(
                    msg.payload["decisions"],
                    epoch=msg.payload["epoch"],
                    remote=True,
                ),
            )

            def commit(n: ExecutionNode, rec) -> None:
                self.transport.publish(
                    "adapt.commit", n.name,
                    {
                        "origin": n.name,
                        "epoch": rec.epoch,
                        "decisions": rec.decisions,
                    },
                    control=True,
                )

            node.on_replan = commit

        driver: AdaptationDriver | None = None
        if adapt_cfg is not None:
            for node in exec_nodes.values():
                wire_adapt(node)
            owner = {
                k: n
                for n in assignment.nodes()
                for k in assignment.kernels_for(n)
            }
            tracked = {"program": self.program}

            def merged_stats() -> dict[str, KernelStats]:
                out: dict[str, KernelStats] = {}
                for node in list(exec_nodes.values()):
                    for k, s in node.instrumentation.stats().items():
                        out[k] = out[k].merged(s) if k in out else s
                return out

            def broadcast(decisions) -> bool:
                ok = [
                    d for d in decisions
                    if len({owner.get(n)
                            for n in decision_kernels(d)}) == 1
                ]
                if not ok:
                    return False
                self.transport.publish(
                    "adapt.plan", "master",
                    {"decisions": tuple(ok)}, control=True,
                )
                # Track the rewrite optimistically so the next policy
                # round reasons about the post-swap program.
                try:
                    tracked["program"] = apply_decisions(
                        tracked["program"], ok
                    )
                except SchedulerError:
                    pass
                return True

            driver = AdaptationDriver(
                adapt_cfg,
                stats_fn=merged_stats,
                program_fn=lambda: tracked["program"],
                apply_fn=broadcast,
                name="master-adapt",
            )

        # ---- live streaming (source -> field topics, credits back on
        # the stream.credit control topic) ----
        sdriver = None
        session_drivers: dict[str, Any] = {}
        if stream is not None or session_specs is not None:
            from ..stream import StreamDriver

            def stream_inject(ev) -> None:
                size = 0
                if isinstance(ev, StoreEvent):
                    elems = 1
                    for s in ev.region:
                        elems *= s.stop - s.start
                    size = elems * dtype_size.get(ev.field, 8)
                self.transport.publish(ev.field, "stream-source", ev, size)

        if stream is not None:
            def grant(age: int) -> None:
                self.transport.publish(
                    "stream.credit", "master", {"age": age}, control=True
                )

            sdriver = (
                stream if isinstance(stream, StreamDriver)
                else StreamDriver(
                    stream,
                    nodes=list(exec_nodes.values()),
                    fields=fields,
                    counter=counter,
                    metrics=metrics,
                    tracer=tracer,
                    program=self.program,
                    inject=stream_inject,
                    on_grant=grant,
                    telemetry=tel,
                )
            )
            self.transport.subscribe(
                "stream.credit", "stream-source",
                lambda msg: sdriver.gate.grant(msg.payload["age"]),
            )
        elif session_specs is not None:
            from ..stream.multitenant import (
                _namespace_binding,
                namespace_program,
            )

            for spec in session_specs:
                sub = namespace_program(spec.program, spec.name)

                def grant(age: int, _name=spec.name) -> None:
                    # Session-tagged credit: flow control per tenant
                    # over the shared control topic.
                    self.transport.publish(
                        "stream.credit", "master",
                        {"session": _name, "age": age}, control=True,
                    )

                session_drivers[spec.name] = StreamDriver(
                    _namespace_binding(spec.binding, spec.name),
                    nodes=list(exec_nodes.values()),
                    fields=fields,
                    counter=counter,
                    metrics=metrics,
                    tracer=tracer,
                    program=self.program,
                    inject=stream_inject,
                    on_grant=grant,
                    telemetry=tel,
                    session=spec.name,
                    kernel_filter=lambda k, _p=spec.name + SESSION_SEP: (
                        k.startswith(_p)
                    ),
                    retire_fields=frozenset(sub.fields),
                    retire_kernels=frozenset(sub.kernels),
                )

            def route_credit(msg) -> None:
                drv = session_drivers.get(msg.payload.get("session"))
                if drv is not None:
                    drv.gate.grant(msg.payload["age"])

            self.transport.subscribe(
                "stream.credit", "stream-source", route_credit
            )

        if sdriver is not None or session_drivers:
            # The driver(s) wrapped the *full* program's output handler
            # for completion detection, but every subprogram copied the
            # handler before that wrap — re-propagate it (dedup-wrapped
            # on fault-tolerant runs) so completions are observed.  With
            # sessions the wraps chained: the final handler observes
            # every session's completion key, each guarded by its
            # kernel filter.
            handler = self.program.output_handler
            if ft and handler is not None:
                handler = _OutputDedup(handler)
            live_drivers = (
                [sdriver] if sdriver is not None
                else list(session_drivers.values())
            )
            for node in exec_nodes.values():
                node.program.set_output_handler(handler)
                if not ft:
                    # Driver stop on node teardown unwedges a failing
                    # non-recoverable run.  Under fault tolerance the
                    # hook would be wrong: wind_down() on a *recoverably*
                    # killed node runs teardown hooks, and stopping a
                    # driver there closes its credit gate and truncates
                    # the stream the replacement is about to resume.
                    # Terminal failures already poke the shared counter
                    # (unblocking every join), and run() stops all live
                    # drivers after the join loop.
                    for drv in live_drivers:
                        node.add_teardown_hook(drv.stop)
        else:
            live_drivers = []

        # Startup token keeps the shared counter nonzero until every node
        # has dispatched its initial instances, so no node can observe a
        # false global quiescence during startup.
        counter.inc()
        results: dict[str, RunResult] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def drive(name: str, node: ExecutionNode) -> None:
            try:
                r = node.join(timeout=timeout, stall_timeout=stall_timeout)
                with lock:
                    results[name] = r
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
                counter.poke()

        monitor: HeartbeatMonitor | None = None
        manager: RecoveryManager | None = None
        heartbeaters: dict[str, Heartbeater] = {}
        extra_threads: list[threading.Thread] = []
        extra_lock = threading.Lock()

        def spawn(dead: ExecutionNode, repl_name: str) -> ExecutionNode:
            """Build, wire and start a recovery replacement for ``dead``
            (called from the recovery manager's thread)."""
            repl = ExecutionNode(
                dead.program,
                dead.workers,
                max_age=max_age,
                name=repl_name,
                fields=fields,
                counter=counter,
                timers=timers,
                on_event=tap,
                recover=True,
                scheduling=dead.ready.scheduling,
                session_weights=session_weights,
                dependency_kernels=list(self.program.kernels.values()),
                tracer=tracer,
                metrics=metrics,
                batch=dead.batch,
                timeline=tel.timeline if tel is not None else None,
            )
            if faults is not None:
                faults.wrap(repl)
            self._wire(repl)
            if adapt_cfg is not None:
                # The replacement restarts from the node's base program
                # (granularity reverts — byte-identical either way); it
                # still hears future plan/commit traffic.
                wire_adapt(repl)
            monitor.watch(repl_name)
            repl.start()
            hb = Heartbeater(
                repl, self.transport, recovery.heartbeat_interval, faults
            )
            heartbeaters[repl_name] = hb
            hb.start()
            t = threading.Thread(
                target=drive, args=(repl_name, repl), daemon=True,
                name=f"cluster-{repl_name}",
            )
            with extra_lock:
                extra_threads.append(t)
            t.start()
            return repl

        if ft:
            self.transport.enable_log()
            if faults is not None:
                faults.attach(self.transport, counter)
                for node in exec_nodes.values():
                    faults.wrap(node)
            monitor = HeartbeatMonitor(
                self.transport,
                recovery.heartbeat_timeout,
                recovery.progress_timeout,
                tracer=tracer,
            )
            manager = RecoveryManager(
                master=self.master,
                transport=self.transport,
                counter=counter,
                monitor=monitor,
                config=recovery,
                nodes=dict(exec_nodes),
                heartbeaters=heartbeaters,
                spawn=spawn,
                injector=faults,
                tracer=tracer,
                metrics=metrics,
            )

        if tel is not None:
            tel.start()
        t0 = time.perf_counter()
        for node in exec_nodes.values():
            node.start()
        if ft:
            for name, node in exec_nodes.items():
                monitor.watch(name)
                hb = Heartbeater(
                    node, self.transport, recovery.heartbeat_interval,
                    faults,
                )
                heartbeaters[name] = hb
                hb.start()
            manager.start()
        if driver is not None:
            driver.start()
        for drv in live_drivers:
            drv.start()
        counter.dec()  # every node started: release the startup token
        threads = [
            threading.Thread(target=drive, args=(n, en), daemon=True,
                             name=f"cluster-{n}")
            for n, en in exec_nodes.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if driver is not None:
            driver.stop()
        for drv in live_drivers:
            drv.stop()
        if ft:
            manager.stop()
            with extra_lock:
                pending = list(extra_threads)
            for t in pending:
                t.join()
            for hb in list(heartbeaters.values()):
                hb.stop()
            if faults is not None:
                faults.release_all()
            monitor.close()
        wall = time.perf_counter() - t0
        if tel is not None:
            tel.stop()  # final sample lands before reports are built
        stats = self.transport.stats
        metrics.gauge("transport.messages").set_max(stats.messages)
        metrics.gauge("transport.bytes").set_max(stats.bytes)
        metrics.gauge("transport.delivery_errors").set_max(
            stats.delivery_errors
        )
        metrics.gauge("transport.drops").set_max(stats.drops)
        stream_report = None
        if sdriver is not None:
            stream_report = sdriver.report()
        elif session_drivers:
            from ..stream import MultitenantReport

            stream_report = MultitenantReport(
                sessions={
                    name: drv.report()
                    for name, drv in session_drivers.items()
                },
                workers=sum(self._workers.values()),
                backend="threads",
                capacity=len(session_drivers),
                duration_s=wall,
            )
        err = manager.error if manager is not None else None
        if err is None and errors:
            err = errors[0]
        if err is not None:
            path = dump_flight(
                tracer,
                reason=f"{type(err).__name__}: {err}",
                context={"cluster": self.program.name,
                         "nodes": sorted(self._workers)},
            )
            if path is not None:
                err.flight_path = path  # type: ignore[attr-defined]
            raise err
        return ClusterResult(
            assignment=assignment,
            node_results=results,
            transport=stats,
            wall_time=wall,
            fields=fields,
            recoveries=list(manager.records) if manager is not None else [],
            metrics=metrics,
            tracer=tracer if tracer.enabled else None,
            stream=stream_report,
            telemetry=tel,
        )
