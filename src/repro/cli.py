"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper's tooling surface: the P2G compiler "works also as a
compiler driver … and produces complete binaries for programs that run
directly on the target system" (section VI-A).  Here the driver
compiles ``.p2g`` sources and runs them on the execution-node runtime;
further subcommands expose the graphs, the workloads and the simulator.

Commands
--------
run       compile a .p2g file and execute it
graph     emit a program's dependency graphs (ascii or DOT)
mjpeg     encode a YUV file (or the synthetic clip) to MJPEG via P2G
kmeans    run the K-means workload and print the centroid trajectory
simulate  sweep simulated worker counts for a paper workload model
tables    print tables I-III and the figure 9/10 series
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


class _Obs:
    """The CLI's observability surface (``--trace``/``--metrics``/
    ``--metrics-json``), shared by every execute-style subcommand.

    ``finish()`` runs in a ``finally`` so a failing run still writes its
    trace — the timeline of a failure is worth more than a success's.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        from .obs import MetricsRegistry, Tracer

        self.trace_path: str | None = args.trace
        self.show_metrics: bool = args.metrics
        self.metrics_path: str | None = args.metrics_json
        self.tracer = Tracer(mode="full") if self.trace_path else None
        self.metrics = MetricsRegistry()
        self.slo_path: str | None = getattr(args, "slo_json", None)
        self.telemetry = None
        want_tel = (
            getattr(args, "telemetry", False)
            or getattr(args, "telemetry_port", None) is not None
            or getattr(args, "telemetry_jsonl", None) is not None
            or self.slo_path is not None
        )
        if want_tel:
            from .obs import Telemetry, TelemetryConfig

            self.telemetry = Telemetry(TelemetryConfig(
                port=getattr(args, "telemetry_port", None),
                jsonl_path=getattr(args, "telemetry_jsonl", None),
            ))

    def finish(self) -> None:
        from .obs import render

        if self.tracer is not None and self.trace_path:
            n = self.tracer.write(self.trace_path)
            print(f"trace: {n} events -> {self.trace_path} "
                  f"(open in https://ui.perfetto.dev)")
        if self.metrics_path:
            Path(self.metrics_path).write_text(
                self.metrics.to_json() + "\n"
            )
            print(f"metrics -> {self.metrics_path}")
        if self.show_metrics:
            print(render(self.metrics.snapshot(), title="metrics"))
        tel = self.telemetry
        if tel is not None:
            tel.stop()  # idempotent; the runtime usually stopped it
            if tel.exporter.http_port is not None:
                print(f"telemetry: {tel.exporter.ticks} samples "
                      f"(scraped on port {tel.exporter.http_port})")
            else:
                print(f"telemetry: {tel.exporter.ticks} samples")
            if tel.config.jsonl_path:
                print(f"telemetry samples -> {tel.config.jsonl_path}")
            for path in tel.flight_paths:
                print(f"SLO-breach flight recording -> {path}")
            if self.slo_path:
                import json

                Path(self.slo_path).write_text(
                    json.dumps(tel.slo.as_dict(), indent=2) + "\n"
                )
                print(f"slo report -> {self.slo_path}")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("observability")
    g.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome trace-event JSON timeline "
                        "(view in Perfetto: https://ui.perfetto.dev)")
    g.add_argument("--metrics", action="store_true",
                   help="print the metrics-registry snapshot as a table")
    g.add_argument("--metrics-json", metavar="PATH", default=None,
                   help="write the metrics-registry snapshot as JSON")
    g.add_argument("--telemetry", action="store_true",
                   help="arm frame-path telemetry: per-frame stage "
                        "timelines (gate/queue/compute/ipc/transport/"
                        "store latency attribution), the per-tenant SLO "
                        "burn tracker, and the live metrics exporter")
    g.add_argument("--telemetry-port", type=int, default=None,
                   metavar="PORT",
                   help="serve live telemetry over HTTP on 127.0.0.1 "
                        "(Prometheus text at /metrics, JSON at "
                        "/snapshot.json /slo.json /stages.json; 0 picks "
                        "a free port; implies --telemetry)")
    g.add_argument("--telemetry-jsonl", metavar="PATH", default=None,
                   help="append one flattened metrics snapshot per "
                        "sample tick as a JSONL line (implies "
                        "--telemetry)")
    g.add_argument("--slo-json", metavar="PATH", default=None,
                   help="write the per-session SLO summary (tiers, "
                        "misses, burn rates, alerts) as JSON (implies "
                        "--telemetry)")


def _add_batch_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("batched dispatch")
    g.add_argument("--batch", type=int, default=32, metavar="N",
                   help="max ready instances of one kernel+age a worker "
                        "drains per dispatch (default 32; 1 = the "
                        "per-instance scalar path). Output is "
                        "byte-identical at any batch size.")
    g.add_argument("--no-vectorize", action="store_true",
                   help="skip attaching vectorized batch kernels at "
                        "program build (per-instance scalar bodies run "
                        "inside each batch instead)")


def _add_adapt_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("online adaptation")
    g.add_argument("--adapt", action="store_true",
                   help="let the LLS coarsen/fuse kernels mid-run when "
                        "dispatch overhead dominates (output stays "
                        "byte-identical)")
    g.add_argument("--adapt-ratio", type=float, default=0.25,
                   metavar="R",
                   help="dispatch/(dispatch+kernel) ratio above which a "
                        "kernel is re-granularized (default 0.25)")


def _add_stream_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("live streaming")
    g.add_argument("--live", action="store_true",
                   help="run as a live encoder: a paced source injects "
                        "frames into the running pipeline under "
                        "credit-based backpressure and age retirement "
                        "(--fps paces the source; --frames bounds it "
                        "unless --duration is given)")
    g.add_argument("--duration", type=float, default=None, metavar="S",
                   help="stream seconds to run the live source for "
                        "(overrides --frames as the bound)")
    g.add_argument("--lag-window", type=int, default=8, metavar="N",
                   help="backpressure credit window: admit frame a only "
                        "once frame a-N has fully drained (default 8)")
    g.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="per-frame end-to-end budget; frames already "
                        "late on admission are shed or degraded "
                        "(default: no shedding)")
    g.add_argument("--degrade-ratio", type=float, default=0.5, metavar="R",
                   help="fraction of late frames frozen (previous frame "
                        "repeated) instead of dropped (default 0.5)")
    g.add_argument("--shed-seed", type=int, default=0,
                   help="seed of the deterministic shed/degrade split")
    g.add_argument("--stream-json", metavar="PATH", default=None,
                   help="write the stream report (latency histogram, "
                        "shed ages, memory peaks) as JSON")
    g.add_argument("--sessions", type=int, default=1, metavar="N",
                   help="with --live, run N independent sessions "
                        "multiplexed over one runtime (namespaced "
                        "pipelines, per-session backpressure/QoS, fair "
                        "cross-tenant dispatch); each session writes "
                        "OUTPUT with its name suffixed")
    g.add_argument("--tier", default=None, metavar="gold:K",
                   help="run K of the N sessions at the gold QoS tier "
                        "(never shed under overload; the best-effort "
                        "rest absorb it), e.g. --tier gold:2")
    g.add_argument("--source", metavar="PATH.yuv", default=None,
                   help="with --live, loop a planar I420 .yuv clip as "
                        "the frame source (FileLoopSource) instead of "
                        "the synthetic camera")
    g.add_argument("--source-glob", metavar="GLOB", default=None,
                   help="with --live, a glob of I420 .yuv clips; "
                        "camera/session i loops file i mod N")


def _print_stream_report(args: argparse.Namespace, rep) -> None:
    if rep is None:
        return
    lat = rep.latency_ms
    print(f"live stream: {rep.offered} offered, {rep.admitted} admitted, "
          f"{rep.completed} completed, {rep.shed} shed, "
          f"{rep.degraded} degraded in {rep.duration_s:.2f}s")
    print(f"latency p50 {lat['p50']:.1f}ms p99 {lat['p99']:.1f}ms "
          f"max {lat['max']:.1f}ms; deadline misses "
          f"{rep.deadline_misses}; peak live {rep.peak_live_bytes} B "
          f"(retired {rep.freed_bytes} B); "
          f"source blocked {rep.blocked_s:.2f}s")
    if rep.stages:
        from .obs import stage_summary

        print("stage breakdown (frame-path latency attribution):")
        for line in stage_summary(rep.stages).splitlines():
            print(f"  {line}")
    if rep.slo:
        print(f"slo [{rep.slo.get('tier')}]: {rep.slo.get('misses')} "
              f"misses / {rep.slo.get('frames')} frames, burn "
              f"{rep.slo.get('burn_rate', 0.0):.2f}x, "
              f"{rep.slo.get('alerts', 0)} alert(s)")
    if args.stream_json:
        import json

        Path(args.stream_json).write_text(
            json.dumps(rep.as_dict(), indent=2) + "\n"
        )
        print(f"stream report -> {args.stream_json}")


def _live_sources(args: argparse.Namespace, width: int, height: int,
                  count: int):
    """Resolve ``--source`` / ``--source-glob`` into ``count`` looping
    file sources, or ``None`` when neither flag was given (callers fall
    back to the synthetic camera)."""
    from .stream import FileLoopSource

    paths = None
    if getattr(args, "source_glob", None):
        import glob as _glob

        paths = sorted(_glob.glob(args.source_glob))
        if not paths:
            raise SystemExit(
                f"--source-glob matched no files: {args.source_glob!r}"
            )
    elif getattr(args, "source", None):
        paths = [args.source]
    if paths is None:
        return None
    return [
        FileLoopSource(paths[i % len(paths)], width, height)
        for i in range(count)
    ]


def _parse_tier(spec: str | None, sessions: int) -> int:
    """``gold:K`` -> K (clamped to the session count)."""
    if not spec:
        return 0
    cls, _, k = spec.partition(":")
    if cls != "gold" or not k:
        raise SystemExit(
            f"--tier must look like gold:K, got {spec!r}"
        )
    try:
        n = int(k)
    except ValueError:
        raise SystemExit(f"--tier count must be an integer, got {k!r}")
    return max(0, min(n, sessions))


def _print_multitenant_report(args: argparse.Namespace, rep) -> None:
    if rep is None:
        return
    print(f"multitenant: {len(rep.sessions)} sessions on "
          f"{rep.workers} workers ({rep.backend}), capacity "
          f"{rep.capacity}, {rep.duration_s:.2f}s")
    for name, r in sorted(rep.sessions.items()):
        tier = r.qos_class or "best-effort"
        lat = r.latency_ms
        p50, p99 = lat.get("p50"), lat.get("p99")
        line = (f"  {name} [{tier}]: {r.offered} offered, "
                f"{r.completed} completed, {r.shed} shed, "
                f"{r.degraded} degraded")
        if p50 is not None and p99 is not None:
            line += f", p50 {p50:.1f}ms p99 {p99:.1f}ms"
        if r.slo:
            line += (f", slo burn {r.slo.get('burn_rate', 0.0):.2f}x "
                     f"({r.slo.get('alerts', 0)} alert(s))")
        print(line)
        if r.stages:
            from .obs import stage_summary

            for sline in stage_summary(r.stages).splitlines():
                print(f"    {sline}")
    for tier, agg in sorted(rep.by_class().items()):
        print(f"  tier {tier}: {agg['sessions']} session(s), "
              f"{agg['offered']} offered, {agg['shed']} shed, "
              f"worst p99 {agg['p99_ms']:.1f}ms")
    if args.stream_json:
        import json

        Path(args.stream_json).write_text(
            json.dumps(rep.as_dict(), indent=2) + "\n"
        )
        print(f"stream report -> {args.stream_json}")


def _adapt_config(args: argparse.Namespace):
    if not getattr(args, "adapt", False):
        return None
    from .core.adaptation import AdaptationConfig

    return AdaptationConfig(ratio_target=args.adapt_ratio)


def _print_replans(replans) -> None:
    for rec in replans:
        if rec.remote:
            continue
        parts = []
        for d in rec.decisions:
            if hasattr(d, "factor"):
                parts.append(f"coarsen {d.kernel}.{d.var} x{d.factor}")
            else:
                parts.append(f"fuse {d.first}+{d.second}")
        print(f"adapted at age {rec.epoch}: " + "; ".join(parts))


def _cmd_run(args: argparse.Namespace) -> int:
    from .core import run_program
    from .lang import compile_file

    program = compile_file(args.source)
    obs = _Obs(args)
    try:
        result = run_program(
            program,
            workers=args.workers,
            max_age=args.max_age,
            timeout=args.timeout,
            backend=args.backend,
            tracer=obs.tracer,
            metrics=obs.metrics,
            adapt=_adapt_config(args),
            batch=args.batch,
            telemetry=obs.telemetry,
        )
    finally:
        obs.finish()
    _print_replans(result.replans)
    print(f"program {program.name!r}: {result.reason} in "
          f"{result.wall_time:.3f}s")
    order = list(program.kernels)
    print(result.instrumentation.table(order=order))
    return 0 if result.reason == "idle" else 1


def _cmd_graph(args: argparse.Namespace) -> int:
    from .core.graph import (
        ascii_graph,
        dc_dag,
        final_graph,
        intermediate_graph,
    )
    from .lang import compile_file

    program = compile_file(args.source)
    if args.view == "intermediate":
        g = intermediate_graph(program)
    elif args.view == "final":
        g = final_graph(program)
    else:
        g = dc_dag(program, args.max_age)
    if args.dot:
        print(g.to_dot(program.name))
    else:
        print(ascii_graph(g, f"{program.name}: {args.view} graph"))
    return 0


def _cmd_mjpeg_sessions(args: argparse.Namespace) -> int:
    """``mjpeg --live --sessions N [--tier gold:K]``: N namespaced
    encoder sessions multiplexed over one runtime, each writing its own
    output file (the session name suffixes the output path)."""
    from dataclasses import replace as dc_replace

    from .stream import (
        FileLoopSource,
        SessionManager,
        SessionSpec,
        StreamConfig,
    )
    from .workloads import MJPEGConfig, build_mjpeg_stream

    gold = _parse_tier(args.tier, args.sessions)
    scfg = StreamConfig(
        fps=args.fps,
        duration=args.duration,
        max_frames=None if args.duration is not None else args.frames,
        lag_window=args.lag_window,
        deadline_ms=args.deadline_ms,
        shed_seed=args.shed_seed,
        degrade_ratio=args.degrade_ratio,
    )
    glob_sources = (
        None if args.input
        else _live_sources(args, args.width, args.height, args.sessions)
    )
    specs, sinks = [], {}
    for i in range(args.sessions):
        name = f"s{i}"
        cfg = MJPEGConfig(
            width=args.width, height=args.height, frames=args.frames,
            quality=args.quality, dct_method=args.dct, seed=1234 + i,
        )
        if args.input:
            source = FileLoopSource(args.input, cfg.width, cfg.height)
        else:
            source = glob_sources[i] if glob_sources else None
        tier = "gold" if i < gold else "best-effort"
        program, sink, binding = build_mjpeg_stream(
            cfg, dc_replace(scfg, qos_class=tier), source,
            vectorize=not args.no_vectorize,
        )
        specs.append(SessionSpec(name, program, binding))
        sinks[name] = sink
    obs = _Obs(args)
    mgr = SessionManager(
        specs, workers=args.workers, backend=args.backend,
        batch=args.batch, admission="queue",
        metrics=obs.metrics, tracer=obs.tracer,
        telemetry=obs.telemetry,
    )
    try:
        result = mgr.run(timeout=args.timeout)
    finally:
        obs.finish()
    _print_multitenant_report(args, result.stream)
    out = Path(args.output)
    total = 0
    for name, sink in sinks.items():
        path = out.with_name(f"{out.stem}.{name}{out.suffix}")
        data = sink.stream()
        path.write_bytes(data)
        total += len(data)
        print(f"  {name}: {sink.frame_count()} frames -> {path} "
              f"({len(data)} bytes)")
    print(f"encoded {args.sessions} sessions ({total} bytes total) in "
          f"{result.wall_time:.2f}s ({args.workers} workers)")
    return 0


def _cmd_mjpeg(args: argparse.Namespace) -> int:
    from .core import run_program
    from .media import read_yuv_file, synthetic_sequence
    from .workloads import MJPEGConfig, build_mjpeg

    if args.live and args.sessions > 1:
        return _cmd_mjpeg_sessions(args)
    cfg = MJPEGConfig(
        width=args.width, height=args.height, frames=args.frames,
        quality=args.quality, dct_method=args.dct,
    )
    binding = None
    if args.live:
        from .stream import FileLoopSource, StreamConfig

        from .workloads import build_mjpeg_stream

        source = None
        if args.input:
            source = FileLoopSource(args.input, cfg.width, cfg.height)
        else:
            file_sources = _live_sources(args, cfg.width, cfg.height, 1)
            if file_sources:
                source = file_sources[0]
        scfg = StreamConfig(
            fps=args.fps,
            duration=args.duration,
            max_frames=None if args.duration is not None else cfg.frames,
            lag_window=args.lag_window,
            deadline_ms=args.deadline_ms,
            shed_seed=args.shed_seed,
            degrade_ratio=args.degrade_ratio,
        )
        program, sink, binding = build_mjpeg_stream(
            cfg, scfg, source, vectorize=not args.no_vectorize
        )
    else:
        if args.input:
            frames = list(read_yuv_file(args.input, cfg.width, cfg.height,
                                        max_frames=cfg.frames))
        else:
            frames = synthetic_sequence(cfg.frames, cfg.width, cfg.height)
        program, sink = build_mjpeg(frames, cfg,
                                    vectorize=not args.no_vectorize)
    obs = _Obs(args)
    try:
        result = run_program(program, workers=args.workers,
                             timeout=args.timeout, backend=args.backend,
                             tracer=obs.tracer, metrics=obs.metrics,
                             adapt=_adapt_config(args),
                             stream=binding, batch=args.batch,
                             telemetry=obs.telemetry)
    finally:
        obs.finish()
    _print_replans(result.replans)
    _print_stream_report(args, result.stream)
    if args.output.endswith(".avi"):
        from .media import split_frames, write_avi

        jpegs = split_frames(sink.stream())
        stream = write_avi(args.output, jpegs, cfg.width, cfg.height,
                           fps=args.fps or 25.0)
    else:
        stream = sink.stream()
        Path(args.output).write_bytes(stream)
    print(f"encoded {sink.frame_count()} frames -> {args.output} "
          f"({len(stream)} bytes) in {result.wall_time:.2f}s "
          f"({args.workers} workers)")
    order = ["ydct", "udct", "vdct", "vlc"]
    if not args.live:
        order.insert(0, "read")
    print(result.instrumentation.table(order=order))
    return 0


def _ops_config(args: argparse.Namespace):
    """The scenario config for ``repro ops <scenario>``."""
    if args.scenario == "mosaic":
        from .workloads import MosaicConfig

        return MosaicConfig(
            cams=args.cams, width=args.width, height=args.height,
            frames=args.frames, seed=args.seed,
        )
    if args.scenario == "motion":
        from .workloads import MotionConfig

        return MotionConfig(
            width=args.width, height=args.height, frames=args.frames,
            region=args.region, slots=args.slots, seed=args.seed,
        )
    from .workloads import TranscodeConfig

    return TranscodeConfig(
        width=args.width, height=args.height, frames=args.frames,
        quality_in=args.quality_in, quality_out=args.quality_out,
        factor=args.factor, seed=args.seed,
    )


def _ops_build_stream(args, cfg, scfg, seed_shift: int = 0):
    """Build one live pipeline for the scenario, resolving
    ``--source``/``--source-glob`` into looping file sources."""
    from dataclasses import replace as dc_replace

    if seed_shift:
        cfg = dc_replace(cfg, seed=cfg.seed + seed_shift)
    vectorize = not args.no_vectorize
    if args.scenario == "mosaic":
        from .workloads import build_mosaic_stream

        sources = _live_sources(args, cfg.width, cfg.height, cfg.cams)
        return build_mosaic_stream(
            cfg, stream=scfg, sources=sources, vectorize=vectorize
        )
    if args.scenario == "motion":
        from .workloads import build_motion_stream

        sources = _live_sources(args, cfg.width, cfg.height, 1)
        return build_motion_stream(
            cfg, stream=scfg,
            source=sources[0] if sources else None,
            vectorize=vectorize,
        )
    from .media import encode_jpeg
    from .workloads import build_transcode_stream

    source = None
    file_sources = _live_sources(args, cfg.width, cfg.height, 1)
    if file_sources:
        # A .yuv clip feeds the transcode by encoding each frame at
        # the input quality first (the capture side of the chain).
        from .media import read_yuv_file
        from .stream import CycleSource

        clip = read_yuv_file(
            file_sources[0].path, cfg.width, cfg.height
        )
        source = CycleSource(
            [encode_jpeg(f, cfg.quality_in) for f in clip]
        )
    return build_transcode_stream(
        cfg, stream=scfg, source=source, vectorize=vectorize
    )


def _ops_write_output(args, path: Path, pipe, cfg) -> str:
    """Write the sink's collected results; returns a summary line."""
    values = pipe.collector().values()
    if args.scenario == "mosaic":
        data = b"".join(f.tobytes() for f in values)
        path.write_bytes(data)
        return (f"mosaic {cfg.cams} cams: {len(values)} frames -> "
                f"{path} ({len(data)} bytes)")
    if args.scenario == "motion":
        import json as _json

        samples = [
            {
                "age": age,
                "sad": int(v["m"][..., 0].sum()),
                "ssd": int(v["m"][..., 1].sum()),
                "zones": v["z"].tolist(),
            }
            for age, v in zip(pipe.collector().ages, values)
        ]
        payload = {
            "width": cfg.width, "height": cfg.height,
            "region": cfg.region, "slots": cfg.slots,
            "samples": samples,
        }
        path.write_text(_json.dumps(payload, indent=2) + "\n")
        return (f"motion: {len(values)} windowed samples -> {path}")
    data = b"".join(values)
    path.write_bytes(data)
    return (f"transcode /{cfg.factor}: {len(values)} frames -> "
            f"{path} ({len(data)} bytes)")


def _cmd_ops_sessions(args: argparse.Namespace) -> int:
    """``ops <scenario> --live --sessions N [--tier gold:K]``: N
    namespaced operator pipelines multiplexed over one runtime."""
    from dataclasses import replace as dc_replace

    from .stream import SessionManager, SessionSpec, StreamConfig

    gold = _parse_tier(args.tier, args.sessions)
    scfg = StreamConfig(
        fps=args.fps,
        duration=args.duration,
        max_frames=None if args.duration is not None else args.frames,
        lag_window=args.lag_window,
        deadline_ms=args.deadline_ms,
        shed_seed=args.shed_seed,
        degrade_ratio=args.degrade_ratio,
    )
    cfg = _ops_config(args)
    specs, pipes = [], {}
    for i in range(args.sessions):
        name = f"s{i}"
        tier = "gold" if i < gold else "best-effort"
        pipe = _ops_build_stream(
            args, cfg, dc_replace(scfg, qos_class=tier),
            seed_shift=1000 * i,
        )
        specs.append(SessionSpec(name, pipe.program, pipe.binding))
        pipes[name] = pipe
    obs = _Obs(args)
    mgr = SessionManager(
        specs, workers=args.workers, backend=args.backend,
        batch=args.batch, admission="queue",
        metrics=obs.metrics, tracer=obs.tracer,
        telemetry=obs.telemetry,
    )
    try:
        result = mgr.run(timeout=args.timeout)
    finally:
        obs.finish()
    _print_multitenant_report(args, result.stream)
    out = Path(args.output)
    for name, pipe in pipes.items():
        path = out.with_name(f"{out.stem}.{name}{out.suffix}")
        print("  " + _ops_write_output(args, path, pipe, cfg))
    print(f"{args.scenario}: {args.sessions} sessions in "
          f"{result.wall_time:.2f}s ({args.workers} workers)")
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    """``repro ops {mosaic,motion,transcode}``: run an operator-algebra
    scenario, batch or live."""
    from .core import run_program

    if args.live and args.sessions > 1:
        return _cmd_ops_sessions(args)
    cfg = _ops_config(args)
    if args.live:
        from .stream import StreamConfig

        scfg = StreamConfig(
            fps=args.fps,
            duration=args.duration,
            max_frames=(None if args.duration is not None
                        else args.frames),
            lag_window=args.lag_window,
            deadline_ms=args.deadline_ms,
            shed_seed=args.shed_seed,
            degrade_ratio=args.degrade_ratio,
        )
        pipe = _ops_build_stream(args, cfg, scfg)
    else:
        from .workloads import (
            build_mosaic,
            build_motion,
            build_transcode,
        )

        builder = {
            "mosaic": build_mosaic,
            "motion": build_motion,
            "transcode": build_transcode,
        }[args.scenario]
        pipe = builder(cfg, vectorize=not args.no_vectorize)
    obs = _Obs(args)
    try:
        result = run_program(
            pipe.program, workers=args.workers, timeout=args.timeout,
            backend=args.backend, tracer=obs.tracer,
            metrics=obs.metrics, adapt=_adapt_config(args),
            stream=pipe.binding, batch=args.batch,
            telemetry=obs.telemetry,
        )
    finally:
        obs.finish()
    _print_replans(result.replans)
    _print_stream_report(args, result.stream)
    print(_ops_write_output(args, Path(args.output), pipe, cfg))
    print(f"{result.reason} in {result.wall_time:.2f}s "
          f"({args.workers} workers)")
    return 0


def _cmd_kmeans(args: argparse.Namespace) -> int:
    from .core import run_program
    from .workloads import build_kmeans

    program, sink = build_kmeans(
        n=args.n, k=args.k, iterations=args.iterations,
        granularity=args.granularity,
        vectorize=not args.no_vectorize,
    )
    obs = _Obs(args)
    try:
        result = run_program(program, workers=args.workers,
                             timeout=args.timeout, backend=args.backend,
                             tracer=obs.tracer, metrics=obs.metrics,
                             adapt=_adapt_config(args),
                             batch=args.batch,
                             telemetry=obs.telemetry)
    finally:
        obs.finish()
    _print_replans(result.replans)
    print(f"k-means n={args.n} K={args.k} x{args.iterations}: "
          f"{result.reason} in {result.wall_time:.2f}s")
    print(result.instrumentation.table(
        order=["init", "assign", "refine", "print"]))
    final = sink.final_centroids()
    for i, row in enumerate(final[: args.show]):
        print(f"centroid {i}: {[round(float(v), 3) for v in row]}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .dist import Cluster, FaultInjector, FaultSchedule, FaultSpec
    from .dist.recovery import RecoveryConfig

    if args.workload == "mjpeg":
        from .media import synthetic_sequence
        from .workloads import MJPEGConfig, build_mjpeg

        cfg = MJPEGConfig(width=args.width, height=args.height,
                          frames=args.frames)
        clip = synthetic_sequence(cfg.frames, cfg.width, cfg.height,
                                  cfg.seed)
        program, sink = build_mjpeg(clip, cfg,
                                    vectorize=not args.no_vectorize)
        max_age = None
        summarize = lambda: f"{sink.frame_count()} frames, " \
                            f"{len(sink.stream())} bytes"
    elif args.workload == "kmeans":
        from .workloads import build_kmeans

        program, sink = build_kmeans(n=args.n, k=args.k,
                                     iterations=args.iterations,
                                     vectorize=not args.no_vectorize)
        max_age = None
        summarize = lambda: f"{len(sink.final_centroids())} centroids"
    else:
        from .workloads import build_mulsum

        program, sink = build_mulsum(vectorize=not args.no_vectorize)
        max_age = args.max_age if args.max_age is not None else 3
        summarize = lambda: f"{len(sink)} ages"

    nodes = {f"node{i}": args.workers for i in range(args.nodes)}
    specs = [FaultSpec.parse(s) for s in args.fail_node]
    if args.chaos_seed is not None and not specs:
        schedule = FaultSchedule.random(
            sorted(nodes), args.chaos_seed, kinds=("kill",),
            n_faults=args.chaos_faults,
        )
    else:
        schedule = FaultSchedule(specs)
    faults = FaultInjector(schedule) if len(schedule) else None
    recovery = None
    if faults is not None or args.recover:
        recovery = RecoveryConfig(
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            progress_timeout=args.progress_timeout,
            max_restarts=args.max_restarts,
        )
    elastic = None
    if (args.scale_at is None) != (args.target_nodes is None):
        print("--scale-at and --target-nodes must be given together",
              file=sys.stderr)
        return 2
    if args.scale_at is not None:
        from .dist import ElasticityConfig

        # Time-trigger mode: the load policy is disabled (dead-band
        # thresholds) so exactly one deterministic rescale happens.
        elastic = ElasticityConfig(
            interval=0.05, cooldown=0.0,
            scale_at=args.scale_at, target_nodes=args.target_nodes,
            max_nodes=max(args.nodes, args.target_nodes),
            queue_high=float("inf"), queue_low=-1.0,
        )
    elif args.elastic:
        from .dist import ElasticityConfig

        elastic = ElasticityConfig()
    obs = _Obs(args)
    try:
        result = Cluster(program, nodes).run(
            max_age=max_age, timeout=args.timeout,
            stall_timeout=args.stall_timeout,
            faults=faults, recovery=recovery,
            tracer=obs.tracer, metrics=obs.metrics,
            adapt=_adapt_config(args),
            batch=args.batch,
            telemetry=obs.telemetry,
            elastic=elastic,
        )
    except BaseException as exc:
        flight = getattr(exc, "flight_path", None)
        if flight is not None:
            print(f"flight recording -> {flight}", file=sys.stderr)
        raise
    finally:
        obs.finish()
    _print_replans(result.replans)
    print(f"cluster {args.workload} on {args.nodes} node(s): "
          f"{result.reason} in {result.wall_time:.2f}s "
          f"({result.transport.messages} cross-node messages)")
    print(f"output: {summarize()}")
    for rec in result.recoveries:
        print(f"recovered {rec.failed} -> {rec.replacement} on {rec.host} "
              f"(attempt {rec.attempt}, {rec.reenqueued} re-enqueued, "
              f"{rec.replayed} replayed, {rec.recovery_s * 1e3:.0f} ms): "
              f"{rec.reason}")
    for mig in result.migrations:
        print(f"migrated [{mig.reason}] epoch {mig.epoch}: "
              f"{mig.moved_kernels} kernel(s) moved, "
              f"fenced {list(mig.fenced)}, built {list(mig.built)}, "
              f"{mig.replayed} replayed, "
              f"{mig.migration_s * 1e3:.0f} ms")
    if result.membership is not None:
        print(f"membership epoch {result.membership['epoch']}: "
              f"{result.membership['nodes']}")
    if faults is not None and not result.recoveries and schedule.specs:
        print("no scheduled fault fired (triggers beyond the run's "
              "instance counts)")
    return 0 if result.reason == "idle" else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .bench.plots import ascii_chart, format_sweep
    from .sim import (
        MACHINES,
        paper_kmeans_model,
        paper_mjpeg_model,
        sweep_workers,
    )

    model = (paper_mjpeg_model(args.frames) if args.workload == "mjpeg"
             else paper_kmeans_model())
    series = {}
    for name in args.machines:
        machine = MACHINES[name]
        results = sweep_workers(
            model, machine, range(1, args.max_workers + 1)
        )
        series[machine.name] = [(r.workers, r.makespan) for r in results]
    title = f"simulated {args.workload} execution time"
    print(format_sweep(series, title))
    print(ascii_chart(series, title))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .sim import (
        MACHINES,
        granularity_what_if,
        paper_kmeans_model,
        paper_mjpeg_model,
        recommend_workers,
    )

    model = (paper_mjpeg_model(args.frames) if args.workload == "mjpeg"
             else paper_kmeans_model())
    for name in args.machines:
        machine = MACHINES[name]
        rec = recommend_workers(model, machine,
                                max_workers=args.max_workers)
        print(f"{machine.name}: provision {rec.knee} workers "
              f"(best {rec.best_workers} at {rec.best_makespan:.2f}s, "
              f"speedup {rec.speedup():.1f}x"
              f"{', ANALYZER-BOUND' if rec.analyzer_bound else ''})")
        if rec.analyzer_bound and args.what_if_stage:
            print(f"  what-if: coarsening {args.what_if_stage!r}")
            for r in granularity_what_if(
                model, machine, args.what_if_stage,
                factors=(1, 8, 64), max_workers=args.max_workers,
            ):
                w = r.recommendation
                print(f"    x{r.factor:>3}: best {w.best_makespan:6.2f}s "
                      f"at {w.best_workers} workers"
                      f"{' (analyzer-bound)' if w.analyzer_bound else ''}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .bench import (
        fig9_mjpeg_scaling,
        fig10_kmeans_scaling,
        table1_machines,
    )

    print(table1_machines())
    print()
    print(fig9_mjpeg_scaling(frames=args.frames).render())
    print()
    print(fig10_kmeans_scaling().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P2G reproduction command-line driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile and run a .p2g program")
    p.add_argument("source", help="kernel-language source file")
    p.add_argument("-w", "--workers", type=int, default=4)
    p.add_argument("-a", "--max-age", type=int, default=None,
                   help="age bound for non-terminating programs")
    p.add_argument("-t", "--timeout", type=float, default=300.0)
    p.add_argument("--backend", choices=("threads", "processes"),
                   default="threads",
                   help="execution backend for kernel bodies")
    _add_batch_args(p)
    _add_adapt_args(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("graph", help="print a program's dependency graphs")
    p.add_argument("source")
    p.add_argument("--view", choices=("intermediate", "final", "dcdag"),
                   default="final")
    p.add_argument("--max-age", type=int, default=3,
                   help="unroll depth for the DC-DAG view")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(fn=_cmd_graph)

    p = sub.add_parser("mjpeg", help="encode MJPEG through the P2G pipeline")
    p.add_argument("output", help="output .mjpeg path")
    p.add_argument("-i", "--input", help="planar I420 .yuv input "
                   "(defaults to the synthetic clip)")
    p.add_argument("--width", type=int, default=352)
    p.add_argument("--height", type=int, default=288)
    p.add_argument("--frames", type=int, default=8)
    p.add_argument("--quality", type=int, default=75)
    p.add_argument("--dct", choices=("naive", "matrix", "aan"),
                   default="matrix")
    p.add_argument("--fps", type=float, default=25.0,
                   help="frame rate stamped into .avi output; with "
                        "--live, also the source pacing rate (0 = "
                        "unpaced)")
    p.add_argument("-w", "--workers", type=int, default=4)
    p.add_argument("-t", "--timeout", type=float, default=1800.0)
    p.add_argument("--backend", choices=("threads", "processes"),
                   default="threads",
                   help="execution backend for kernel bodies")
    _add_stream_args(p)
    _add_batch_args(p)
    _add_adapt_args(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_mjpeg)

    p = sub.add_parser(
        "ops",
        help="run an operator-algebra scenario: multi-camera mosaic, "
             "windowed motion stats, or MJPEG transcode "
             "(pipelines from repro.ops compiled to fields+kernels)")
    p.add_argument("scenario", choices=("mosaic", "motion", "transcode"))
    p.add_argument("output",
                   help="output path (.yuv mosaic, .json motion, "
                        ".mjpeg transcode; --sessions N suffixes .sN)")
    p.add_argument("--cams", type=int, default=4,
                   help="mosaic cameras (perfect square, default 4)")
    p.add_argument("--width", type=int, default=64)
    p.add_argument("--height", type=int, default=64)
    p.add_argument("--frames", type=int, default=8)
    p.add_argument("--region", type=int, default=16,
                   help="motion: statistics tile size (default 16)")
    p.add_argument("--slots", type=int, default=4,
                   help="motion: keyed-partition zones (default 4)")
    p.add_argument("--quality-in", type=int, default=80,
                   help="transcode: input JPEG quality (default 80)")
    p.add_argument("--quality-out", type=int, default=60,
                   help="transcode: re-encode quality (default 60)")
    p.add_argument("--factor", type=int, default=2,
                   help="transcode: downscale factor (default 2)")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--fps", type=float, default=25.0,
                   help="with --live, the source pacing rate "
                        "(0 = unpaced)")
    p.add_argument("-w", "--workers", type=int, default=4)
    p.add_argument("-t", "--timeout", type=float, default=1800.0)
    p.add_argument("--backend", choices=("threads", "processes"),
                   default="threads",
                   help="execution backend for kernel bodies")
    _add_stream_args(p)
    _add_batch_args(p)
    _add_adapt_args(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_ops)

    p = sub.add_parser("kmeans", help="run the K-means workload")
    p.add_argument("-n", type=int, default=400)
    p.add_argument("-k", type=int, default=20)
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--granularity", choices=("pair", "point"),
                   default="point")
    p.add_argument("-w", "--workers", type=int, default=4)
    p.add_argument("-t", "--timeout", type=float, default=1800.0)
    p.add_argument("--show", type=int, default=5,
                   help="centroids to print")
    p.add_argument("--backend", choices=("threads", "processes"),
                   default="threads",
                   help="execution backend for kernel bodies")
    _add_batch_args(p)
    _add_adapt_args(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_kmeans)

    p = sub.add_parser(
        "cluster",
        help="run a workload across in-process cluster nodes, optionally "
             "with fault injection and recovery",
    )
    p.add_argument("workload", choices=("mulsum", "kmeans", "mjpeg"))
    p.add_argument("--nodes", type=int, default=3,
                   help="number of execution nodes")
    p.add_argument("-w", "--workers", type=int, default=2,
                   help="worker threads per node")
    p.add_argument("--fail-node", action="append", default=[],
                   metavar="NODE[:KIND[:AFTER]]",
                   help="inject a fault: kind is kill|stall|drop, AFTER "
                        "is the executed-instance trigger (repeatable), "
                        "e.g. --fail-node node1:kill:5")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="generate a seeded random kill schedule instead "
                        "of explicit --fail-node specs")
    p.add_argument("--chaos-faults", type=int, default=1,
                   help="fault count for --chaos-seed schedules")
    p.add_argument("--recover", action="store_true",
                   help="enable heartbeats/recovery even without faults")
    p.add_argument("--heartbeat-interval", type=float, default=0.02,
                   help="liveness beacon period, seconds")
    p.add_argument("--heartbeat-timeout", type=float, default=0.25,
                   help="silence before a node is declared dead, seconds")
    p.add_argument("--max-restarts", type=int, default=2,
                   help="per-node replacement budget")
    p.add_argument("--progress-timeout", type=float, default=None,
                   help="declare a node stalled when its heartbeats show "
                        "no progress with work outstanding for this many "
                        "seconds (needed to detect :stall faults)")
    p.add_argument("--stall-timeout", type=float, default=None,
                   help="raise StallError if no progress for this many "
                        "seconds (default: wait forever)")
    p.add_argument("-a", "--max-age", type=int, default=None,
                   help="age bound (mulsum defaults to 3)")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--width", type=int, default=64)
    p.add_argument("--height", type=int, default=64)
    p.add_argument("-n", type=int, default=120)
    p.add_argument("-k", type=int, default=8)
    p.add_argument("--iterations", type=int, default=4)
    p.add_argument("-t", "--timeout", type=float, default=300.0)
    p.add_argument("--elastic", action="store_true",
                   help="dynamic membership: epoch-stamped routing, "
                        "event-log retention, and load-driven "
                        "scale-out/in via the elasticity driver")
    p.add_argument("--scale-at", type=float, default=None,
                   help="deterministic trigger: rescale at this many "
                        "seconds on the run clock (implies --elastic; "
                        "needs --target-nodes)")
    p.add_argument("--target-nodes", type=int, default=None,
                   help="node count --scale-at rescales to")
    _add_batch_args(p)
    _add_adapt_args(p)
    _add_obs_args(p)
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser("simulate",
                       help="figure 9/10-style simulated worker sweep")
    p.add_argument("workload", choices=("mjpeg", "kmeans"))
    p.add_argument("--frames", type=int, default=50)
    p.add_argument("--max-workers", type=int, default=8)
    p.add_argument("--machines", nargs="+",
                   choices=("core_i7", "opteron"),
                   default=["core_i7", "opteron"])
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "advise",
        help="simulator-backed configuration advice (section V-A)",
    )
    p.add_argument("workload", choices=("mjpeg", "kmeans"))
    p.add_argument("--frames", type=int, default=50)
    p.add_argument("--max-workers", type=int, default=8)
    p.add_argument("--machines", nargs="+",
                   choices=("core_i7", "opteron"),
                   default=["core_i7", "opteron"])
    p.add_argument("--what-if-stage", default="assign",
                   help="stage to evaluate LLS coarsening for when the "
                        "analyzer is the bottleneck")
    p.set_defaults(fn=_cmd_advise)

    p = sub.add_parser("tables", help="print the paper's tables/figures")
    p.add_argument("--frames", type=int, default=50)
    p.set_defaults(fn=_cmd_tables)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
