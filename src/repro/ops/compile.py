"""Lowering: operator graph → ``Program`` of fields and kernels.

Lowering rules (DESIGN.md §16):

========== =========================================================
operator    lowers to
========== =========================================================
source      one :class:`~repro.core.fields.FieldDef` per port; in
            batch mode also a self-advancing aged source kernel that
            stores each age's payload (and stops storing at end of
            stream); in live mode no kernel — the
            :class:`~repro.stream.StreamDriver` injects frames through
            the compiled :class:`~repro.stream.StreamBinding`.
map         one kernel; each input becomes a fetch (whole-field, or
            ``Dim.of("i<j>", block)`` leading dims under
            :meth:`~repro.ops.algebra.Handle.block`), each out port a
            field + store spec keyed by the port name.
window(n)   no kernel of its own: the consumer's fetch for that input
            expands into ``n`` fetches at ``AgeExpr.var(skew + k)``,
            params ``"port@k"`` — an age-range fetch.
merge       a map with several inputs; per-input ``skew`` gives the
            explicit age-alignment policy (lockstep when 0).
keyed_      a kernel with ``index_vars=("slot",)`` and an explicit
partition   ``domain`` — one instance per slot per age; the out fields
            gain a leading ``slots`` axis and each instance stores its
            slot's slice (``Dim.of("slot")`` leading store dim).
multicast   one copy kernel whose store specs fan each input port out
            to ``n`` branch fields (distinct emit keys — write-once
            forbids aliasing one buffer to many consumers).
sink        a kernel with fetches and *no* stores: it delivers
            ``fn(age, values)`` out-of-band via ``ctx.output`` and the
            pipeline's :class:`OpsCollector` gathers results in the
            parent process on every backend.
========== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.fields import DTYPES, FieldDef
from ..core.kernels import AgeExpr, Dim, FetchSpec, KernelDef, StoreSpec
from ..core.program import Program
from ..core.vectorize import vectorize_program
from .algebra import Handle, InputRef, OpNode

__all__ = ["CompiledPipeline", "OpsCollector", "compile_ops"]


class OpsCollector:
    """Gathers one sink's out-of-band results, ordered by age."""

    def __init__(self, name: str, key: str) -> None:
        self.name = name
        self.key = key
        self.results: dict[int, Any] = {}

    def add(self, age: int, value: Any) -> None:
        self.results[age] = value

    @property
    def ages(self) -> list[int]:
        return sorted(self.results)

    def values(self) -> list[Any]:
        """Collected results in age order."""
        return [self.results[a] for a in self.ages]

    def __len__(self) -> int:
        return len(self.results)


@dataclass
class CompiledPipeline:
    """The lowered pipeline: a runnable program plus its collectors.

    ``binding`` is ``None`` for batch compilations; live compilations
    carry the :class:`~repro.stream.StreamBinding` to pass as
    ``run_program(..., stream=binding)`` (or wrap in a
    :class:`~repro.stream.SessionSpec` for multi-tenant serving).
    """

    program: Program
    collectors: dict[str, OpsCollector]
    binding: Any = None
    sources: tuple[OpNode, ...] = ()
    sinks: tuple[OpNode, ...] = ()

    def collector(self, name: str | None = None) -> OpsCollector:
        """The named sink's collector (default: the first sink)."""
        if name is None:
            name = self.sinks[0].name
        return self.collectors[name]


# ----------------------------------------------------------------------
# Graph walking
# ----------------------------------------------------------------------
def _gather(handles: Sequence[Handle]) -> list[OpNode]:
    """All nodes reachable from the given handles, in construction
    order (deterministic: ``OpNode.seq``)."""
    seen: dict[int, OpNode] = {}

    def visit(node: OpNode) -> None:
        if id(node) in seen:
            return
        seen[id(node)] = node
        for ref in node.inputs:
            visit(ref.node)

    for h in handles:
        visit(h.node)
    return sorted(seen.values(), key=lambda n: n.seq)


# ----------------------------------------------------------------------
# Per-kind lowering
# ----------------------------------------------------------------------
def _index_dims(
    block: tuple[int, ...], ndim: int, *, ctx: str
) -> tuple[Dim, ...]:
    if len(block) > ndim:
        raise ValueError(
            f"{ctx}: block has {len(block)} axes but the port is "
            f"{ndim}-dimensional"
        )
    lead = tuple(Dim.of(f"i{j}", b) for j, b in enumerate(block))
    return lead + tuple(Dim.all() for _ in range(ndim - len(block)))


def _lower_fetches(
    node: OpNode,
) -> tuple[tuple[FetchSpec, ...], tuple[str, ...]]:
    fetches = []
    index_vars: list[str] = []
    for ref in node.inputs:
        ndim = len(ref.spec.shape)
        if ref.block is None:
            dims: tuple[Dim, ...] = ()
        else:
            dims = _index_dims(
                ref.block, ndim,
                ctx=f"operator {node.name!r}, input {ref.param!r}",
            )
            for j in range(len(ref.block)):
                var = f"i{j}"
                if var not in index_vars:
                    index_vars.append(var)
        fetches.append(
            FetchSpec(
                ref.param, ref.field,
                age=AgeExpr.var(ref.skew), dims=dims,
            )
        )
    return tuple(fetches), tuple(index_vars)


def _source_body(node: OpNode):
    payloads = node.payloads
    ports = tuple(node.ports)
    dtypes = {p: DTYPES[s.dtype] for p, s in node.ports.items()}
    if callable(payloads):
        get = payloads
    else:
        seq = list(payloads)

        def get(age: int):
            return seq[age] if 0 <= age < len(seq) else None

    def body(ctx) -> None:
        payload = get(ctx.age)
        if payload is None:
            return  # end of stream: storing nothing stops the source
        for port in ports:
            ctx.emit(port, np.asarray(payload[port], dtypes[port]))

    return body


def _multicast_body(node: OpNode):
    in_ports = tuple(ref.param for ref in node.inputs)
    n = node.branches

    def body(ctx) -> None:
        for port in in_ports:
            value = ctx.fetched[port]
            for i in range(n):
                ctx.emit(f"{port}_b{i}", value)

    return body


def _sink_body(node: OpNode):
    params = tuple(ref.param for ref in node.inputs)
    fn = node.fn
    key = node.output_key

    def body(ctx) -> None:
        values = {p: ctx.fetched[p] for p in params}
        if fn is not None:
            result = fn(ctx.age, values)
        elif len(params) == 1:
            result = values[params[0]]
        else:
            result = values
        ctx.output(key, result)

    return body


def _lower_node(node: OpNode, mode: str) -> KernelDef | None:
    if node.kind == "source":
        if mode == "live":
            return None  # the StreamDriver injects; no source kernel
        if node.payloads is None:
            raise ValueError(
                f"source {node.name!r} has no batch payloads "
                f"(frames=...); cannot compile in batch mode"
            )
        return KernelDef(
            name=node.name,
            body=_source_body(node),
            stores=tuple(
                StoreSpec(node.field_of(p), key=p) for p in node.ports
            ),
            has_age=True,
        )

    if node.kind == "map":
        fetches, index_vars = _lower_fetches(node)
        stores = []
        for port, spec in node.ports.items():
            out_block = node.out_block.get(port)
            if out_block is None:
                dims: tuple[Dim, ...] = ()
            else:
                dims = _index_dims(
                    out_block, len(spec.shape),
                    ctx=f"operator {node.name!r}, out port {port!r}",
                )
            stores.append(
                StoreSpec(node.field_of(port), dims=dims, key=port)
            )
        return KernelDef(
            name=node.name,
            body=node.fn,
            fetches=fetches,
            stores=tuple(stores),
            has_age=True,
            index_vars=index_vars,
        )

    if node.kind == "keyed_partition":
        for ref in node.inputs:
            if ref.block is not None:
                raise ValueError(
                    f"keyed_partition {node.name!r}: inputs are fetched "
                    f"whole (drop .block())"
                )
        fetches, _ = _lower_fetches(node)
        stores = tuple(
            StoreSpec(
                node.field_of(port),
                dims=(Dim.of("slot"),)
                + tuple(Dim.all() for _ in spec.shape[1:]),
                key=port,
            )
            for port, spec in node.ports.items()
        )
        return KernelDef(
            name=node.name,
            body=node.fn,
            fetches=fetches,
            stores=stores,
            has_age=True,
            index_vars=("slot",),
            domain={"slot": node.slots},
        )

    if node.kind == "multicast":
        fetches, _ = _lower_fetches(node)
        return KernelDef(
            name=node.name,
            body=_multicast_body(node),
            fetches=fetches,
            stores=tuple(
                StoreSpec(node.field_of(p), key=p) for p in node.ports
            ),
            has_age=True,
        )

    if node.kind == "sink":
        fetches, index_vars = _lower_fetches(node)
        if index_vars:
            raise ValueError(
                f"sink {node.name!r}: inputs are fetched whole "
                f"(drop .block())"
            )
        return KernelDef(
            name=node.name,
            body=_sink_body(node),
            fetches=fetches,
            stores=(),
            has_age=True,
        )

    raise ValueError(f"unknown operator kind {node.kind!r}")


# ----------------------------------------------------------------------
# Live glue
# ----------------------------------------------------------------------
def _live_binding(sources, completion_key, stream):
    from ..core.events import StoreEvent
    from ..stream.driver import StreamBinding, StreamConfig
    from ..stream.sources import MultiSource

    for node in sources:
        if node.live is None:
            raise ValueError(
                f"source {node.name!r} has no live FrameSource "
                f"(live=...); cannot compile in live mode"
            )
    multi = len(sources) > 1
    frame_source = (
        MultiSource([n.live for n in sources])
        if multi
        else sources[0].live
    )
    specs = [
        (
            node,
            node.adapter,
            {p: (node.field_of(p), DTYPES[s.dtype])
             for p, s in node.ports.items()},
        )
        for node in sources
    ]

    def store_frame(fields, age: int, frame: Any) -> list:
        bundle = frame if multi else (frame,)
        events = []
        for (node, adapt, ports), item in zip(specs, bundle):
            payload = adapt(item)
            for port, (fname, np_dtype) in ports.items():
                arr = np.asarray(payload[port], np_dtype)
                region = tuple(slice(0, n) for n in arr.shape)
                fields[fname].store(age, region, arr)
                events.append(StoreEvent(fname, age, region))
        return events

    return StreamBinding(
        source=frame_source,
        store_frame=store_frame,
        completion_key=completion_key,
        config=stream if stream is not None else StreamConfig(),
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def compile_ops(
    sinks: Handle | Sequence[Handle],
    *,
    name: str = "ops",
    mode: str = "batch",
    stream=None,
    vectorize: bool = True,
) -> CompiledPipeline:
    """Lower an operator graph (given by its sink handles) to a
    :class:`~repro.core.program.Program`.

    ``mode="batch"`` compiles sources to self-advancing kernels over
    their ``frames`` payloads; ``mode="live"`` compiles no source
    kernels and returns a :class:`~repro.stream.StreamBinding` instead
    (N live sources zip into one
    :class:`~repro.stream.MultiSource`-paced session).  The first sink
    is the completion sink — its per-age delivery drives the live
    credit gate and retirement frontier.
    """
    if isinstance(sinks, Handle):
        sinks = [sinks]
    if not sinks:
        raise ValueError("compile_ops needs at least one sink handle")
    for h in sinks:
        if h.node.kind != "sink":
            raise ValueError(
                f"compile_ops terminals must be sinks; got "
                f"{h.node.kind!r} operator {h.node.name!r}"
            )
    if mode not in ("batch", "live"):
        raise ValueError(f"unknown compile mode {mode!r}")

    nodes = _gather(sinks)
    sink_nodes = tuple(n for n in nodes if n.kind == "sink")
    source_nodes = tuple(n for n in nodes if n.kind == "source")
    if not source_nodes:
        raise ValueError("pipeline has no source operator")

    # Sink output keys must be distinct: the collectors (and the live
    # completion watch) route on them.
    keys = [n.output_key for n in sink_nodes]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate sink output keys: {keys}")

    fields = [
        FieldDef(
            node.field_of(port),
            dtype=spec.dtype,
            ndim=len(spec.shape),
            aging=True,
            shape=spec.shape,
        )
        for node in nodes
        for port, spec in node.ports.items()
    ]
    kernels = []
    for node in nodes:
        kernel = _lower_node(node, mode)
        if kernel is not None:
            kernels.append(kernel)

    collectors = {
        n.name: OpsCollector(n.name, n.output_key) for n in sink_nodes
    }
    by_key = {c.key: c for c in collectors.values()}

    def handler(kernel, age, index, key, value):
        collector = by_key.get(key)
        if collector is not None and age is not None:
            collector.add(age, value)

    program = Program.build(
        fields, kernels, name=name, output_handler=handler
    )
    if vectorize:
        vectorize_program(program)

    binding = None
    if mode == "live":
        completion_key = sinks[0].node.output_key
        binding = _live_binding(source_nodes, completion_key, stream)
    return CompiledPipeline(
        program=program,
        collectors=collectors,
        binding=binding,
        sources=source_nodes,
        sinks=sink_nodes,
    )
